//! Tuned compute kernels behind the [`Matrix`](crate::Matrix) surface.
//!
//! Three pieces live here, all gated by a process-wide (and thread-locally
//! overridable) [`KernelConfig`]:
//!
//! 1. **Cache-blocked GEMM.** [`gemm`] packs `B` into column panels of
//!    `block_size` columns — transposing on the fly for the `A·Bᵀ` variant,
//!    so both variants share one contiguous, autovectorization-friendly
//!    inner loop — and streams each panel across all rows of `A` while it
//!    is hot in cache.
//! 2. **A hand-rolled worker pool.** Large products split their output
//!    rows across `threads` persistent workers fed over crossbeam channels
//!    (the same pattern as `mtmlf::serve`'s planner pool — no rayon). The
//!    calling thread computes the first chunk itself, then *drains the
//!    shared job queue* while waiting, so progress never depends on a
//!    worker being alive; chunks whose reply is lost (a worker died
//!    mid-task) are recomputed inline.
//! 3. **A per-thread buffer arena.** Matrix buffers are recycled through a
//!    thread-local free list, so steady-state forward passes allocate
//!    nothing (observable through [`crate::profile::OpStats`]:
//!    `allocations` counts pool misses, `arena_reuses` counts hits).
//!
//! # Equivalence contract
//!
//! The naive kernels remain compiled as the always-available reference
//! path ([`reference_gemm`], reachable as `Matrix::matmul_reference` /
//! `Matrix::matmul_nt_reference`). The blocked and parallel paths preserve
//! the reference *accumulation order*: every output element accumulates
//! its `k` products in ascending-`k` order into a single accumulator, and
//! row-parallel splits never change any element's order. For finite inputs
//! that do not overflow, the tuned paths are therefore *bitwise identical*
//! to the reference on every `{threads, block_size}` combination — which is
//! what lets a `KernelConfig` change ship without perturbing a single
//! serving decision. The differential suite (`crates/nn/tests/kernel_diff.rs`)
//! pins exact equality for single-threaded configs and enforces the
//! documented [`ULP_TOLERANCE`] everywhere else as contractual headroom
//! for future kernels that may reassociate.
//!
//! No clocks, no OS randomness, no unsafe code.

use crate::profile;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Upper bound on configured worker threads.
pub const MAX_THREADS: usize = 64;
/// Bounds on a non-zero `block_size` (panel width in columns).
pub const MIN_BLOCK: usize = 4;
/// See [`MIN_BLOCK`].
pub const MAX_BLOCK: usize = 1024;

/// Maximum units-in-the-last-place divergence the differential suite
/// tolerates between the tuned and reference kernels.
///
/// The current kernels are accumulation-order-preserving and therefore
/// exact (0 ULP) for finite, non-overflowing inputs; the tolerance is the
/// *contract*, kept slightly loose so a future kernel that reassociates
/// (e.g. SIMD lane-split reductions) can ship against the same suite. The
/// single-threaded fixed-order configuration is additionally pinned to
/// exact bitwise equality and gets no such headroom.
pub const ULP_TOLERANCE: u32 = 4;

/// Tuning knobs for the `mtmlf_nn` compute kernels.
///
/// `block_size == 0` selects the naive reference kernels (the default, and
/// the seed behavior); any other value selects the cache-blocked path with
/// that column-panel width. `threads > 1` additionally row-parallelizes
/// products large enough to amortize the split. Every combination produces
/// bitwise-identical results for finite inputs (see the module docs), so
/// this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Worker threads for large products (`1` = stay on the calling
    /// thread). Clamped to `1..=`[`MAX_THREADS`] on install.
    pub threads: usize,
    /// Column-panel width of the blocked GEMM; `0` selects the reference
    /// kernels. Non-zero values are clamped to
    /// [`MIN_BLOCK`]`..=`[`MAX_BLOCK`] on install.
    pub block_size: usize,
}

impl KernelConfig {
    /// The naive reference kernels (single-threaded, unblocked).
    pub const fn reference() -> Self {
        Self {
            threads: 1,
            block_size: 0,
        }
    }

    /// Single-threaded blocked kernels with the given panel width — the
    /// fixed-accumulation-order configuration the differential suite pins
    /// to exact equality.
    pub const fn single_threaded(block_size: usize) -> Self {
        Self {
            threads: 1,
            block_size,
        }
    }

    /// Blocked kernels with one worker per available core (capped) and a
    /// 64-column panel — a good default for serving hosts.
    pub fn tuned() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            threads: threads.min(8),
            block_size: 64,
        }
    }

    /// Whether this configuration selects the reference kernels.
    pub fn is_reference(&self) -> bool {
        self.block_size == 0
    }

    /// Checks the bounds [`install`] would otherwise clamp to, so config
    /// builders can reject out-of-range values loudly instead.
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 || self.threads > MAX_THREADS {
            return Err(format!(
                "kernel.threads must be in 1..={MAX_THREADS}, got {}",
                self.threads
            ));
        }
        if self.block_size != 0 && !(MIN_BLOCK..=MAX_BLOCK).contains(&self.block_size) {
            return Err(format!(
                "kernel.block_size must be 0 (reference) or in \
                 {MIN_BLOCK}..={MAX_BLOCK}, got {}",
                self.block_size
            ));
        }
        Ok(())
    }

    fn clamped(self) -> Self {
        Self {
            threads: self.threads.clamp(1, MAX_THREADS),
            block_size: if self.block_size == 0 {
                0
            } else {
                self.block_size.clamp(MIN_BLOCK, MAX_BLOCK)
            },
        }
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::reference()
    }
}

// ---------------------------------------------------------------------------
// Config plumbing: one process-wide slot plus a thread-local override.
// ---------------------------------------------------------------------------

const fn pack(cfg: KernelConfig) -> u64 {
    ((cfg.threads as u64) << 32) | cfg.block_size as u64
}

fn unpack(bits: u64) -> KernelConfig {
    KernelConfig {
        threads: (bits >> 32) as usize,
        block_size: (bits & 0xffff_ffff) as usize,
    }
}

/// Sentinel meaning "no thread-local override"; an impossible packing
/// (threads would exceed [`MAX_THREADS`]).
const NO_OVERRIDE: u64 = u64::MAX;

static INSTALLED: AtomicU64 = AtomicU64::new(pack(KernelConfig::reference()));

thread_local! {
    static OVERRIDE: Cell<u64> = const { Cell::new(NO_OVERRIDE) };
}

/// Installs `cfg` (clamped to valid bounds) as the process-wide default and
/// returns the previous default. Because every configuration computes
/// bit-identical results, installs can race harmlessly; this is a
/// performance knob, not a correctness one.
pub fn install(cfg: KernelConfig) -> KernelConfig {
    unpack(INSTALLED.swap(pack(cfg.clamped()), Ordering::Relaxed))
}

/// The process-wide default configuration.
pub fn installed() -> KernelConfig {
    unpack(INSTALLED.load(Ordering::Relaxed))
}

/// The configuration kernels on this thread currently dispatch on: the
/// innermost live [`scoped`] override, or the [`installed`] default.
pub fn current() -> KernelConfig {
    let bits = OVERRIDE.with(Cell::get);
    if bits == NO_OVERRIDE {
        installed()
    } else {
        unpack(bits)
    }
}

/// Runs `f` with `cfg` (clamped) as this thread's kernel configuration,
/// restoring the previous override afterwards (panic-safe). This is how
/// `mtmlf`'s planning paths pin a model's configured kernels regardless of
/// what other models in the process installed.
pub fn scoped<T>(cfg: KernelConfig, f: impl FnOnce() -> T) -> T {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(pack(cfg.clamped())));
    let _restore = Restore(prev);
    f()
}

// ---------------------------------------------------------------------------
// Per-thread buffer arena.
// ---------------------------------------------------------------------------

/// Most buffers kept per thread; excess recycles are dropped.
const ARENA_MAX_BUFFERS: usize = 128;
/// Buffers above this capacity are never pooled (bounds worst-case
/// retention at 4 MiB per slot).
const ARENA_MAX_FLOATS: usize = 1 << 20;

thread_local! {
    static ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Pops the smallest pooled buffer with capacity for `len` floats, if any.
fn pop_fitting(len: usize) -> Option<Vec<f32>> {
    ARENA.with(|a| {
        let mut pool = a.borrow_mut();
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| pool.swap_remove(i))
    })
}

/// A buffer of exactly `len` floats, all set to `fill`. Reuses a pooled
/// buffer when one fits (recorded as an arena reuse), otherwise allocates
/// (recorded as an allocation).
pub(crate) fn take(len: usize, fill: f32) -> Vec<f32> {
    match pop_fitting(len) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf.resize(len, fill);
            buf
        }
        None => {
            profile::record_alloc(len as u64);
            vec![fill; len]
        }
    }
}

/// A buffer holding a copy of `src` (pooled when possible).
pub(crate) fn take_copy(src: &[f32]) -> Vec<f32> {
    match pop_fitting(src.len()) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf.extend_from_slice(src);
            buf
        }
        None => {
            profile::record_alloc(src.len() as u64);
            src.to_vec()
        }
    }
}

/// An empty buffer with capacity for at least `cap` floats (pooled when
/// possible) — for `extend_from_slice`-style builders.
pub(crate) fn take_empty(cap: usize) -> Vec<f32> {
    match pop_fitting(cap) {
        Some(mut buf) => {
            profile::record_arena_reuse();
            buf.clear();
            buf
        }
        None => {
            profile::record_alloc(cap as u64);
            Vec::with_capacity(cap)
        }
    }
}

/// Returns a buffer to the current thread's pool (dropping it if the pool
/// is full or the buffer is empty/oversized).
pub(crate) fn recycle(buf: Vec<f32>) {
    if buf.capacity() == 0 || buf.capacity() > ARENA_MAX_FLOATS {
        return;
    }
    ARENA.with(|a| {
        let mut pool = a.borrow_mut();
        if pool.len() < ARENA_MAX_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Drops every buffer pooled on the current thread. Tests and benchmarks
/// call this so allocation counts start from a cold, deterministic state.
pub fn arena_clear() {
    ARENA.with(|a| a.borrow_mut().clear());
}

/// Buffers currently pooled on this thread (diagnostics/tests).
pub fn arena_buffers() -> usize {
    ARENA.with(|a| a.borrow().len())
}

// ---------------------------------------------------------------------------
// GEMM: reference, blocked, and row-parallel paths.
// ---------------------------------------------------------------------------

/// How the `B` operand of [`gemm`] is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BKind {
    /// `B` is `k×n` row-major; compute `A·B`. The reference path skips
    /// zero `A` elements (the featurizer emits very sparse one-hot rows),
    /// and the blocked path mirrors that skip exactly.
    RowMajor,
    /// `B` is `n×k` row-major; compute `A·Bᵀ`. The reference path is a
    /// per-element dot product with no zero skip; the blocked path packs
    /// `Bᵀ` and mirrors the no-skip accumulation exactly.
    Transposed,
}

impl BKind {
    fn skip_zero(self) -> bool {
        matches!(self, BKind::RowMajor)
    }
}

/// Below this FLOP count the blocked path stays on the reference kernel
/// (packing would dominate).
const BLOCKED_MIN_FLOPS: u64 = 2 * 24 * 24 * 24;
/// Below this FLOP count a parallel split is not worth the channel round
/// trip.
const PARALLEL_MIN_FLOPS: u64 = 2 * 96 * 96 * 96;

/// `out += A·B` (or `A·Bᵀ`), dispatching on [`current`]'s configuration.
/// `out` must be zeroed, `m·k`, `k·n` (or `n·k`), and `m·n` sized.
pub(crate) fn gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let cfg = current();
    let flops = 2 * (m as u64) * (n as u64) * (k as u64);
    if cfg.is_reference() || flops < BLOCKED_MIN_FLOPS {
        reference_gemm(a, m, k, b, n, bkind, out);
        return;
    }
    let nb = cfg.block_size;
    if cfg.threads > 1 && flops >= PARALLEL_MIN_FLOPS && m >= cfg.threads * 2 {
        parallel_gemm(a, m, k, b, n, bkind, nb, cfg.threads, out);
    } else {
        let packed = pack_b(b, k, n, bkind, nb);
        blocked_gemm(a, m, k, &packed, n, nb, bkind.skip_zero(), out);
        recycle(packed);
    }
}

/// The naive kernels, byte-for-byte the loops the seed shipped with. This
/// is the pinned reference the differential suite compares against.
pub(crate) fn reference_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    out: &mut [f32],
) {
    match bkind {
        BKind::RowMajor => {
            // i-k-j loop order: the inner loop walks contiguous rows of
            // `b` and `out`, which the compiler auto-vectorizes.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
        BKind::Transposed => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
                }
            }
        }
    }
}

/// Packs `B` into `⌈n/nb⌉` column panels of width `nb` (the last possibly
/// narrower). Panel `p` stores element `(kk, jj)` — i.e. `B[kk, p·nb+jj]`
/// for the row-major kind, `B[p·nb+jj, kk]` transposed — contiguously at
/// `p·k·nb + kk·w + jj`, so the micro-kernel's inner loop reads one dense
/// row regardless of the original layout.
// lint: hot-path
fn pack_b(b: &[f32], k: usize, n: usize, bkind: BKind, nb: usize) -> Vec<f32> {
    let panels = n.div_ceil(nb);
    let mut packed = take(panels * k * nb, 0.0);
    for p in 0..panels {
        let j0 = p * nb;
        let w = nb.min(n - j0);
        let base = p * k * nb;
        match bkind {
            BKind::RowMajor => {
                for kk in 0..k {
                    let src = &b[kk * n + j0..kk * n + j0 + w];
                    packed[base + kk * w..base + kk * w + w].copy_from_slice(src);
                }
            }
            BKind::Transposed => {
                for (jj, j) in (j0..j0 + w).enumerate() {
                    let src = &b[j * k..(j + 1) * k];
                    for (kk, &v) in src.iter().enumerate() {
                        packed[base + kk * w + jj] = v;
                    }
                }
            }
        }
    }
    packed
}

/// The cache-blocked micro-kernel over packed panels: each panel stays hot
/// while every row of `A` streams across it. Per output element the `k`
/// products accumulate in ascending order into a single slot — exactly the
/// reference order — so this path is bit-compatible with [`reference_gemm`]
/// for finite inputs.
// lint: hot-path
fn blocked_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    nb: usize,
    skip_zero: bool,
    out: &mut [f32],
) {
    let panels = n.div_ceil(nb);
    for p in 0..panels {
        let j0 = p * nb;
        let w = nb.min(n - j0);
        let panel = &packed[p * k * nb..p * k * nb + k * w];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_seg = &mut out[i * n + j0..i * n + j0 + w];
            for (kk, &av) in a_row.iter().enumerate() {
                if skip_zero && av == 0.0 {
                    continue;
                }
                let prow = &panel[kk * w..(kk + 1) * w];
                for (o, &bv) in out_seg.iter_mut().zip(prow) {
                    *o += av * bv;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool (crossbeam channels; the calling thread helps drain).
// ---------------------------------------------------------------------------

struct GemmTask {
    a_chunk: Vec<f32>,
    rows: usize,
    k: usize,
    n: usize,
    nb: usize,
    skip_zero: bool,
    packed: Arc<Vec<f32>>,
    out_chunk: Vec<f32>,
    index: usize,
    reply: Sender<GemmDone>,
}

struct GemmDone {
    index: usize,
    a_chunk: Vec<f32>,
    out_chunk: Vec<f32>,
}

impl GemmTask {
    // lint: hot-path
    fn run(mut self) {
        blocked_gemm(
            &self.a_chunk,
            self.rows,
            self.k,
            &self.packed,
            self.n,
            self.nb,
            self.skip_zero,
            &mut self.out_chunk,
        );
        // Release the shared panels *before* replying, so once the caller
        // has collected every reply its own Arc is the last one and the
        // pack buffer returns to its arena.
        drop(std::mem::take(&mut self.packed));
        let done = GemmDone {
            index: self.index,
            a_chunk: std::mem::take(&mut self.a_chunk),
            out_chunk: std::mem::take(&mut self.out_chunk),
        };
        let _ = self.reply.send(done);
    }
}

fn job_channel() -> &'static (Sender<GemmTask>, Receiver<GemmTask>) {
    static JOBS: OnceLock<(Sender<GemmTask>, Receiver<GemmTask>)> = OnceLock::new();
    JOBS.get_or_init(channel::unbounded)
}

static SPAWNED_WORKERS: Mutex<usize> = Mutex::new(0);

/// Grows the shared worker set to at least `want` threads. Spawn failures
/// are tolerated: the caller's drain loop runs queued tasks inline, so the
/// pool degrades to single-threaded instead of erroring.
fn ensure_workers(want: usize) {
    let mut spawned = SPAWNED_WORKERS
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while *spawned < want {
        let rx = job_channel().1.clone();
        let name = format!("mtmlf-kernel-{}", *spawned);
        let handle = std::thread::Builder::new().name(name).spawn(move || {
            while let Ok(task) = rx.recv() {
                task.run();
            }
        });
        if handle.is_err() {
            break;
        }
        *spawned += 1;
    }
}

/// Evenly splits `m` rows into `parts` contiguous `(row0, rows)` chunks.
fn split_rows(m: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(m).max(1);
    let base = m / parts;
    let extra = m % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut row0 = 0;
    for i in 0..parts {
        let rows = base + usize::from(i < extra);
        chunks.push((row0, rows));
        row0 += rows;
    }
    chunks
}

fn parallel_gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bkind: BKind,
    nb: usize,
    threads: usize,
    out: &mut [f32],
) {
    let skip_zero = bkind.skip_zero();
    let packed = Arc::new(pack_b(b, k, n, bkind, nb));
    let chunks = split_rows(m, threads);
    ensure_workers(chunks.len().saturating_sub(1));
    let (reply_tx, reply_rx) = channel::bounded::<GemmDone>(chunks.len());
    let jobs = job_channel();

    // Ship every chunk but the first; buffers come from (and return to)
    // this thread's arena, so the workers allocate nothing.
    for (index, &(row0, rows)) in chunks.iter().enumerate().skip(1) {
        let task = GemmTask {
            a_chunk: take_copy(&a[row0 * k..(row0 + rows) * k]),
            rows,
            k,
            n,
            nb,
            skip_zero,
            packed: Arc::clone(&packed),
            out_chunk: take(rows * n, 0.0),
            index,
            reply: reply_tx.clone(),
        };
        if jobs.0.send(task).is_err() {
            // Unreachable (the receiver is static), but degrade gracefully.
            break;
        }
    }
    drop(reply_tx);

    // Our own share, straight into `out`.
    let (_, rows0) = chunks[0];
    blocked_gemm(
        &a[..rows0 * k],
        rows0,
        k,
        &packed,
        n,
        nb,
        skip_zero,
        &mut out[..rows0 * n],
    );

    let mut done = vec![false; chunks.len()];
    done[0] = true;
    let mut pending = chunks.len() - 1;
    let stitch = |d: GemmDone, done: &mut [bool], out: &mut [f32]| {
        let (row0, rows) = chunks[d.index];
        out[row0 * n..(row0 + rows) * n].copy_from_slice(&d.out_chunk);
        done[d.index] = true;
        recycle(d.a_chunk);
        recycle(d.out_chunk);
    };
    'collect: while pending > 0 {
        match reply_rx.try_recv() {
            Ok(d) => {
                stitch(d, &mut done, out);
                pending -= 1;
                continue;
            }
            Err(TryRecvError::Disconnected) => break 'collect,
            Err(TryRecvError::Empty) => {}
        }
        // Help drain the shared queue (this also guarantees progress when
        // no worker thread could be spawned at all).
        match jobs.1.try_recv() {
            Ok(task) => task.run(),
            Err(_) => match reply_rx.recv() {
                // Queue empty: every one of our tasks is done or running
                // elsewhere, so a blocking wait cannot deadlock.
                Ok(d) => {
                    stitch(d, &mut done, out);
                    pending -= 1;
                }
                Err(_) => break 'collect,
            },
        }
    }
    // Any chunk whose reply was lost (a worker died mid-task) is recomputed
    // here; correctness never depends on the pool's health.
    for (index, &(row0, rows)) in chunks.iter().enumerate() {
        if !done[index] {
            blocked_gemm(
                &a[row0 * k..(row0 + rows) * k],
                rows,
                k,
                &packed,
                n,
                nb,
                skip_zero,
                &mut out[row0 * n..(row0 + rows) * n],
            );
        }
    }
    if let Ok(buf) = Arc::try_unwrap(packed) {
        recycle(buf);
    }
}

// ---------------------------------------------------------------------------
// ULP distance (the differential suite's metric).
// ---------------------------------------------------------------------------

/// Units-in-the-last-place distance between two `f32`s: 0 iff bitwise
/// equal or both zero (any signs); `u32::MAX` if either is NaN; otherwise
/// the number of representable floats strictly between them (+1), summed
/// through zero when the signs differ.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    let ab = a.abs().to_bits();
    let bb = b.abs().to_bits();
    if a.is_sign_positive() == b.is_sign_positive() {
        ab.abs_diff(bb)
    } else {
        ab.saturating_add(bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_packs_and_clamps() {
        assert_eq!(
            unpack(pack(KernelConfig::reference())),
            KernelConfig::reference()
        );
        let wild = KernelConfig {
            threads: 1000,
            block_size: 1 << 20,
        };
        let c = wild.clamped();
        assert_eq!(c.threads, MAX_THREADS);
        assert_eq!(c.block_size, MAX_BLOCK);
        assert_eq!(
            KernelConfig {
                threads: 0,
                block_size: 2
            }
            .clamped(),
            KernelConfig {
                threads: 1,
                block_size: MIN_BLOCK
            }
        );
        assert!(KernelConfig::reference().validate().is_ok());
        assert!(KernelConfig::tuned().validate().is_ok());
        assert!(KernelConfig {
            threads: 0,
            block_size: 0
        }
        .validate()
        .is_err());
        assert!(KernelConfig {
            threads: 1,
            block_size: 2
        }
        .validate()
        .is_err());
    }

    #[test]
    fn scoped_overrides_nest_and_restore() {
        let base = current();
        let inner = KernelConfig::single_threaded(8);
        let observed = scoped(inner, || {
            let outer_view = current();
            let nested = scoped(KernelConfig::single_threaded(16), current);
            (outer_view, nested)
        });
        assert_eq!(observed.0, inner);
        assert_eq!(observed.1.block_size, 16);
        assert_eq!(current(), base);
    }

    #[test]
    fn arena_round_trips_buffers() {
        arena_clear();
        let b = take(64, 0.0);
        assert_eq!(b.len(), 64);
        recycle(b);
        assert_eq!(arena_buffers(), 1);
        let b2 = take(16, 1.5);
        assert_eq!(arena_buffers(), 0, "the pooled buffer was reused");
        assert!(b2.iter().all(|&v| v == 1.5));
        recycle(b2);
        arena_clear();
        assert_eq!(arena_buffers(), 0);
    }

    #[test]
    fn split_rows_covers_everything() {
        for m in [1usize, 2, 7, 64, 65] {
            for parts in [1usize, 2, 3, 8] {
                let chunks = split_rows(m, parts);
                let total: usize = chunks.iter().map(|&(_, r)| r).sum();
                assert_eq!(total, m);
                assert!(chunks.iter().all(|&(_, r)| r > 0));
                let mut next = 0;
                for &(row0, rows) in &chunks {
                    assert_eq!(row0, next);
                    next += rows;
                }
            }
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        assert!(ulp_distance(-1.0, 1.0) > 1_000_000);
        assert_eq!(ulp_distance(2.0, -3.0), ulp_distance(-3.0, 2.0));
    }
}

//! Op-level profiling counters.
//!
//! A [`ProfileGuard`] turns on process-wide counting of matrix-op work —
//! matmul calls and their FLOPs, attention forwards, transformer block
//! forwards, and matrix allocations — for its lifetime, and reports the
//! delta as an [`OpStats`] snapshot. The recording hooks compile down to a
//! single relaxed atomic load when no guard is live, so the instrumented
//! kernels cost nothing in ordinary runs.
//!
//! Counters are global and guards nest: the outermost guard enables
//! counting, the innermost `Drop` that brings the depth back to zero
//! disables it, and each guard's [`ProfileGuard::stats`] reports only what
//! happened since that guard began. Counts from concurrent threads are all
//! attributed to every live guard — this is a throughput profiler, not a
//! per-thread tracer.
//!
//! No clocks are read here; wall-time attribution belongs to the serving
//! layer's trace module, which owns the injectable clock.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DEPTH: AtomicUsize = AtomicUsize::new(0);

static MATMUL_CALLS: AtomicU64 = AtomicU64::new(0);
static MATMUL_FLOPS: AtomicU64 = AtomicU64::new(0);
static ATTENTION_CALLS: AtomicU64 = AtomicU64::new(0);
static BLOCK_FORWARDS: AtomicU64 = AtomicU64::new(0);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_FLOATS: AtomicU64 = AtomicU64::new(0);
static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);

/// Records one matrix product of `flops` floating-point operations
/// (`2·m·n·k` for an `(m,k)×(k,n)` product).
#[inline]
pub(crate) fn record_matmul(flops: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        MATMUL_CALLS.fetch_add(1, Ordering::Relaxed);
        MATMUL_FLOPS.fetch_add(flops, Ordering::Relaxed);
    }
}

/// Records one multi-head attention forward.
#[inline]
pub(crate) fn record_attention() {
    if ENABLED.load(Ordering::Relaxed) {
        ATTENTION_CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one encoder/decoder block forward.
#[inline]
pub(crate) fn record_block_forward() {
    if ENABLED.load(Ordering::Relaxed) {
        BLOCK_FORWARDS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one matrix buffer allocation of `floats` elements. Since the
/// kernel arena landed, this fires only on arena *misses* — i.e. genuine
/// heap allocations; arena hits go to [`record_arena_reuse`] instead, so
/// a steady-state forward pass reports zero allocations.
#[inline]
pub(crate) fn record_alloc(floats: u64) {
    if ENABLED.load(Ordering::Relaxed) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_FLOATS.fetch_add(floats, Ordering::Relaxed);
    }
}

/// Records one matrix buffer satisfied from the per-thread kernel arena
/// (no heap allocation happened).
#[inline]
pub(crate) fn record_arena_reuse() {
    if ENABLED.load(Ordering::Relaxed) {
        ARENA_REUSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// A snapshot (or delta) of the profiling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Matrix products executed (`matmul`, `matmul_nt`, `matmul_tn`).
    pub matmul_calls: u64,
    /// Floating-point operations across those products (multiply+add each
    /// count one, i.e. `2·m·n·k` per product).
    pub matmul_flops: u64,
    /// Multi-head attention forwards.
    pub attention_calls: u64,
    /// Transformer encoder/decoder block forwards.
    pub block_forwards: u64,
    /// Matrix buffers heap-allocated (arena misses).
    pub allocations: u64,
    /// Total `f32` elements across those buffers.
    pub allocated_floats: u64,
    /// Matrix buffers served from the per-thread arena instead of the heap.
    pub arena_reuses: u64,
}

impl OpStats {
    fn current() -> Self {
        Self {
            matmul_calls: MATMUL_CALLS.load(Ordering::Relaxed),
            matmul_flops: MATMUL_FLOPS.load(Ordering::Relaxed),
            attention_calls: ATTENTION_CALLS.load(Ordering::Relaxed),
            block_forwards: BLOCK_FORWARDS.load(Ordering::Relaxed),
            allocations: ALLOCATIONS.load(Ordering::Relaxed),
            allocated_floats: ALLOCATED_FLOATS.load(Ordering::Relaxed),
            arena_reuses: ARENA_REUSES.load(Ordering::Relaxed),
        }
    }

    /// `self - earlier`, saturating at zero fieldwise.
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            matmul_calls: self.matmul_calls.saturating_sub(earlier.matmul_calls),
            matmul_flops: self.matmul_flops.saturating_sub(earlier.matmul_flops),
            attention_calls: self.attention_calls.saturating_sub(earlier.attention_calls),
            block_forwards: self.block_forwards.saturating_sub(earlier.block_forwards),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            allocated_floats: self
                .allocated_floats
                .saturating_sub(earlier.allocated_floats),
            arena_reuses: self.arena_reuses.saturating_sub(earlier.arena_reuses),
        }
    }
}

/// RAII guard that enables op counting for its lifetime.
///
/// ```
/// use mtmlf_nn::{Matrix, ProfileGuard};
/// let guard = ProfileGuard::begin();
/// let a = Matrix::full(4, 8, 1.0);
/// let b = Matrix::full(8, 2, 1.0);
/// let _ = a.matmul(&b);
/// let stats = guard.stats();
/// assert_eq!(stats.matmul_calls, 1);
/// assert_eq!(stats.matmul_flops, 2 * 4 * 2 * 8);
/// ```
#[derive(Debug)]
pub struct ProfileGuard {
    baseline: OpStats,
}

impl ProfileGuard {
    /// Starts (or joins) a profiling scope and snapshots the counters.
    #[must_use]
    pub fn begin() -> Self {
        DEPTH.fetch_add(1, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        Self {
            baseline: OpStats::current(),
        }
    }

    /// The work recorded since this guard began.
    pub fn stats(&self) -> OpStats {
        OpStats::current().since(&self.baseline)
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        if DEPTH.fetch_sub(1, Ordering::SeqCst) == 1 {
            ENABLED.store(false, Ordering::SeqCst);
        }
    }
}

// The counter behavior is pinned by `crates/nn/tests/profile.rs`: exact
// FLOP/allocation deltas, zero counting without a live guard, and nested
// guard windows. They live in an integration test because the counters are
// process-global and the assertions need to serialize against each other.

//! Binary (de)serialization of matrices and parameter sets.
//!
//! A minimal, dependency-free format: magic + version header, then each
//! matrix as `rows: u32, cols: u32, data: [f32 LE]`. Used to persist model
//! weights (the paper's workflow ships pre-trained (S)/(T) modules from the
//! cloud provider to users).

use crate::autograd::Var;
use crate::matrix::Matrix;
use std::io::{self, Read, Write};

/// Magic + version prefix of a raw matrix payload. Public so outer formats
/// (e.g. the checksummed envelope in `mtmlf::persist`) can recognize a bare
/// legacy payload and route it to a compatibility path.
pub const PAYLOAD_MAGIC: &[u8; 8] = b"MTMLFNN\x01";

const MAGIC: &[u8; 8] = PAYLOAD_MAGIC;

/// Writes a set of matrices.
pub fn write_matrices<W: Write>(mut w: W, matrices: &[Matrix]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(matrices.len() as u64).to_le_bytes())?;
    for m in matrices {
        w.write_all(&(m.rows() as u32).to_le_bytes())?;
        w.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a set of matrices written by [`write_matrices`].
pub fn read_matrices<R: Read>(mut r: R) -> io::Result<Vec<Matrix>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an mtmlf weight file (bad magic)",
        ));
    }
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut dim = [0u8; 4];
        r.read_exact(&mut dim)?;
        let rows = u32::from_le_bytes(dim) as usize;
        r.read_exact(&mut dim)?;
        let cols = u32::from_le_bytes(dim) as usize;
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        out.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(out)
}

/// Saves the values of a parameter list.
pub fn save_parameters<W: Write>(w: W, params: &[Var]) -> io::Result<()> {
    let matrices: Vec<Matrix> = params.iter().map(Var::to_matrix).collect();
    write_matrices(w, &matrices)
}

/// Loads previously saved values into an existing parameter list. The
/// count and every shape must match (the model architecture is part of the
/// caller's configuration, not the weight file).
pub fn load_parameters<R: Read>(r: R, params: &[Var]) -> io::Result<()> {
    let matrices = read_matrices(r)?;
    if matrices.len() != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "parameter count mismatch: file has {}, model has {}",
                matrices.len(),
                params.len()
            ),
        ));
    }
    for (p, m) in params.iter().zip(&matrices) {
        if p.shape() != m.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch: file {:?}, model {:?}",
                    m.shape(),
                    p.shape()
                ),
            ));
        }
    }
    for (p, m) in params.iter().zip(matrices) {
        p.set_value(m);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matrices_roundtrip() {
        let ms = vec![
            Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]),
            Matrix::scalar(-0.5),
            Matrix::zeros(1, 4),
        ];
        let mut buf = Vec::new();
        write_matrices(&mut buf, &ms).unwrap();
        let back = read_matrices(&buf[..]).unwrap();
        assert_eq!(ms, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 32];
        assert!(read_matrices(&buf[..]).is_err());
    }

    #[test]
    fn parameters_roundtrip_through_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Linear::new(3, 2, &mut rng);
        let b = Linear::new(3, 2, &mut rng);
        let mut buf = Vec::new();
        save_parameters(&mut buf, &a.parameters()).unwrap();
        load_parameters(&buf[..], &b.parameters()).unwrap();
        let x = Var::constant(Matrix::from_vec(1, 3, vec![0.3, -0.7, 0.2]));
        assert_eq!(a.forward(&x).to_matrix(), b.forward(&x).to_matrix());
    }

    #[test]
    fn mismatched_shapes_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Linear::new(3, 2, &mut rng);
        let b = Linear::new(4, 2, &mut rng);
        let mut buf = Vec::new();
        save_parameters(&mut buf, &a.parameters()).unwrap();
        assert!(load_parameters(&buf[..], &b.parameters()).is_err());
        let c = Linear::new(3, 2, &mut rng);
        let too_few = &c.parameters()[..1];
        assert!(load_parameters(&buf[..], too_few).is_err());
    }
}

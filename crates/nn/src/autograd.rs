//! Reverse-mode automatic differentiation on [`Matrix`] values.
//!
//! [`Var`] is a reference-counted node of a dynamically built computation
//! graph ("tape"). Operators allocate new nodes holding the forward value
//! and a backward closure; [`Var::backward`] topologically sorts the graph
//! and accumulates gradients into every node with `requires_grad`.
//!
//! Graphs are rebuilt per training example (define-by-run), which matches
//! the variable-length sequences of query plans.
//!
//! Nodes are `Arc`-shared and lock their payloads, so a model's parameters
//! can be read concurrently from many inference threads (`Var: Send + Sync`).
//! Wrap pure-inference forwards in [`no_grad`] to skip tape construction
//! entirely: derived nodes then keep no parents and no backward closure, and
//! gradient storage is allocated lazily only when a gradient actually flows.

use crate::matrix::Matrix;
use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static NO_GRAD: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with gradient tracking disabled on the current thread.
///
/// Inside the closure every operator produces a plain value node: no parent
/// edges, no backward closure, no gradient storage. This makes inference
/// both faster and lighter (intermediates are freed as soon as they go out
/// of scope instead of being pinned by the tape). Nestable and panic-safe.
pub fn no_grad<T, F: FnOnce() -> T>(f: F) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            NO_GRAD.with(|flag| flag.set(self.0));
        }
    }
    let prev = NO_GRAD.with(|flag| flag.replace(true));
    let _restore = Restore(prev);
    f()
}

/// Whether operators on this thread currently record the tape.
pub fn grad_enabled() -> bool {
    NO_GRAD.with(|flag| !flag.get())
}

type BackwardFn = Box<dyn Fn(&Matrix, &[Var]) + Send + Sync>;

struct Node {
    id: u64,
    value: RwLock<Matrix>,
    /// Allocated on first accumulation; `None` reads as all-zeros.
    grad: RwLock<Option<Matrix>>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A differentiable matrix variable.
#[derive(Clone)]
pub struct Var {
    node: Arc<Node>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.value();
        write!(
            f,
            "Var(id={}, {}x{}, grad={})",
            self.node.id,
            v.rows(),
            v.cols(),
            self.node.requires_grad
        )
    }
}

impl Var {
    fn new(
        value: Matrix,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Self {
        Var {
            node: Arc::new(Node {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RwLock::new(value),
                grad: RwLock::new(None),
                parents,
                backward,
                requires_grad,
            }),
        }
    }

    /// A trainable leaf (parameter).
    pub fn parameter(value: Matrix) -> Self {
        Self::new(value, Vec::new(), None, true)
    }

    /// A constant leaf (input data; receives no gradient).
    pub fn constant(value: Matrix) -> Self {
        Self::new(value, Vec::new(), None, false)
    }

    fn derived(value: Matrix, parents: Vec<Var>, backward: BackwardFn) -> Self {
        let requires = grad_enabled() && parents.iter().any(Var::requires_grad);
        if !requires {
            // Pure value node: drop the edges so upstream intermediates are
            // freed eagerly instead of being pinned by this result.
            return Self::new(value, Vec::new(), None, false);
        }
        Self::new(value, parents, Some(backward), true)
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// Borrow the forward value (shared read lock). Poison is recovered:
    /// a panicking writer cannot leave the tape permanently unusable for
    /// the serving workers that share it.
    pub fn value(&self) -> RwLockReadGuard<'_, Matrix> {
        self.node
            .value
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Clone the forward value.
    pub fn to_matrix(&self) -> Matrix {
        self.value().clone()
    }

    /// Clone the accumulated gradient (all-zeros if none has flowed).
    pub fn grad(&self) -> Matrix {
        // Release the grad guard before `shape()` re-enters the value lock:
        // holding both orders grad→value, while `backward` accumulates
        // under value→grad. Never nest the two.
        {
            let g = self
                .node
                .grad
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(m) = &*g {
                return m.clone();
            }
        }
        let (r, c) = self.shape();
        Matrix::zeros(r, c)
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.value().shape()
    }

    /// The scalar payload of a 1×1 variable.
    pub fn item(&self) -> f32 {
        self.value().item()
    }

    /// Zeroes the gradient (optimizers call this on parameters).
    pub fn zero_grad(&self) {
        *self
            .node
            .grad
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Overwrites the value in place (optimizers; keeps the same node so
    /// existing optimizer state remains attached).
    pub fn set_value(&self, value: Matrix) {
        assert_eq!(value.shape(), self.shape(), "set_value must preserve shape");
        *self
            .node
            .value
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = value;
    }

    fn accumulate(&self, delta: &Matrix) {
        if !self.node.requires_grad {
            return;
        }
        let mut g = self
            .node
            .grad
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *g {
            Some(m) => m.add_assign(delta),
            None => *g = Some(delta.clone()),
        }
    }

    /// Runs reverse-mode accumulation from this node. The seed gradient is
    /// all-ones (so for a 1×1 loss this computes ∂loss/∂θ for every
    /// parameter θ).
    pub fn backward(&self) {
        // Iterative DFS post-order: parents precede consumers in `order`.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        while let Some((var, child_idx)) = stack.pop() {
            if child_idx == 0 && !visited.insert(var.node.id) {
                continue;
            }
            if child_idx < var.node.parents.len() {
                let parent = var.node.parents[child_idx].clone();
                stack.push((var, child_idx + 1));
                if !visited.contains(&parent.node.id) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(var);
            }
        }
        // Seed.
        {
            let shape = self.shape();
            *self
                .node
                .grad
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                Some(Matrix::full(shape.0, shape.1, 1.0));
        }
        for var in order.iter().rev() {
            if let Some(f) = &var.node.backward {
                let g = var
                    .node
                    .grad
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clone();
                // `None` means no gradient reached this node; nothing to
                // propagate further.
                if let Some(g) = g {
                    f(&g, &var.node.parents);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Elementwise & linear-algebra operators
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value());
        Var::derived(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, p| {
                p[0].accumulate(g);
                p[1].accumulate(g);
            }),
        )
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value());
        Var::derived(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, p| {
                p[0].accumulate(g);
                p[1].accumulate(&g.scale(-1.0));
            }),
        )
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Var) -> Var {
        let value = self.value().hadamard(&other.value());
        Var::derived(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, p| {
                p[0].accumulate(&g.hadamard(&p[1].value()));
                p[1].accumulate(&g.hadamard(&p[0].value()));
            }),
        )
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().scale(s);
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| p[0].accumulate(&g.scale(s))),
        )
    }

    /// Adds a 1×cols row vector to every row (bias).
    pub fn add_broadcast_row(&self, row: &Var) -> Var {
        let value = self.value().add_row_broadcast(&row.value());
        Var::derived(
            value,
            vec![self.clone(), row.clone()],
            Box::new(|g, p| {
                p[0].accumulate(g);
                // Bias gradient: column sums.
                let mut col_sum = Matrix::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (s, &v) in col_sum.row_mut(0).iter_mut().zip(g.row(r)) {
                        *s += v;
                    }
                }
                p[1].accumulate(&col_sum);
            }),
        )
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        // The worker-pool GEMM blocks on its private reply channel while
        // both value read-guards are held. Safe: kernel workers never touch
        // the tape, and the drain loop in `parallel_gemm` guarantees
        // progress even with zero workers. Copying the operands out of the
        // guards instead would defeat the zero-allocation warm path.
        // lint: allow(block-under-guard)
        let value = self.value().matmul(&other.value());
        Var::derived(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, p| {
                // dA = G Bᵀ ; dB = Aᵀ G
                p[0].accumulate(&g.matmul_nt(&p[1].value()));
                p[1].accumulate(&p[0].value().matmul_tn(g));
            }),
        )
    }

    /// `self × otherᵀ` (used by attention scores).
    pub fn matmul_nt(&self, other: &Var) -> Var {
        // Same argument as `matmul`: pool recv under the value guards is
        // deadlock-free by the kernel drain-loop progress guarantee.
        // lint: allow(block-under-guard)
        let value = self.value().matmul_nt(&other.value());
        Var::derived(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, p| {
                // out = A Bᵀ ⇒ dA = G B ; dB = Gᵀ A
                p[0].accumulate(&g.matmul(&p[1].value()));
                p[1].accumulate(&g.matmul_tn(&p[0].value()));
            }),
        )
    }

    /// Fused attention scores: `softmax_rows(self × keysᵀ · scale [+ mask])`
    /// in one kernel ([`Matrix::attention_scores`]) instead of the
    /// `matmul_nt → scale → add → softmax_rows` chain of tape nodes and
    /// intermediates. The forward value is bitwise-identical to the chain;
    /// the backward applies the same chain rule with the scale folded in.
    pub fn attention_scores(&self, keys: &Var, scale: f32, mask: Option<&Matrix>) -> Var {
        // Same argument as `matmul`: pool recv under the value guards is
        // deadlock-free by the kernel drain-loop progress guarantee.
        // lint: allow(block-under-guard)
        let value = self.value().attention_scores(&keys.value(), scale, mask);
        if !grad_enabled() || !(self.requires_grad() || keys.requires_grad()) {
            // Skip the y-capture clone entirely on the inference path.
            return Var::constant(value);
        }
        let y = value.clone();
        Var::derived(
            value,
            vec![self.clone(), keys.clone()],
            Box::new(move |g, p| {
                // Softmax backward first: dS_r = y_r ⊙ (g_r − (g_r · y_r)),
                // then through the scaled score product (the mask is a
                // constant): dQ = scale·(dS × K), dK = scale·(dSᵀ × Q).
                let mut ds = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    for (d, (&yv, &gv)) in ds.row_mut(r).iter_mut().zip(yr.iter().zip(gr)) {
                        *d = yv * (gv - dot);
                    }
                }
                p[0].accumulate(&ds.matmul(&p[1].value()).scale(scale));
                p[1].accumulate(&ds.matmul_tn(&p[0].value()).scale(scale));
            }),
        )
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// ReLU.
    pub fn relu(&self) -> Var {
        let value = self.value().map(|v| v.max(0.0));
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(|g, p| {
                let mask = p[0].value().map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                p[0].accumulate(&g.hadamard(&mask));
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().map(f32::tanh);
        let out = Var::derived(
            value,
            vec![self.clone()],
            Box::new(|g, p| {
                let y = p[0].value().map(f32::tanh);
                let d = y.map(|t| 1.0 - t * t);
                p[0].accumulate(&g.hadamard(&d));
            }),
        );
        out
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(|g, p| {
                let y = p[0].value().map(|v| 1.0 / (1.0 + (-v).exp()));
                let d = y.map(|s| s * (1.0 - s));
                p[0].accumulate(&g.hadamard(&d));
            }),
        )
    }

    /// GELU (tanh approximation), the transformer's default activation.
    pub fn gelu(&self) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/π)
        let f = |v: f32| 0.5 * v * (1.0 + (C * (v + 0.044715 * v * v * v)).tanh());
        let value = self.value().map(f);
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                // Numerically robust derivative of the approximation.
                let d = p[0].value().map(|v| {
                    let inner = C * (v + 0.044715 * v * v * v);
                    let t = inner.tanh();
                    let dinner = C * (1.0 + 3.0 * 0.044715 * v * v);
                    0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner
                });
                p[0].accumulate(&g.hadamard(&d));
            }),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().map(f32::exp);
        let y = value.clone();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| p[0].accumulate(&g.hadamard(&y))),
        )
    }

    /// Natural log of `x + eps` (safe for non-negative inputs).
    pub fn ln_eps(&self, eps: f32) -> Var {
        let value = self.value().map(|v| (v + eps).ln());
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                let d = p[0].value().map(|v| 1.0 / (v + eps));
                p[0].accumulate(&g.hadamard(&d));
            }),
        )
    }

    // ------------------------------------------------------------------
    // Row-wise normalizations
    // ------------------------------------------------------------------

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let value = self.value().softmax_rows();
        Var::derived(
            value.clone(),
            vec![self.clone()],
            Box::new(move |g, p| {
                // dx_r = y_r ⊙ (g_r − (g_r · y_r))
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let y = value.row(r);
                    let gr = g.row(r);
                    let dot: f32 = y.iter().zip(gr).map(|(&a, &b)| a * b).sum();
                    for (d, (&yv, &gv)) in dx.row_mut(r).iter_mut().zip(y.iter().zip(gr)) {
                        *d = yv * (gv - dot);
                    }
                }
                p[0].accumulate(&dx);
            }),
        )
    }

    /// Row-wise log-softmax (numerically stable; used for sequence
    /// likelihoods).
    pub fn log_softmax_rows(&self) -> Var {
        let x = self.to_matrix();
        let mut value = x.clone();
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        let softmax = x.softmax_rows();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                // dx_r = g_r − softmax(x)_r · sum(g_r)
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                for r in 0..g.rows() {
                    let gsum: f32 = g.row(r).iter().sum();
                    for (d, (&s, &gv)) in dx
                        .row_mut(r)
                        .iter_mut()
                        .zip(softmax.row(r).iter().zip(g.row(r)))
                    {
                        *d = gv - s * gsum;
                    }
                }
                p[0].accumulate(&dx);
            }),
        )
    }

    /// Row-wise layer normalization (no affine; compose with a
    /// [`crate::LayerNorm`] layer for the learnable scale/shift).
    pub fn layernorm_rows(&self, eps: f32) -> Var {
        let x = self.to_matrix();
        let mut value = x.clone();
        let mut inv_stds = Vec::with_capacity(x.rows());
        for r in 0..value.rows() {
            let row = value.row_mut(r);
            let n = row.len() as f32;
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let inv_std = 1.0 / (var + eps).sqrt();
            inv_stds.push(inv_std);
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_std;
            }
        }
        let y = value.clone();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                // dx = inv_std * (g − mean(g) − y ⊙ mean(g ⊙ y)) rowwise.
                let mut dx = Matrix::zeros(g.rows(), g.cols());
                for (r, &inv_std) in inv_stds.iter().enumerate() {
                    let n = g.cols() as f32;
                    let gr = g.row(r);
                    let yr = y.row(r);
                    let g_mean: f32 = gr.iter().sum::<f32>() / n;
                    let gy_mean: f32 = gr.iter().zip(yr).map(|(&a, &b)| a * b).sum::<f32>() / n;
                    for (d, (&gv, &yv)) in dx.row_mut(r).iter_mut().zip(gr.iter().zip(yr)) {
                        *d = inv_std * (gv - g_mean - yv * gy_mean);
                    }
                }
                p[0].accumulate(&dx);
            }),
        )
    }

    // ------------------------------------------------------------------
    // Shape surgery
    // ------------------------------------------------------------------

    /// Copy of rows `lo..hi` (gradient scatters back).
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Var {
        let value = self.value().slice_rows(lo, hi);
        let (rows, cols) = self.shape();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                let mut dx = Matrix::zeros(rows, cols);
                for (i, r) in (lo..hi).enumerate() {
                    dx.row_mut(r).copy_from_slice(g.row(i));
                }
                p[0].accumulate(&dx);
            }),
        )
    }

    /// Copy of columns `lo..hi` (gradient scatters back).
    pub fn slice_cols(&self, lo: usize, hi: usize) -> Var {
        let value = self.value().slice_cols(lo, hi);
        let (rows, cols) = self.shape();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    dx.row_mut(r)[lo..hi].copy_from_slice(g.row(r));
                }
                p[0].accumulate(&dx);
            }),
        )
    }

    /// Splits into consecutive row blocks of the given lengths (the inverse
    /// of [`Var::concat_rows`]; used to unpack batched forwards).
    pub fn split_rows(&self, lens: &[usize]) -> Vec<Var> {
        let total: usize = lens.iter().sum();
        assert_eq!(
            total,
            self.shape().0,
            "split_rows lengths must cover all rows"
        );
        let mut out = Vec::with_capacity(lens.len());
        let mut offset = 0;
        for &len in lens {
            out.push(self.slice_rows(offset, offset + len));
            offset += len;
        }
        out
    }

    /// Vertical concatenation.
    pub fn concat_rows(parts: &[Var]) -> Var {
        let values: Vec<Matrix> = parts.iter().map(Var::to_matrix).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let value = Matrix::concat_rows(&refs);
        let sizes: Vec<usize> = values.iter().map(Matrix::rows).collect();
        Var::derived(
            value,
            parts.to_vec(),
            Box::new(move |g, p| {
                let mut offset = 0;
                for (var, &rows) in p.iter().zip(&sizes) {
                    var.accumulate(&g.slice_rows(offset, offset + rows));
                    offset += rows;
                }
            }),
        )
    }

    /// Horizontal concatenation.
    pub fn concat_cols(parts: &[Var]) -> Var {
        let values: Vec<Matrix> = parts.iter().map(Var::to_matrix).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let value = Matrix::concat_cols(&refs);
        let sizes: Vec<usize> = values.iter().map(Matrix::cols).collect();
        Var::derived(
            value,
            parts.to_vec(),
            Box::new(move |g, p| {
                let mut offset = 0;
                for (var, &cols) in p.iter().zip(&sizes) {
                    var.accumulate(&g.slice_cols(offset, offset + cols));
                    offset += cols;
                }
            }),
        )
    }

    /// Gathers rows of an embedding table (gradient scatter-adds).
    pub fn embedding(table: &Var, indices: &[usize]) -> Var {
        let t = table.value();
        let mut value = Matrix::zeros(indices.len(), t.cols());
        for (r, &i) in indices.iter().enumerate() {
            value.row_mut(r).copy_from_slice(t.row(i));
        }
        drop(t);
        let indices = indices.to_vec();
        let shape = table.shape();
        Var::derived(
            value,
            vec![table.clone()],
            Box::new(move |g, p| {
                let mut dt = Matrix::zeros(shape.0, shape.1);
                for (r, &i) in indices.iter().enumerate() {
                    for (d, &gv) in dt.row_mut(i).iter_mut().zip(g.row(r)) {
                        *d += gv;
                    }
                }
                p[0].accumulate(&dt);
            }),
        )
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all entries (1×1 output).
    pub fn sum(&self) -> Var {
        let value = Matrix::scalar(self.value().sum());
        let shape = self.shape();
        Var::derived(
            value,
            vec![self.clone()],
            Box::new(move |g, p| {
                p[0].accumulate(&Matrix::full(shape.0, shape.1, g.item()));
            }),
        )
    }

    /// Mean of all entries (1×1 output).
    pub fn mean(&self) -> Var {
        let shape = self.shape();
        let n = (shape.0 * shape.1) as f32;
        self.sum().scale(1.0 / n)
    }

    /// Mean over rows: `(n, d)` → `(1, d)` (sequence pooling).
    pub fn mean_rows(&self) -> Var {
        let (rows, _) = self.shape();
        let ones = Var::constant(Matrix::full(1, rows, 1.0 / rows as f32));
        ones.matmul(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_param(v: f32) -> Var {
        Var::parameter(Matrix::scalar(v))
    }

    /// Finite-difference check of d(loss)/d(param) for a scalar loss.
    fn finite_diff(build: impl Fn(&Var) -> Var, at: Matrix, idx: usize) -> (f32, f32) {
        let p = Var::parameter(at.clone());
        let loss = build(&p);
        loss.backward();
        let analytic = p.grad().data()[idx];

        let eps = 1e-3;
        let mut plus = at.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = at.clone();
        minus.data_mut()[idx] -= eps;
        let lp = build(&Var::parameter(plus)).item();
        let lm = build(&Var::parameter(minus)).item();
        (analytic, (lp - lm) / (2.0 * eps))
    }

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn add_and_scale_grads() {
        let a = scalar_param(2.0);
        let b = scalar_param(3.0);
        let loss = a.add(&b).scale(4.0);
        loss.backward();
        assert_eq!(a.grad().item(), 4.0);
        assert_eq!(b.grad().item(), 4.0);
    }

    #[test]
    fn hadamard_grads() {
        let a = scalar_param(2.0);
        let b = scalar_param(3.0);
        let loss = a.hadamard(&b);
        loss.backward();
        assert_eq!(a.grad().item(), 3.0);
        assert_eq!(b.grad().item(), 2.0);
    }

    #[test]
    fn reuse_accumulates() {
        // loss = x * x → dx = 2x.
        let x = scalar_param(5.0);
        let loss = x.hadamard(&x);
        loss.backward();
        assert_eq!(x.grad().item(), 10.0);
    }

    #[test]
    fn matmul_grad_finite_diff() {
        let b = Var::constant(Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.7]));
        let at = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.5, 1.5]);
        for idx in 0..6 {
            let (a, fd) = finite_diff(
                |p| p.matmul(&b).hadamard(&p.matmul(&b)).sum(),
                at.clone(),
                idx,
            );
            assert_close(a, fd, 2e-2);
        }
    }

    #[test]
    fn matmul_nt_grad_finite_diff() {
        let b = Var::constant(Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.7]));
        let at = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.5, 1.5]);
        for idx in 0..6 {
            let (a, fd) = finite_diff(|p| p.matmul_nt(&b).sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
        }
    }

    #[test]
    fn softmax_grad_finite_diff() {
        let at = Matrix::from_vec(1, 4, vec![0.1, 0.5, -0.3, 0.9]);
        let w = Var::constant(Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.2]));
        for idx in 0..4 {
            let (a, fd) = finite_diff(|p| p.softmax_rows().hadamard(&w).sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
        }
    }

    #[test]
    fn log_softmax_grad_finite_diff() {
        let at = Matrix::from_vec(1, 4, vec![0.1, 0.5, -0.3, 0.9]);
        let w = Var::constant(Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.2]));
        for idx in 0..4 {
            let (a, fd) = finite_diff(|p| p.log_softmax_rows().hadamard(&w).sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
        }
    }

    #[test]
    fn layernorm_grad_finite_diff() {
        let at = Matrix::from_vec(1, 4, vec![0.2, -0.4, 0.8, 1.2]);
        let w = Var::constant(Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.2]));
        for idx in 0..4 {
            let (a, fd) = finite_diff(
                |p| p.layernorm_rows(1e-5).hadamard(&w).sum(),
                at.clone(),
                idx,
            );
            assert_close(a, fd, 3e-2);
        }
    }

    #[test]
    fn activations_grad_finite_diff() {
        let at = Matrix::from_vec(1, 3, vec![0.5, -0.7, 1.3]);
        for idx in 0..3 {
            let (a, fd) = finite_diff(|p| p.tanh().sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
            let (a, fd) = finite_diff(|p| p.sigmoid().sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
            let (a, fd) = finite_diff(|p| p.gelu().sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
            let (a, fd) = finite_diff(|p| p.relu().sum(), at.clone(), idx);
            assert_close(a, fd, 1e-2);
        }
    }

    #[test]
    fn fused_attention_scores_forward_bitwise_and_grads_close() {
        let q = Var::parameter(Matrix::from_vec(2, 3, vec![0.3, -1.2, 0.7, 2.0, -0.4, 0.1]));
        let k = Var::parameter(Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.7]));
        let mask = Matrix::from_vec(2, 2, vec![0.0, -1e9, 0.0, 0.0]);
        let scale = 1.0 / 3f32.sqrt();

        let fused = q.attention_scores(&k, scale, Some(&mask));
        let composed = q
            .matmul_nt(&k)
            .scale(scale)
            .add(&Var::constant(mask.clone()))
            .softmax_rows();
        assert_eq!(fused.to_matrix(), composed.to_matrix());

        let w = Var::constant(Matrix::from_vec(2, 2, vec![0.3, -0.7, 1.1, 0.2]));
        fused.hadamard(&w).sum().backward();
        let (fq, fk) = (q.grad(), k.grad());
        q.zero_grad();
        k.zero_grad();
        composed.hadamard(&w).sum().backward();
        for (a, b) in fq.data().iter().zip(q.grad().data()) {
            assert_close(*a, *b, 1e-5);
        }
        for (a, b) in fk.data().iter().zip(k.grad().data()) {
            assert_close(*a, *b, 1e-5);
        }
    }

    #[test]
    fn slicing_grads_scatter() {
        let at = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let p = Var::parameter(at);
        let loss = p.slice_rows(1, 2).sum();
        loss.backward();
        assert_eq!(p.grad().data(), &[0., 0., 1., 1., 0., 0.]);
        let p2 = Var::parameter(Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let loss2 = p2.slice_cols(2, 3).sum();
        loss2.backward();
        assert_eq!(p2.grad().data(), &[0., 0., 1., 0., 0., 1.]);
    }

    #[test]
    fn concat_grads_split() {
        let a = Var::parameter(Matrix::from_vec(1, 2, vec![1., 2.]));
        let b = Var::parameter(Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]));
        let loss = Var::concat_rows(&[a.clone(), b.clone()]).scale(2.0).sum();
        loss.backward();
        assert_eq!(a.grad().data(), &[2., 2.]);
        assert_eq!(b.grad().data(), &[2., 2., 2., 2.]);
    }

    #[test]
    fn embedding_scatter_add() {
        let table = Var::parameter(Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let e = Var::embedding(&table, &[0, 2, 0]);
        assert_eq!(e.to_matrix().data(), &[1., 2., 5., 6., 1., 2.]);
        e.sum().backward();
        // Row 0 used twice, row 2 once, row 1 never.
        assert_eq!(table.grad().data(), &[2., 2., 0., 0., 1., 1.]);
    }

    #[test]
    fn broadcast_bias_grad() {
        let x = Var::constant(Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let b = Var::parameter(Matrix::from_vec(1, 2, vec![0.5, -0.5]));
        let loss = x.add_broadcast_row(&b).sum();
        loss.backward();
        assert_eq!(b.grad().data(), &[2., 2.]);
    }

    #[test]
    fn constants_get_no_grad() {
        let c = Var::constant(Matrix::scalar(1.0));
        let p = scalar_param(2.0);
        let loss = c.hadamard(&p);
        loss.backward();
        assert_eq!(c.grad().item(), 0.0);
        assert_eq!(p.grad().item(), 1.0);
    }

    #[test]
    fn diamond_graph_accumulates_once() {
        // y = x + x; z = y * y = 4x² → dz/dx = 8x.
        let x = scalar_param(3.0);
        let y = x.add(&x);
        let z = y.hadamard(&y);
        z.backward();
        assert_eq!(x.grad().item(), 24.0);
    }

    #[test]
    fn var_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Var>();
    }

    #[test]
    fn no_grad_skips_tape() {
        let p = scalar_param(2.0);
        let y = no_grad(|| p.scale(3.0).add(&p));
        assert_eq!(y.item(), 8.0);
        assert!(!y.requires_grad());
        // The tape was never built, so backward is a no-op for `p`.
        y.backward();
        assert_eq!(p.grad().item(), 0.0);
        // Outside the closure the tape records again.
        let z = p.scale(3.0);
        z.backward();
        assert_eq!(p.grad().item(), 3.0);
    }

    #[test]
    fn no_grad_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| no_grad(|| panic!("boom")));
        assert!(caught.is_err());
        assert!(grad_enabled());
    }

    #[test]
    fn no_grad_matches_tape_forward_bitwise() {
        let p = Var::parameter(Matrix::from_vec(2, 3, vec![0.3, -1.2, 0.7, 2.0, -0.4, 0.1]));
        let w = Var::parameter(Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.1, -0.3, 0.7]));
        let taped = p.matmul(&w).gelu().softmax_rows().to_matrix();
        let plain = no_grad(|| p.matmul(&w).gelu().softmax_rows().to_matrix());
        assert_eq!(taped, plain);
    }

    #[test]
    fn concurrent_reads_share_parameters() {
        let p = Var::parameter(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || no_grad(|| p.scale(2.0).sum().item()))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
    }

    #[test]
    fn mean_and_ln() {
        let p = Var::parameter(Matrix::from_vec(1, 2, vec![1.0, 3.0]));
        let loss = p.mean();
        loss.backward();
        assert_eq!(p.grad().data(), &[0.5, 0.5]);
        let (a, fd) = finite_diff(
            |p| p.ln_eps(1e-6).sum(),
            Matrix::from_vec(1, 2, vec![2.0, 0.5]),
            0,
        );
        assert_close(a, fd, 1e-2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a small matrix with bounded entries (no NaN/inf).
    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-2.0f32..2.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    /// Central finite difference of a scalar-valued builder at one entry.
    fn fd(build: &dyn Fn(&Var) -> Var, at: &Matrix, idx: usize) -> (f32, f32) {
        let p = Var::parameter(at.clone());
        build(&p).backward();
        let analytic = p.grad().data()[idx];
        let eps = 2e-3;
        let mut plus = at.clone();
        plus.data_mut()[idx] += eps;
        let mut minus = at.clone();
        minus.data_mut()[idx] -= eps;
        let lp = build(&Var::parameter(plus)).item();
        let lm = build(&Var::parameter(minus)).item();
        (analytic, (lp - lm) / (2.0 * eps))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A randomly composed smooth expression has gradients matching
        /// finite differences at a random coordinate.
        #[test]
        fn random_expression_matches_finite_difference(
            at in arb_matrix(2, 3),
            w in arb_matrix(3, 2),
            idx in 0usize..6,
            path in 0u8..4,
        ) {
            let w = Var::constant(w);
            let build = move |p: &Var| -> Var {
                let h = p.matmul(&w); // (2,2)
                let h = match path {
                    0 => h.tanh(),
                    1 => h.sigmoid(),
                    2 => h.gelu(),
                    _ => h.softmax_rows(),
                };
                h.hadamard(&h).mean()
            };
            let (analytic, numeric) = fd(&build, &at, idx);
            prop_assert!(
                (analytic - numeric).abs() <= 0.05 * (1.0 + numeric.abs()),
                "analytic {} vs numeric {}", analytic, numeric
            );
        }

        /// Gradient of a sum splits linearly: d(sum(a+b)) = 1 for both.
        #[test]
        fn addition_linearity(a in arb_matrix(2, 2), b in arb_matrix(2, 2)) {
            let pa = Var::parameter(a);
            let pb = Var::parameter(b);
            pa.add(&pb).sum().backward();
            prop_assert!(pa.grad().data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
            prop_assert!(pb.grad().data().iter().all(|&g| (g - 1.0).abs() < 1e-6));
        }

        /// Softmax rows always sum to 1 and layer-norm rows have ~zero mean.
        #[test]
        fn normalization_invariants(m in arb_matrix(3, 4)) {
            let v = Var::constant(m);
            let s = v.softmax_rows().to_matrix();
            for r in 0..3 {
                let sum: f32 = s.row(r).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-5);
            }
            let n = v.layernorm_rows(1e-5).to_matrix();
            for r in 0..3 {
                let mean: f32 = n.row(r).iter().sum::<f32>() / 4.0;
                prop_assert!(mean.abs() < 1e-5);
            }
        }
    }
}

//! Parameterized layers: linear, layer norm, feed-forward, MLP.

use crate::autograd::Var;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Anything holding trainable parameters.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Total scalar parameter count.
    fn parameter_count(&self) -> usize {
        self.parameters()
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                r * c
            })
            .sum()
    }
}

/// Affine layer `y = x W + b` mapping `(n, in)` to `(n, out)`.
#[derive(Clone)]
pub struct Linear {
    w: Var,
    b: Var,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Var::parameter(Matrix::xavier(input, output, rng)),
            b: Var::parameter(Matrix::zeros(1, output)),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Var) -> Var {
        x.matmul(&self.w).add_broadcast_row(&self.b)
    }

    /// Batched forward: packs the inputs row-wise, runs one matmul, and
    /// splits the result. Row-wise layers make this exactly equivalent to
    /// mapping [`Linear::forward`] over `xs`.
    pub fn forward_batch(&self, xs: &[Var]) -> Vec<Var> {
        match xs {
            [] => Vec::new(),
            [x] => vec![self.forward(x)],
            _ => {
                let lens: Vec<usize> = xs.iter().map(|x| x.shape().0).collect();
                self.forward(&Var::concat_rows(xs)).split_rows(&lens)
            }
        }
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Var> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Layer normalization with learnable scale and shift.
#[derive(Clone)]
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `dim` features.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Var::parameter(Matrix::full(1, dim, 1.0)),
            beta: Var::parameter(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    /// Forward pass: row-wise normalize, then scale and shift.
    pub fn forward(&self, x: &Var) -> Var {
        let normalized = x.layernorm_rows(self.eps);
        // Broadcast gamma over rows via hadamard with a tiled row: build a
        // constant-free formulation: y = n ⊙ Γ + β, where Γ/β broadcast.
        let (rows, _) = normalized.shape();
        let gamma_tiled = Var::concat_rows(&vec![self.gamma.clone(); rows]);
        normalized
            .hadamard(&gamma_tiled)
            .add_broadcast_row(&self.beta)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Transformer position-wise feed-forward: `Linear → GELU → Linear`.
#[derive(Clone)]
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// Builds with hidden width `hidden` (typically `4 × d_model`).
    pub fn new(dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Self {
            l1: Linear::new(dim, hidden, rng),
            l2: Linear::new(hidden, dim, rng),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Var) -> Var {
        self.l2.forward(&self.l1.forward(x).gelu())
    }
}

impl Module for FeedForward {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.l1.parameters();
        p.extend(self.l2.parameters());
        p
    }
}

/// A multi-layer perceptron with GELU activations between layers (the
/// paper's `M_CardEst` / `M_CostEst` heads are two-layer MLPs).
#[derive(Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds from a width list, e.g. `[64, 32, 1]` for a two-layer head.
    pub fn new(widths: &[usize], rng: &mut StdRng) -> Self {
        assert!(
            widths.len() >= 2,
            "MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Forward pass (no activation after the last layer).
    pub fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(&h);
            if i + 1 < self.layers.len() {
                h = h.gelu();
            }
        }
        h
    }

    /// Batched forward over several inputs: packs rows, runs the whole MLP
    /// once, splits the result (all layers are row-wise).
    pub fn forward_batch(&self, xs: &[Var]) -> Vec<Var> {
        match xs {
            [] => Vec::new(),
            [x] => vec![self.forward(x)],
            _ => {
                let lens: Vec<usize> = xs.iter().map(|x| x.shape().0).collect();
                self.forward(&Var::concat_rows(xs)).split_rows(&lens)
            }
        }
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new(4, 3, &mut rng);
        let x = Var::constant(Matrix::zeros(5, 4));
        assert_eq!(l.forward(&x).shape(), (5, 3));
        assert_eq!(l.parameter_count(), 4 * 3 + 3);
    }

    #[test]
    fn linear_trains_toward_target() {
        // One linear layer can fit y = 2x + 1.
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new(1, 1, &mut rng);
        let mut opt = crate::optim::Adam::new(l.parameters(), 0.05);
        for _ in 0..200 {
            let x = Var::constant(Matrix::from_vec(4, 1, vec![-1.0, 0.0, 1.0, 2.0]));
            let target = Var::constant(Matrix::from_vec(4, 1, vec![-1.0, 1.0, 3.0, 5.0]));
            let pred = l.forward(&x);
            let diff = pred.sub(&target);
            let loss = diff.hadamard(&diff).mean();
            opt.zero_grad();
            loss.backward();
            opt.step();
        }
        let x = Var::constant(Matrix::from_vec(1, 1, vec![3.0]));
        let y = l.forward(&x).item();
        assert!((y - 7.0).abs() < 0.1, "prediction {y}");
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Var::constant(Matrix::from_vec(
            2,
            4,
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
        ));
        let y = ln.forward(&x).to_matrix();
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn layernorm_gamma_beta_trainable() {
        let ln = LayerNorm::new(3);
        let x = Var::constant(Matrix::from_vec(1, 3, vec![1., 2., 3.]));
        let loss = ln.forward(&x).sum();
        loss.backward();
        let params = ln.parameters();
        assert!(params[0].grad().norm() > 0.0, "gamma receives gradient");
        assert!(params[1].grad().norm() > 0.0, "beta receives gradient");
    }

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[8, 16, 1], &mut rng);
        let x = Var::constant(Matrix::zeros(3, 8));
        assert_eq!(mlp.forward(&x).shape(), (3, 1));
        assert_eq!(mlp.parameters().len(), 4);
    }

    #[test]
    fn linear_and_mlp_batched_match_individual() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = Linear::new(6, 3, &mut rng);
        let mlp = Mlp::new(&[6, 12, 2], &mut rng);
        let xs: Vec<Var> = [2usize, 4, 1]
            .iter()
            .map(|&n| Var::constant(Matrix::xavier(n, 6, &mut rng)))
            .collect();
        for (batched, x) in l.forward_batch(&xs).iter().zip(&xs) {
            assert_eq!(batched.to_matrix(), l.forward(x).to_matrix());
        }
        for (batched, x) in mlp.forward_batch(&xs).iter().zip(&xs) {
            assert_eq!(batched.to_matrix(), mlp.forward(x).to_matrix());
        }
    }

    #[test]
    fn feedforward_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let ff = FeedForward::new(6, 24, &mut rng);
        let x = Var::constant(Matrix::zeros(5, 6));
        assert_eq!(ff.forward(&x).shape(), (5, 6));
    }
}

//! Optimizers: Adam (the paper uses Adam with lr 1e-4) and plain SGD.

use crate::autograd::Var;
use crate::matrix::Matrix;

/// Adam optimizer (Kingma & Ba \[14\], as used by the paper).
pub struct Adam {
    params: Vec<Var>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    clip: Option<f32>,
}

impl Adam {
    /// Creates Adam over `params` with learning rate `lr` and default betas
    /// `(0.9, 0.999)`.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        let m = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        let v = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Self {
            params,
            m,
            v,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            clip: Some(5.0),
        }
    }

    /// Sets (or disables) global gradient-norm clipping.
    pub fn with_clip(mut self, clip: Option<f32>) -> Self {
        self.clip = clip;
        self
    }

    /// Sets the learning rate (e.g. lowered for fine-tuning).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        // Optional global-norm clip to stabilize transformer training.
        let scale = match self.clip {
            Some(clip) => {
                let total: f32 = self
                    .params
                    .iter()
                    .map(|p| {
                        let g = p.grad();
                        g.data().iter().map(|v| v * v).sum::<f32>()
                    })
                    .sum::<f32>()
                    .sqrt();
                if total > clip {
                    clip / total
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let g = p.grad().scale(scale);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let mut value = p.to_matrix();
            for (((mv, vv), gv), x) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(g.data())
                .zip(value.data_mut())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                let m_hat = *mv / bias1;
                let v_hat = *vv / bias2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.set_value(value);
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (x - 3)² from x = 0.
        let x = Var::parameter(Matrix::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        for _ in 0..200 {
            opt.zero_grad();
            let c = Var::constant(Matrix::scalar(3.0));
            let d = x.sub(&c);
            let loss = d.hadamard(&d);
            loss.backward();
            opt.step();
        }
        assert!((x.item() - 3.0).abs() < 0.05, "x = {}", x.item());
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn clipping_bounds_update() {
        let x = Var::parameter(Matrix::scalar(0.0));
        let mut opt = Adam::new(vec![x.clone()], 0.1).with_clip(Some(1e-3));
        opt.zero_grad();
        let loss = x.scale(1e6);
        loss.backward();
        opt.step();
        // With tiny clip the first Adam step is still bounded by lr.
        assert!(x.item().abs() <= 0.11, "x = {}", x.item());
    }

    #[test]
    fn zero_grad_resets() {
        let x = Var::parameter(Matrix::scalar(1.0));
        let loss = x.scale(2.0);
        loss.backward();
        assert_eq!(x.grad().item(), 2.0);
        let opt = Adam::new(vec![x.clone()], 0.1);
        opt.zero_grad();
        assert_eq!(x.grad().item(), 0.0);
    }

    #[test]
    fn lr_adjustable() {
        let mut opt = Adam::new(vec![Var::parameter(Matrix::scalar(0.0))], 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}

//! Plan costing under an estimator, with physical operator selection.
//!
//! The coefficients are shared with the executor's [`CostTracker`], so the
//! planner's objective and the runtime's charge agree up to estimation
//! error — which is the point: a planner with perfect cardinalities (the
//! ECQO stand-in) finds the truly optimal plan under the simulated runtime.

use crate::estimator::Estimator;
use crate::Result;
use mtmlf_exec::cost::{CostTracker, OperatorCost};
use mtmlf_query::{JoinGraph, JoinOp, PlanNode, Query, ScanOp};
use mtmlf_storage::Database;

/// Selectivity below which the planner picks an index scan for a filtered
/// base table (access-path selection; the paper's canonical example of
/// database-agnostic meta knowledge).
pub const INDEX_SCAN_SELECTIVITY: f64 = 0.02;
/// Input size below which a nested-loop join beats building a hash table.
pub const NL_JOIN_MAX_ROWS: f64 = 8.0;

/// Chooses the scan operator for a base table given estimated selectivity.
pub fn choose_scan_op(selectivity: f64, filtered: bool) -> ScanOp {
    if filtered && selectivity < INDEX_SCAN_SELECTIVITY {
        ScanOp::IndexScan
    } else {
        ScanOp::SeqScan
    }
}

/// Chooses the join operator from estimated input sizes.
pub fn choose_join_op(left_rows: f64, right_rows: f64) -> JoinOp {
    if left_rows.min(right_rows) <= NL_JOIN_MAX_ROWS && left_rows * right_rows <= 65536.0 {
        JoinOp::NestedLoopJoin
    } else {
        JoinOp::HashJoin
    }
}

/// Costs plans under an estimator. Base-table sizes come from the catalog
/// (every planner can see table row counts).
pub struct PlanCoster<'a, E: Estimator> {
    estimator: &'a E,
    db: &'a Database,
    coefficients: OperatorCost,
}

impl<'a, E: Estimator> PlanCoster<'a, E> {
    /// Creates a coster with default coefficients.
    pub fn new(estimator: &'a E, db: &'a Database) -> Self {
        Self {
            estimator,
            db,
            coefficients: OperatorCost::default(),
        }
    }

    /// Estimated cost (work units) of `plan` for `query`. Scan operators on
    /// leaves and join operators on inner nodes are taken from the plan.
    pub fn cost(&self, query: &Query, graph: &JoinGraph, plan: &PlanNode) -> Result<f64> {
        Ok(self.cost_rec(query, graph, plan)?.0)
    }

    /// Estimated `(cardinality, cumulative cost)` of the sub-plan rooted at
    /// every node of `plan`, in post-order — the estimator-side analogue of
    /// the executor's per-node observations, used to score the classical
    /// baseline on the paper's per-node CardEst/CostEst tasks.
    pub fn per_node(
        &self,
        query: &Query,
        graph: &JoinGraph,
        plan: &PlanNode,
    ) -> Result<Vec<(f64, f64)>> {
        let mut out = Vec::with_capacity(plan.node_count());
        self.per_node_rec(query, graph, plan, &mut out)?;
        Ok(out)
    }

    fn per_node_rec(
        &self,
        query: &Query,
        graph: &JoinGraph,
        plan: &PlanNode,
        out: &mut Vec<(f64, f64)>,
    ) -> Result<(f64, f64, u64)> {
        match plan {
            PlanNode::Scan { table, op } => {
                let v = graph
                    .vertex_of(*table)
                    .ok_or(mtmlf_query::QueryError::OrderTableNotInQuery(*table))?;
                let bits = 1u64 << v;
                let rows = self.estimator.cardinality(query, graph, bits)?;
                let table_rows = self.db.table(*table)?.rows() as f64;
                let cost = CostTracker::scan_cost(&self.coefficients, *op, table_rows, rows);
                out.push((rows, cost));
                Ok((cost, rows, bits))
            }
            PlanNode::Join { op, left, right } => {
                let (lc, lr, lb) = self.per_node_rec(query, graph, left, out)?;
                let (rc, rr, rb) = self.per_node_rec(query, graph, right, out)?;
                let bits = lb | rb;
                let rows = self.estimator.cardinality(query, graph, bits)?;
                let jc = CostTracker::join_cost(&self.coefficients, *op, lr, rr, rows);
                let cost = lc + rc + jc;
                out.push((rows, cost));
                Ok((cost, rows, bits))
            }
        }
    }

    /// Returns `(cost, estimated_rows, subset_bits)`.
    fn cost_rec(
        &self,
        query: &Query,
        graph: &JoinGraph,
        plan: &PlanNode,
    ) -> Result<(f64, f64, u64)> {
        match plan {
            PlanNode::Scan { table, op } => {
                let v = graph
                    .vertex_of(*table)
                    .ok_or(mtmlf_query::QueryError::OrderTableNotInQuery(*table))?;
                let bits = 1u64 << v;
                let rows = self.estimator.cardinality(query, graph, bits)?;
                let table_rows = self.db.table(*table)?.rows() as f64;
                let cost = CostTracker::scan_cost(&self.coefficients, *op, table_rows, rows);
                Ok((cost, rows, bits))
            }
            PlanNode::Join { op, left, right } => {
                let (lc, lr, lb) = self.cost_rec(query, graph, left)?;
                let (rc, rr, rb) = self.cost_rec(query, graph, right)?;
                let bits = lb | rb;
                let out = self.estimator.cardinality(query, graph, bits)?;
                let jc = CostTracker::join_cost(&self.coefficients, *op, lr, rr, out);
                Ok((lc + rc + jc, out, bits))
            }
        }
    }

    /// The coefficient set in use.
    pub fn coefficients(&self) -> &OperatorCost {
        &self.coefficients
    }
}

/// Convenience: cost a plan under an estimator with default coefficients.
pub fn plan_cost<E: Estimator>(
    estimator: &E,
    db: &Database,
    query: &Query,
    graph: &JoinGraph,
    plan: &PlanNode,
) -> Result<f64> {
    PlanCoster::new(estimator, db).cost(query, graph, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_op_selection() {
        assert_eq!(choose_scan_op(0.001, true), ScanOp::IndexScan);
        assert_eq!(choose_scan_op(0.5, true), ScanOp::SeqScan);
        assert_eq!(choose_scan_op(0.001, false), ScanOp::SeqScan);
    }

    #[test]
    fn join_op_selection() {
        assert_eq!(choose_join_op(3.0, 100.0), JoinOp::NestedLoopJoin);
        assert_eq!(choose_join_op(1000.0, 1000.0), JoinOp::HashJoin);
        assert_eq!(
            choose_join_op(2.0, 1_000_000.0),
            JoinOp::HashJoin,
            "tiny×huge still exceeds the NL product cap"
        );
    }
}

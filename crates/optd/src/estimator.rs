//! Cardinality estimators: the PostgreSQL-style statistics estimator and
//! the true-cardinality oracle.

use crate::Result;
use mtmlf_exec::hasher::FxHashMap;
use mtmlf_query::{CmpOp, FilterPredicate, JoinGraph, LikePattern, Query};
use mtmlf_storage::{ColumnStats, Database, TableId};

/// PostgreSQL's selectivity constant for `LIKE '%...%'` patterns it cannot
/// analyze (`DEFAULT_MATCH_SEL`-style magic constant). A major source of the
/// baseline's q-error on string-heavy workloads.
pub const DEFAULT_MATCH_SEL: f64 = 0.005;
/// Selectivity constant for prefix `LIKE 'x%'` patterns (slightly less
/// selective than an unanchored match in PostgreSQL's heuristics).
pub const PREFIX_MATCH_SEL: f64 = 0.01;
/// Default equality selectivity when the distinct count is unknown.
pub const DEFAULT_EQ_SEL: f64 = 0.005;

/// A source of cardinality estimates for connected table subsets of a query.
///
/// `subset` is a bitset over the vertices of the query's [`JoinGraph`]
/// (singletons estimate a filtered base table).
pub trait Estimator {
    /// Estimated cardinality (≥ 0) of joining the tables in `subset` with
    /// all applicable join predicates and per-table filters applied.
    fn cardinality(&self, query: &Query, graph: &JoinGraph, subset: u64) -> Result<f64>;
}

/// The PostgreSQL-style estimator.
///
/// - per-column equi-depth histograms and MCV lists drive filter
///   selectivities;
/// - conjunctive filters multiply (attribute-value independence);
/// - each join predicate contributes `1 / max(ndv(a), ndv(b))`
///   (join-key uniformity and inclusion);
/// - `LIKE` uses magic constants.
///
/// These assumptions are exactly what the paper's skewed, correlated data
/// generator defeats, producing the large "PostgreSQL" q-errors of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct PgEstimator<'a> {
    db: &'a Database,
}

impl<'a> PgEstimator<'a> {
    /// Creates an estimator over a database whose tables have been
    /// `analyze`d.
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    /// Selectivity of one filter predicate using column statistics.
    fn predicate_selectivity(&self, stats: &ColumnStats, pred: &FilterPredicate) -> f64 {
        match pred {
            FilterPredicate::Cmp { op, value, .. } => {
                let Some(v) = numeric_view(value, stats) else {
                    return DEFAULT_EQ_SEL;
                };
                match op {
                    CmpOp::Eq => self.eq_selectivity(stats, v),
                    CmpOp::Neq => (1.0 - self.eq_selectivity(stats, v)).max(0.0),
                    CmpOp::Lt => self.range_fraction(stats, f64::NEG_INFINITY, v, false),
                    CmpOp::Le => self.range_fraction(stats, f64::NEG_INFINITY, v, true),
                    CmpOp::Gt => 1.0 - self.range_fraction(stats, f64::NEG_INFINITY, v, true),
                    CmpOp::Ge => 1.0 - self.range_fraction(stats, f64::NEG_INFINITY, v, false),
                }
            }
            FilterPredicate::Between { lo, hi, .. } => {
                let (Some(lo), Some(hi)) = (numeric_view(lo, stats), numeric_view(hi, stats))
                else {
                    return DEFAULT_EQ_SEL;
                };
                match &stats.histogram {
                    Some(h) => h.fraction_between(lo, hi),
                    None => DEFAULT_EQ_SEL,
                }
            }
            FilterPredicate::Like { pattern, .. } => match pattern {
                LikePattern::Prefix(_) => PREFIX_MATCH_SEL,
                LikePattern::Contains(_) | LikePattern::Suffix(_) => DEFAULT_MATCH_SEL,
            },
            FilterPredicate::InSet { values, .. } => values
                .iter()
                .map(|v| match numeric_view(v, stats) {
                    Some(v) => self.eq_selectivity(stats, v),
                    None => DEFAULT_EQ_SEL,
                })
                .sum::<f64>()
                .min(1.0),
        }
    }

    fn eq_selectivity(&self, stats: &ColumnStats, v: f64) -> f64 {
        if let Some(f) = stats.mcv_frequency(v) {
            return f;
        }
        // Value not among MCVs: spread the non-MCV mass uniformly over the
        // non-MCV distinct values.
        let mcv_mass: f64 = stats.mcvs.iter().map(|m| m.frequency).sum();
        let non_mcv_distinct = (stats.distinct as f64 - stats.mcvs.len() as f64).max(1.0);
        ((1.0 - mcv_mass).max(0.0) / non_mcv_distinct).min(1.0)
    }

    fn range_fraction(&self, stats: &ColumnStats, lo: f64, hi: f64, inclusive_hi: bool) -> f64 {
        match &stats.histogram {
            Some(h) => {
                let f = if inclusive_hi {
                    h.fraction_between(lo.max(stats.min), hi)
                } else {
                    h.fraction_below(hi) - h.fraction_below(lo.max(stats.min))
                };
                f.clamp(0.0, 1.0)
            }
            None => DEFAULT_EQ_SEL,
        }
    }

    /// Estimated cardinality of one filtered base table.
    pub fn base_cardinality(&self, query: &Query, table: TableId) -> Result<f64> {
        let t = self.db.table(table)?;
        let stats = t.stats()?;
        let mut selectivity = 1.0;
        for pred in query.filters_on(table) {
            let col_stats = stats.columns.get(pred.column().index()).ok_or(
                mtmlf_storage::StorageError::ColumnIdOutOfRange {
                    table: t.name().to_string(),
                    column: pred.column().0,
                },
            )?;
            selectivity *= self.predicate_selectivity(col_stats, pred);
        }
        Ok((t.rows() as f64 * selectivity).max(0.0))
    }

    /// Join selectivity of one predicate: `1 / max(ndv(a), ndv(b))`.
    fn join_selectivity(&self, pred: &mtmlf_query::predicate::JoinPredicate) -> Result<f64> {
        let ndv = |c: mtmlf_query::predicate::ColumnRef| -> Result<f64> {
            let t = self.db.table(c.table)?;
            let stats = t.stats()?;
            Ok(stats
                .columns
                .get(c.column.index())
                .map_or(1.0, |s| s.distinct as f64)
                .max(1.0))
        };
        Ok(1.0 / ndv(pred.left)?.max(ndv(pred.right)?))
    }
}

impl Estimator for PgEstimator<'_> {
    fn cardinality(&self, query: &Query, graph: &JoinGraph, subset: u64) -> Result<f64> {
        let mut card = 1.0;
        let mut bits = subset;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            card *= self.base_cardinality(query, graph.table(v))?;
        }
        for pred in query.joins() {
            let (Some(a), Some(b)) = (
                graph.vertex_of(pred.left.table),
                graph.vertex_of(pred.right.table),
            ) else {
                continue;
            };
            if subset & (1 << a) != 0 && subset & (1 << b) != 0 {
                card *= self.join_selectivity(pred)?;
            }
        }
        Ok(card.max(0.0))
    }
}

/// The true-cardinality oracle: wraps the connected-subset cardinalities
/// computed by [`mtmlf_exec::Executor::subset_cardinalities`]. This is the
/// estimator behind the ECQO-style exact optimal enumeration.
#[derive(Debug, Clone)]
pub struct TrueCardEstimator {
    cards: FxHashMap<u64, u64>,
}

impl TrueCardEstimator {
    /// Wraps a subset-cardinality map (keys are join-graph-local bitsets).
    pub fn new(cards: FxHashMap<u64, u64>) -> Self {
        Self { cards }
    }

    /// Computes the oracle for a query by executing all connected subsets.
    pub fn compute(db: &Database, query: &Query) -> Result<Self> {
        Self::compute_with(&mtmlf_exec::Executor::new(db), query)
    }

    /// [`TrueCardEstimator::compute`] with a caller-configured executor
    /// (e.g. a tighter row limit during bulk labelling).
    pub fn compute_with(exec: &mtmlf_exec::Executor<'_>, query: &Query) -> Result<Self> {
        Ok(Self::new(exec.subset_cardinalities(query)?))
    }
}

impl Estimator for TrueCardEstimator {
    fn cardinality(&self, _query: &Query, _graph: &JoinGraph, subset: u64) -> Result<f64> {
        self.cards
            .get(&subset)
            .map(|&c| c as f64)
            .ok_or(crate::OptError::MissingCardinality(subset))
    }
}

fn numeric_view(value: &mtmlf_storage::Value, stats: &ColumnStats) -> Option<f64> {
    use mtmlf_storage::ColumnType;
    match (value, stats.ctype) {
        (mtmlf_storage::Value::Str(_), ColumnType::Str) => {
            // Statistics track dictionary codes; without the dictionary the
            // estimator treats string equality as a default-selectivity
            // lookup (PostgreSQL similarly falls back without stats).
            None
        }
        _ => value.as_numeric(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_query::FilterPredicate;
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableSchema, Value};
    use std::collections::BTreeMap;

    /// a(id, v) 1000 rows with v uniform 0..100; b(id, a_id) 500 rows.
    fn make_db() -> Database {
        let mut db = Database::new("est");
        let a = Table::from_columns(
            TableSchema::new(
                "a",
                vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..1000).collect()),
                Column::Int((0..1000).map(|i| i % 100).collect()),
            ],
        )
        .unwrap();
        db.add_table(a).unwrap();
        let b = Table::from_columns(
            TableSchema::new(
                "b",
                vec![ColumnDef::pk("id"), ColumnDef::fk("a_id", TableId(0))],
            ),
            vec![
                Column::Int((0..500).collect()),
                Column::Int((0..500).map(|i| i * 2).collect()),
            ],
        )
        .unwrap();
        db.add_table(b).unwrap();
        db.analyze_all(16, 8);
        db
    }

    fn query_ab(filters: BTreeMap<TableId, Vec<FilterPredicate>>) -> Query {
        Query::new(
            vec![TableId(0), TableId(1)],
            vec![JoinPredicate::new(
                ColumnRef::new(TableId(0), ColumnId(0)),
                ColumnRef::new(TableId(1), ColumnId(1)),
            )],
            filters,
        )
        .unwrap()
    }

    #[test]
    fn unfiltered_base_estimate() {
        let db = make_db();
        let est = PgEstimator::new(&db);
        let q = query_ab(BTreeMap::new());
        assert_eq!(est.base_cardinality(&q, TableId(0)).unwrap(), 1000.0);
    }

    #[test]
    fn range_estimate_close_on_uniform_data() {
        let db = make_db();
        let est = PgEstimator::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Lt,
                value: Value::Int(50),
            }],
        );
        let q = query_ab(filters);
        let c = est.base_cardinality(&q, TableId(0)).unwrap();
        assert!((c - 500.0).abs() < 75.0, "estimate {c} for true 500");
    }

    #[test]
    fn eq_estimate_uniform() {
        let db = make_db();
        let est = PgEstimator::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Eq,
                value: Value::Int(7),
            }],
        );
        let q = query_ab(filters);
        let c = est.base_cardinality(&q, TableId(0)).unwrap();
        assert!((c - 10.0).abs() < 3.0, "estimate {c} for true 10");
    }

    #[test]
    fn independence_assumption_multiplies() {
        // Two perfectly correlated predicates: PG underestimates.
        let mut db = Database::new("corr");
        let t = Table::from_columns(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::attr("x", ColumnType::Int),
                    ColumnDef::attr("y", ColumnType::Int),
                ],
            ),
            vec![
                Column::Int((0..1000).map(|i| i % 10).collect()),
                Column::Int((0..1000).map(|i| i % 10).collect()), // y == x
            ],
        )
        .unwrap();
        db.add_table(t).unwrap();
        db.analyze_all(16, 4);
        let est = PgEstimator::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![
                FilterPredicate::Cmp {
                    column: ColumnId(0),
                    op: CmpOp::Eq,
                    value: Value::Int(3),
                },
                FilterPredicate::Cmp {
                    column: ColumnId(1),
                    op: CmpOp::Eq,
                    value: Value::Int(3),
                },
            ],
        );
        let q = Query::new(vec![TableId(0)], vec![], filters).unwrap();
        let c = est.base_cardinality(&q, TableId(0)).unwrap();
        // True cardinality is 100; independence gives ~1000 * 0.1 * 0.1 = 10.
        assert!(c < 20.0, "independence underestimates: {c}");
    }

    #[test]
    fn like_uses_magic_constant() {
        let mut db = Database::new("like");
        let t = Table::from_columns(
            TableSchema::new("t", vec![ColumnDef::attr("s", ColumnType::Str)]),
            vec![Column::str_from_strings(
                &(0..100).map(|i| format!("value{i}")).collect::<Vec<_>>(),
            )],
        )
        .unwrap();
        db.add_table(t).unwrap();
        db.analyze_all(8, 4);
        let est = PgEstimator::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Like {
                column: ColumnId(0),
                pattern: LikePattern::Contains("value".into()),
            }],
        );
        let q = Query::new(vec![TableId(0)], vec![], filters).unwrap();
        let c = est.base_cardinality(&q, TableId(0)).unwrap();
        // True is 100 (all match); magic constant gives 0.5.
        assert!((c - 100.0 * DEFAULT_MATCH_SEL).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_pk_fk() {
        let db = make_db();
        let est = PgEstimator::new(&db);
        let q = query_ab(BTreeMap::new());
        let graph = q.join_graph().unwrap();
        let c = est.cardinality(&q, &graph, 0b11).unwrap();
        // 1000 * 500 / max(1000, 500) = 500 — exact for PK-FK inclusion.
        assert!((c - 500.0).abs() < 1.0, "estimate {c}");
    }

    #[test]
    fn true_oracle_exact() {
        let db = make_db();
        let q = query_ab(BTreeMap::new());
        let graph = q.join_graph().unwrap();
        let oracle = TrueCardEstimator::compute(&db, &q).unwrap();
        assert_eq!(oracle.cardinality(&q, &graph, 0b01).unwrap(), 1000.0);
        assert_eq!(oracle.cardinality(&q, &graph, 0b10).unwrap(), 500.0);
        assert_eq!(oracle.cardinality(&q, &graph, 0b11).unwrap(), 500.0);
        assert!(oracle.cardinality(&q, &graph, 0b1000).is_err());
    }

    #[test]
    fn stats_required() {
        let mut db = Database::new("nostats");
        let t = Table::from_columns(
            TableSchema::new("t", vec![ColumnDef::attr("x", ColumnType::Int)]),
            vec![Column::Int(vec![1, 2, 3])],
        )
        .unwrap();
        db.add_table(t).unwrap();
        let est = PgEstimator::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(0),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        );
        let q = Query::new(vec![TableId(0)], vec![], filters).unwrap();
        assert!(est.base_cardinality(&q, TableId(0)).is_err());
    }
}

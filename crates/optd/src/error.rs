//! Error type for optimization.

use mtmlf_exec::ExecError;
use mtmlf_query::QueryError;
use mtmlf_storage::StorageError;
use std::fmt;

/// Errors produced by the optimizers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// Underlying storage failure (e.g. statistics not built).
    Storage(StorageError),
    /// Underlying query failure.
    Query(QueryError),
    /// Underlying execution failure (true-cardinality oracle).
    Exec(ExecError),
    /// The DP could not construct any legal plan (should be impossible for
    /// validated, connected queries).
    NoPlanFound,
    /// A cardinality was requested for a subset with no DP entry.
    MissingCardinality(u64),
    /// A parallel labelling worker panicked; its chunk's labels are lost.
    WorkerPanicked,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::Query(e) => write!(f, "query error: {e}"),
            Self::Exec(e) => write!(f, "execution error: {e}"),
            Self::NoPlanFound => write!(f, "no legal plan found"),
            Self::MissingCardinality(s) => {
                write!(f, "no cardinality available for subset {s:#b}")
            }
            Self::WorkerPanicked => write!(f, "a labelling worker thread panicked"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Query(e) => Some(e),
            Self::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for OptError {
    fn from(e: StorageError) -> Self {
        OptError::Storage(e)
    }
}

impl From<QueryError> for OptError {
    fn from(e: QueryError) -> Self {
        OptError::Query(e)
    }
}

impl From<ExecError> for OptError {
    fn from(e: ExecError) -> Self {
        OptError::Exec(e)
    }
}

//! The PostgreSQL-style baseline optimizer.

use crate::dp::{best_bushy_order, best_left_deep_order, PlannedQuery};
use crate::estimator::{Estimator, PgEstimator};
use crate::Result;
use mtmlf_query::Query;
use mtmlf_storage::{Database, TableId};

/// Which plan space the optimizer searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderSpace {
    /// Left-deep orders only (the space the paper's `Trans_JO` targets).
    #[default]
    LeftDeep,
    /// Bushy plans.
    Bushy,
}

/// The classical baseline: statistics-based estimation + cost-based DP.
/// This is the "PostgreSQL" row of the paper's Tables 1–3.
#[derive(Debug, Clone, Copy)]
pub struct PgOptimizer<'a> {
    db: &'a Database,
    space: OrderSpace,
}

impl<'a> PgOptimizer<'a> {
    /// Creates an optimizer over an analyzed database.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            space: OrderSpace::LeftDeep,
        }
    }

    /// Selects the search space.
    pub fn with_space(mut self, space: OrderSpace) -> Self {
        self.space = space;
        self
    }

    /// Plans a query: join order + physical operators + estimated cost.
    pub fn plan(&self, query: &Query) -> Result<PlannedQuery> {
        let estimator = PgEstimator::new(self.db);
        match self.space {
            OrderSpace::LeftDeep => best_left_deep_order(&estimator, self.db, query),
            OrderSpace::Bushy => best_bushy_order(&estimator, self.db, query),
        }
    }

    /// Plans a query and additionally returns the estimated cardinality of
    /// the full join result — the `(order, card, cost)` shape the serving
    /// layer's fallback path reports, matching what the learned planner
    /// returns from `plan_with_estimates`.
    pub fn plan_with_estimates(&self, query: &Query) -> Result<(PlannedQuery, f64)> {
        let planned = self.plan(query)?;
        let graph = query.join_graph()?;
        let full = if graph.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << graph.len()) - 1
        };
        let card = PgEstimator::new(self.db).cardinality(query, &graph, full)?;
        Ok((planned, card))
    }

    /// The optimizer's cardinality estimate for a filtered base table
    /// (Table 1's "PostgreSQL" CardEst baseline evaluates these and the
    /// join estimates below).
    pub fn estimate_base(&self, query: &Query, table: TableId) -> Result<f64> {
        PgEstimator::new(self.db).base_cardinality(query, table)
    }

    /// The optimizer's cardinality estimate for a connected table subset
    /// (join-graph-local bitset).
    pub fn estimate_subset(&self, query: &Query, subset: u64) -> Result<f64> {
        let graph = query.join_graph()?;
        PgEstimator::new(self.db).cardinality(query, &graph, subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_query::JoinOrder;
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableSchema};
    use std::collections::BTreeMap;

    fn make_db() -> Database {
        let mut db = Database::new("pg");
        let a = Table::from_columns(
            TableSchema::new(
                "a",
                vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..500).collect()),
                Column::Int((0..500).map(|i| i % 5).collect()),
            ],
        )
        .unwrap();
        db.add_table(a).unwrap();
        let b = Table::from_columns(
            TableSchema::new(
                "b",
                vec![ColumnDef::pk("id"), ColumnDef::fk("a_id", TableId(0))],
            ),
            vec![
                Column::Int((0..100).collect()),
                Column::Int((0..100).map(|i| i * 5).collect()),
            ],
        )
        .unwrap();
        db.add_table(b).unwrap();
        db.analyze_all(16, 8);
        db
    }

    fn two_table_query() -> Query {
        Query::new(
            vec![TableId(0), TableId(1)],
            vec![JoinPredicate::new(
                ColumnRef::new(TableId(0), ColumnId(0)),
                ColumnRef::new(TableId(1), ColumnId(1)),
            )],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn plans_are_legal() {
        let db = make_db();
        let q = two_table_query();
        let planned = PgOptimizer::new(&db).plan(&q).unwrap();
        planned.order.validate(&q).unwrap();
        assert!(matches!(planned.order, JoinOrder::LeftDeep(_)));
        assert!(planned.estimated_cost > 0.0);
    }

    #[test]
    fn bushy_space_selectable() {
        let db = make_db();
        let q = two_table_query();
        let planned = PgOptimizer::new(&db)
            .with_space(OrderSpace::Bushy)
            .plan(&q)
            .unwrap();
        planned.order.validate(&q).unwrap();
        assert!(matches!(planned.order, JoinOrder::Bushy(_)));
    }

    #[test]
    fn plan_with_estimates_matches_plan_and_root_estimate() {
        let db = make_db();
        let q = two_table_query();
        let opt = PgOptimizer::new(&db);
        let (planned, card) = opt.plan_with_estimates(&q).unwrap();
        let direct = opt.plan(&q).unwrap();
        assert_eq!(planned.order, direct.order);
        assert_eq!(planned.estimated_cost.to_bits(), direct.estimated_cost.to_bits());
        assert_eq!(card.to_bits(), opt.estimate_subset(&q, 0b11).unwrap().to_bits());
    }

    #[test]
    fn estimates_exposed() {
        let db = make_db();
        let q = two_table_query();
        let opt = PgOptimizer::new(&db);
        assert_eq!(opt.estimate_base(&q, TableId(0)).unwrap(), 500.0);
        let joint = opt.estimate_subset(&q, 0b11).unwrap();
        assert!((joint - 100.0).abs() < 1.0, "PK-FK estimate {joint}");
    }
}

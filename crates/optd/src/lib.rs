//! # mtmlf-optd
//!
//! Classical (non-learned) query optimization, providing the two baselines
//! the paper's evaluation compares against:
//!
//! - **PostgreSQL-style optimizer** ([`PgOptimizer`]): per-column statistics
//!   (equi-depth histograms + MCVs), attribute-independence and
//!   join-uniformity assumptions, magic selectivity constants for `LIKE` —
//!   the estimator whose large q-errors on correlated data form Table 1's
//!   "PostgreSQL" row — driving a cost-based dynamic-programming join
//!   enumerator with access-path and join-operator selection.
//! - **Exact-cardinality optimal join orders** ([`exact_optimal_order`]):
//!   the same DP driven by *true* cardinalities from `mtmlf-exec`, which is
//!   what the ECQO program \[34\] computes; the paper uses it both as the
//!   "Optimal" row of Table 2 and as the training labels for `Trans_JO`.
//!
//! The [`Estimator`] trait abstracts over cardinality sources so the DP is
//! shared by both and can also run over a learned estimator.

#![forbid(unsafe_code)]

pub mod cost;
pub mod dp;
pub mod error;
pub mod estimator;
pub mod explain;
pub mod metrics;
pub mod pg;

pub use cost::{choose_join_op, choose_scan_op, plan_cost, PlanCoster};
pub use dp::{
    best_bushy_order, best_left_deep_order, exact_optimal_bushy, exact_optimal_order, greedy_order,
};
pub use error::OptError;
pub use estimator::{Estimator, PgEstimator, TrueCardEstimator};
pub use explain::explain;
pub use metrics::{q_error, QErrorSummary};
pub use pg::PgOptimizer;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OptError>;

//! `EXPLAIN`-style plan rendering: the tree with estimated (and optionally
//! true) per-node cardinalities and costs — the operational view DBAs use
//! to see *why* an optimizer chose a plan, and the easiest way to inspect
//! where an estimator goes wrong.

use crate::cost::PlanCoster;
use crate::estimator::Estimator;
use crate::Result;
use mtmlf_query::{PlanNode, Query};
use mtmlf_storage::Database;

/// Per-node annotation carried by the rendering.
#[derive(Debug, Clone)]
pub struct ExplainNode {
    /// Operator + operand description.
    pub label: String,
    /// Estimated output cardinality.
    pub estimated_rows: f64,
    /// True output cardinality, when observations are supplied.
    pub true_rows: Option<u64>,
    /// Estimated cumulative cost.
    pub estimated_cost: f64,
}

/// Renders a plan as an `EXPLAIN`-style tree under `estimator`. When
/// `observed` (post-order true cardinalities, e.g. from
/// [`mtmlf_exec::ExecOutcome`]) is provided, true row counts are printed
/// next to the estimates.
pub fn explain<E: Estimator>(
    estimator: &E,
    db: &Database,
    query: &Query,
    plan: &PlanNode,
    observed: Option<&[u64]>,
) -> Result<String> {
    let graph = query.join_graph()?;
    let coster = PlanCoster::new(estimator, db);
    let per_node = coster.per_node(query, &graph, plan)?;
    if let Some(obs) = observed {
        debug_assert_eq!(obs.len(), per_node.len());
    }

    // Map post-order indices onto the tree structure for rendering.
    let mut lines = Vec::new();
    let mut cursor = per_node.len();
    render(
        db,
        plan,
        &per_node,
        observed,
        &mut cursor,
        "",
        true,
        true,
        &mut lines,
    );
    lines.reverse();
    Ok(lines.join("\n"))
}

/// Walks the tree root-first while consuming post-order indices from the
/// back (the root is the last post-order entry).
#[allow(clippy::too_many_arguments)]
fn render(
    db: &Database,
    node: &PlanNode,
    per_node: &[(f64, f64)],
    observed: Option<&[u64]>,
    cursor: &mut usize,
    prefix: &str,
    is_root: bool,
    is_last: bool,
    lines: &mut Vec<String>,
) {
    *cursor -= 1;
    let idx = *cursor;
    let (est_rows, est_cost) = per_node[idx];
    let label = match node {
        PlanNode::Scan { table, op } => {
            let name = db
                .table(*table)
                .map(|t| t.name().to_string())
                .unwrap_or_else(|_| table.to_string());
            format!("{}({name})", op.name())
        }
        PlanNode::Join { op, .. } => op.name().to_string(),
    };
    let truth = observed
        .and_then(|o| o.get(idx))
        .map(|t| format!(", true rows {t}"))
        .unwrap_or_default();
    let connector = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}└─ ")
    } else {
        format!("{prefix}├─ ")
    };
    let line =
        format!("{connector}{label}  (est rows {est_rows:.0}{truth}, est cost {est_cost:.0})");

    // Children render before this line is pushed (post-order consumption),
    // but must appear *after* it in the output; we push in reverse and flip
    // at the end.
    if let PlanNode::Join { left, right, .. } = node {
        let child_prefix = if is_root {
            String::new()
        } else if is_last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        // Post-order stores left subtree first, so consume right first when
        // walking backwards.
        render(
            db,
            right,
            per_node,
            observed,
            cursor,
            &child_prefix,
            false,
            true,
            lines,
        );
        render(
            db,
            left,
            per_node,
            observed,
            cursor,
            &child_prefix,
            false,
            false,
            lines,
        );
    }
    lines.push(line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::PgEstimator;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableId, TableSchema};
    use std::collections::BTreeMap;

    fn make_db() -> Database {
        let mut db = Database::new("explain");
        let a = Table::from_columns(
            TableSchema::new(
                "orders",
                vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..100).collect()),
                Column::Int((0..100).map(|i| i % 10).collect()),
            ],
        )
        .unwrap();
        db.add_table(a).unwrap();
        let b = Table::from_columns(
            TableSchema::new(
                "items",
                vec![ColumnDef::pk("id"), ColumnDef::fk("order_id", TableId(0))],
            ),
            vec![
                Column::Int((0..50).collect()),
                Column::Int((0..50).map(|i| i * 2).collect()),
            ],
        )
        .unwrap();
        db.add_table(b).unwrap();
        db.analyze_all(8, 4);
        db
    }

    fn query() -> Query {
        Query::new(
            vec![TableId(0), TableId(1)],
            vec![JoinPredicate::new(
                ColumnRef::new(TableId(0), ColumnId(0)),
                ColumnRef::new(TableId(1), ColumnId(1)),
            )],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn renders_tree_with_names_and_estimates() {
        let db = make_db();
        let q = query();
        let plan = PlanNode::left_deep(&[TableId(0), TableId(1)]).unwrap();
        let est = PgEstimator::new(&db);
        let text = explain(&est, &db, &q, &plan, None).unwrap();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("SeqScan(orders)"), "{text}");
        assert!(text.contains("SeqScan(items)"), "{text}");
        assert!(text.contains("est rows"), "{text}");
        // Root first, children indented.
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("HashJoin"), "{text}");
    }

    #[test]
    fn includes_true_rows_when_observed() {
        let db = make_db();
        let q = query();
        let plan = PlanNode::left_deep(&[TableId(0), TableId(1)]).unwrap();
        let outcome = mtmlf_exec::Executor::new(&db)
            .execute_plan(&q, &plan)
            .unwrap();
        let cards: Vec<u64> = outcome.nodes.iter().map(|n| n.cardinality).collect();
        let est = PgEstimator::new(&db);
        let text = explain(&est, &db, &q, &plan, Some(&cards)).unwrap();
        assert!(text.contains("true rows 50"), "{text}");
    }

    #[test]
    fn three_way_structure() {
        let mut db = make_db();
        let c = Table::from_columns(
            TableSchema::new(
                "notes",
                vec![ColumnDef::pk("id"), ColumnDef::fk("order_id", TableId(0))],
            ),
            vec![
                Column::Int((0..20).collect()),
                Column::Int((0..20).collect()),
            ],
        )
        .unwrap();
        db.add_table(c).unwrap();
        db.analyze_all(8, 4);
        let q = Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![
                JoinPredicate::new(
                    ColumnRef::new(TableId(0), ColumnId(0)),
                    ColumnRef::new(TableId(1), ColumnId(1)),
                ),
                JoinPredicate::new(
                    ColumnRef::new(TableId(0), ColumnId(0)),
                    ColumnRef::new(TableId(2), ColumnId(1)),
                ),
            ],
            BTreeMap::new(),
        )
        .unwrap();
        let plan = PlanNode::left_deep(&[TableId(0), TableId(1), TableId(2)]).unwrap();
        let est = PgEstimator::new(&db);
        let text = explain(&est, &db, &q, &plan, None).unwrap();
        assert_eq!(text.lines().count(), 5, "{text}");
        assert!(text.contains("└─ SeqScan(notes)"), "{text}");
        assert!(text.contains("│"), "{text}");
    }
}

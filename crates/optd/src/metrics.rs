//! Evaluation metrics: q-error and its workload summary.

/// The q-error of an estimate against the truth:
/// `max(est/true, true/est)`, with both sides floored at 1 tuple (the
/// convention of the CardEst literature the paper follows [15, 32]).
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Median / max / mean summary of a set of q-errors — the three columns the
/// paper's Table 1 reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QErrorSummary {
    /// Median q-error.
    pub median: f64,
    /// Maximum q-error.
    pub max: f64,
    /// Mean q-error.
    pub mean: f64,
    /// Number of samples.
    pub count: usize,
}

impl QErrorSummary {
    /// Summarizes a non-empty set of q-errors. Returns `None` for empty
    /// input.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let mut sorted = errors.to_vec();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Self {
            median,
            max: sorted[n - 1],
            mean: sorted.iter().sum::<f64>() / n as f64,
            count: n,
        })
    }

    /// Summarizes paired (estimate, truth) samples.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Option<Self> {
        let errors: Vec<f64> = pairs.into_iter().map(|(e, t)| q_error(e, t)).collect();
        Self::from_errors(&errors)
    }
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2}, max {:.2}, mean {:.2} (n={})",
            self.median, self.max, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetric() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(50.0, 50.0), 1.0);
    }

    #[test]
    fn q_error_floors_at_one_tuple() {
        assert_eq!(q_error(0.0, 10.0), 10.0);
        assert_eq!(q_error(0.001, 0.0), 1.0);
        assert!(q_error(5.0, 5.0) >= 1.0);
    }

    #[test]
    fn summary_statistics() {
        let s = QErrorSummary::from_errors(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 22.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_even_count_median() {
        let s = QErrorSummary::from_errors(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn summary_empty() {
        assert!(QErrorSummary::from_errors(&[]).is_none());
    }

    #[test]
    fn summary_from_pairs() {
        let s = QErrorSummary::from_pairs(vec![(10.0, 10.0), (1.0, 100.0)]).unwrap();
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.5);
    }
}

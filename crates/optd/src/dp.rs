//! Dynamic-programming join enumeration over connected subsets.
//!
//! `best_left_deep_order` is the classical DPsize-style enumeration over
//! left-deep prefixes; `best_bushy_order` enumerates connected-subgraph /
//! complement pairs (DPsub). Run with the [`TrueCardEstimator`] these
//! compute *exact-cardinality optimal* join orders — the role the paper's
//! ECQO program \[34\] plays when labelling training queries (and the
//! "Optimal" row of Table 2).

use crate::cost::{choose_join_op, choose_scan_op};
use crate::estimator::{Estimator, TrueCardEstimator};
use crate::{OptError, Result};
use mtmlf_exec::cost::{CostTracker, OperatorCost};
use mtmlf_exec::hasher::FxHashMap;
use mtmlf_query::{JoinGraph, JoinOrder, PlanNode, Query};
use mtmlf_storage::Database;

/// A planned query: the chosen join order, the physical plan (with scan and
/// join operators selected), and its estimated cost in work units.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The join order.
    pub order: JoinOrder,
    /// The physical plan.
    pub plan: PlanNode,
    /// Estimated cost under the estimator used for planning.
    pub estimated_cost: f64,
}

#[derive(Clone)]
struct Entry {
    cost: f64,
    rows: f64,
    plan: PlanNode,
}

/// Builds the per-singleton DP entries (scans with access-path selection).
fn singleton_entries<E: Estimator>(
    estimator: &E,
    db: &Database,
    query: &Query,
    graph: &JoinGraph,
    coefficients: &OperatorCost,
) -> Result<Vec<Entry>> {
    let mut out = Vec::with_capacity(graph.len());
    for v in 0..graph.len() {
        let t = graph.table(v);
        let rows = estimator.cardinality(query, graph, 1 << v)?;
        let table_rows = db.table(t)?.rows() as f64;
        let filtered = !query.filters_on(t).is_empty();
        let selectivity = if table_rows > 0.0 {
            rows / table_rows
        } else {
            1.0
        };
        let op = choose_scan_op(selectivity, filtered);
        let cost = CostTracker::scan_cost(coefficients, op, table_rows, rows);
        out.push(Entry {
            cost,
            rows,
            plan: PlanNode::scan_with(t, op),
        });
    }
    Ok(out)
}

/// Best left-deep join order under an estimator.
pub fn best_left_deep_order<E: Estimator>(
    estimator: &E,
    db: &Database,
    query: &Query,
) -> Result<PlannedQuery> {
    let graph = query.join_graph()?;
    let n = graph.len();
    let coefficients = OperatorCost::default();
    let singles = singleton_entries(estimator, db, query, &graph, &coefficients)?;
    if n == 1 {
        let e = &singles[0];
        return Ok(PlannedQuery {
            order: JoinOrder::LeftDeep(vec![graph.table(0)]),
            plan: e.plan.clone(),
            estimated_cost: e.cost,
        });
    }

    let mut dp: FxHashMap<u64, Entry> = FxHashMap::default();
    for (v, e) in singles.iter().enumerate() {
        dp.insert(1 << v, e.clone());
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    for size in 2..=n {
        for s in subsets_of_size(n, size) {
            if !graph.subset_connected(s) {
                continue;
            }
            let mut best: Option<Entry> = None;
            let mut bits = s;
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let rest = s & !(1u64 << v);
                if !graph.subset_connected(rest) || graph.frontier(rest) & (1 << v) == 0 {
                    continue;
                }
                let Some(left) = dp.get(&rest) else { continue };
                let right = &singles[v];
                let out_rows = estimator.cardinality(query, &graph, s)?;
                let op = choose_join_op(left.rows, right.rows);
                let jc = CostTracker::join_cost(&coefficients, op, left.rows, right.rows, out_rows);
                let cost = left.cost + right.cost + jc;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(Entry {
                        cost,
                        rows: out_rows,
                        plan: PlanNode::join_with(op, left.plan.clone(), right.plan.clone()),
                    });
                }
            }
            if let Some(b) = best {
                dp.insert(s, b);
            }
        }
    }
    let root = dp.remove(&full).ok_or(OptError::NoPlanFound)?;
    Ok(PlannedQuery {
        order: JoinOrder::LeftDeep(root.plan.tables()),
        plan: root.plan,
        estimated_cost: root.cost,
    })
}

/// Best bushy join order under an estimator (DPsub over connected
/// subgraph/complement pairs).
pub fn best_bushy_order<E: Estimator>(
    estimator: &E,
    db: &Database,
    query: &Query,
) -> Result<PlannedQuery> {
    let graph = query.join_graph()?;
    let n = graph.len();
    let coefficients = OperatorCost::default();
    let singles = singleton_entries(estimator, db, query, &graph, &coefficients)?;
    let mut dp: FxHashMap<u64, Entry> = FxHashMap::default();
    for (v, e) in singles.iter().enumerate() {
        dp.insert(1 << v, e.clone());
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    for size in 2..=n {
        for s in subsets_of_size(n, size) {
            if !graph.subset_connected(s) {
                continue;
            }
            let out_rows = estimator.cardinality(query, &graph, s)?;
            let low = s & s.wrapping_neg(); // canonical side contains lowest bit
            let mut best: Option<Entry> = None;
            // Iterate proper submasks of s containing `low`.
            let mut sub = s;
            loop {
                sub = (sub - 1) & s;
                if sub == 0 {
                    break;
                }
                if sub & low == 0 || sub == s {
                    continue;
                }
                let comp = s & !sub;
                if !graph.subset_connected(sub) || !graph.subset_connected(comp) {
                    continue;
                }
                if graph.frontier(sub) & comp == 0 {
                    continue;
                }
                let (Some(l), Some(r)) = (dp.get(&sub), dp.get(&comp)) else {
                    continue;
                };
                let op = choose_join_op(l.rows, r.rows);
                let jc = CostTracker::join_cost(&coefficients, op, l.rows, r.rows, out_rows);
                let cost = l.cost + r.cost + jc;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(Entry {
                        cost,
                        rows: out_rows,
                        plan: PlanNode::join_with(op, l.plan.clone(), r.plan.clone()),
                    });
                }
            }
            if let Some(b) = best {
                dp.insert(s, b);
            }
        }
    }
    let root = dp.remove(&full).ok_or(OptError::NoPlanFound)?;
    Ok(PlannedQuery {
        order: JoinOrder::Bushy(root.plan.join_tree()),
        plan: root.plan,
        estimated_cost: root.cost,
    })
}

/// Exact-cardinality optimal *left-deep* join order: the DP driven by true
/// cardinalities (ECQO stand-in). Exponential in the number of tables;
/// the paper, like us, only labels queries touching ≤ 8 tables with it.
pub fn exact_optimal_order(db: &Database, query: &Query) -> Result<PlannedQuery> {
    let oracle = TrueCardEstimator::compute(db, query)?;
    best_left_deep_order(&oracle, db, query)
}

/// Exact-cardinality optimal *bushy* join order.
pub fn exact_optimal_bushy(db: &Database, query: &Query) -> Result<PlannedQuery> {
    let oracle = TrueCardEstimator::compute(db, query)?;
    best_bushy_order(&oracle, db, query)
}

/// Iterator over all `size`-subsets of `0..n` as bitsets (Gosper's hack).
fn subsets_of_size(n: usize, size: usize) -> impl Iterator<Item = u64> {
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut current = if size == 0 || size > n {
        None
    } else {
        Some((1u64 << size) - 1)
    };
    std::iter::from_fn(move || {
        let s = current?;
        // Compute the successor with the same popcount.
        let c = s & s.wrapping_neg();
        let r = s + c;
        current = if r > full || c == 0 {
            None
        } else {
            let next = (((r ^ s) >> 2) / c) | r;
            (next <= full).then_some(next)
        };
        Some(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_exec::Executor;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableId, TableSchema};
    use std::collections::BTreeMap;

    /// Star schema: fact(id, v) 2000 rows; small(id, fact_id) 10 rows;
    /// big(id, fact_id) 1000 rows. Joining `small` first is clearly better.
    fn make_db() -> Database {
        let mut db = Database::new("dp");
        let fact = Table::from_columns(
            TableSchema::new(
                "fact",
                vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..2000).collect()),
                Column::Int((0..2000).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        db.add_table(fact).unwrap();
        let small = Table::from_columns(
            TableSchema::new(
                "small",
                vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", TableId(0))],
            ),
            vec![
                Column::Int((0..10).collect()),
                Column::Int((0..10).map(|i| i * 3).collect()),
            ],
        )
        .unwrap();
        db.add_table(small).unwrap();
        let big = Table::from_columns(
            TableSchema::new(
                "big",
                vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", TableId(0))],
            ),
            vec![
                Column::Int((0..1000).collect()),
                Column::Int((0..1000).map(|i| i % 2000).collect()),
            ],
        )
        .unwrap();
        db.add_table(big).unwrap();
        db.analyze_all(16, 8);
        db
    }

    fn star_query() -> Query {
        let jp = |a: u32, ac: u32, b: u32, bc: u32| {
            JoinPredicate::new(
                ColumnRef::new(TableId(a), ColumnId(ac)),
                ColumnRef::new(TableId(b), ColumnId(bc)),
            )
        };
        Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![jp(0, 0, 1, 1), jp(0, 0, 2, 1)],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn exact_left_deep_is_legal_and_small_first() {
        let db = make_db();
        let q = star_query();
        let planned = exact_optimal_order(&db, &q).unwrap();
        planned.order.validate(&q).unwrap();
        let tables = planned.order.tables();
        // The tiny `small` table should be joined before `big`.
        let pos_small = tables.iter().position(|&t| t == TableId(1)).unwrap();
        let pos_big = tables.iter().position(|&t| t == TableId(2)).unwrap();
        assert!(pos_small < pos_big, "order {tables:?}");
    }

    #[test]
    fn exact_optimal_beats_or_ties_every_left_deep_order() {
        let db = make_db();
        let q = star_query();
        let exec = Executor::new(&db);
        let planned = exact_optimal_order(&db, &q).unwrap();
        let opt_minutes = exec.execute_order(&q, &planned.order).unwrap().sim_minutes;
        // Enumerate all legal left-deep orders and execute them.
        let perms: [[u32; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let order = JoinOrder::LeftDeep(p.iter().map(|&i| TableId(i)).collect());
            if order.validate(&q).is_err() {
                continue;
            }
            let m = exec.execute_order(&q, &order).unwrap().sim_minutes;
            assert!(
                opt_minutes <= m + 1e-9,
                "optimal {opt_minutes} beaten by {p:?} at {m}"
            );
        }
    }

    #[test]
    fn bushy_no_worse_than_left_deep() {
        let db = make_db();
        let q = star_query();
        let ld = exact_optimal_order(&db, &q).unwrap();
        let bushy = exact_optimal_bushy(&db, &q).unwrap();
        assert!(bushy.estimated_cost <= ld.estimated_cost + 1e-9);
        bushy.order.validate(&q).unwrap();
    }

    #[test]
    fn single_table_query() {
        let db = make_db();
        let q = Query::new(vec![TableId(0)], vec![], BTreeMap::new()).unwrap();
        let oracle = TrueCardEstimator::compute(&db, &q).unwrap();
        let planned = best_left_deep_order(&oracle, &db, &q).unwrap();
        assert_eq!(planned.order.tables(), vec![TableId(0)]);
        assert!(planned.estimated_cost > 0.0);
    }

    #[test]
    fn subset_iterator_counts() {
        assert_eq!(subsets_of_size(5, 2).count(), 10);
        assert_eq!(subsets_of_size(5, 5).count(), 1);
        assert_eq!(subsets_of_size(5, 0).count(), 0);
        assert_eq!(subsets_of_size(4, 5).count(), 0);
        assert!(subsets_of_size(6, 3).all(|s| s.count_ones() == 3));
    }

    #[test]
    fn pg_estimator_drives_dp() {
        let db = make_db();
        let q = star_query();
        let est = crate::PgEstimator::new(&db);
        let planned = best_left_deep_order(&est, &db, &q).unwrap();
        planned.order.validate(&q).unwrap();
        assert!(planned.estimated_cost > 0.0);
    }
}

/// Greedy left-deep order: start from the smallest estimated base table
/// and repeatedly append the frontier table minimizing the estimated size
/// of the joined prefix. Linear in `m²` — the cheap heuristic baseline
/// classical systems fall back to when the DP space is too large.
pub fn greedy_order<E: Estimator>(
    estimator: &E,
    _db: &Database,
    query: &Query,
) -> Result<JoinOrder> {
    let graph = query.join_graph()?;
    let n = graph.len();
    let mut joined = 0u64;
    let mut order = Vec::with_capacity(n);
    for step in 0..n {
        let candidates = graph.frontier(joined);
        let mut best: Option<(f64, usize)> = None;
        let mut bits = candidates;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let card = estimator.cardinality(query, &graph, joined | (1 << v))?;
            if best.is_none_or(|(c, _)| card < c) {
                best = Some((card, v));
            }
        }
        let (_, v) = best.ok_or(OptError::NoPlanFound)?;
        order.push(graph.table(v));
        joined |= 1 << v;
        debug_assert!(step == 0 || graph.subset_connected(joined));
    }
    Ok(JoinOrder::LeftDeep(order))
}

#[cfg(test)]
mod greedy_tests {
    use super::*;
    use crate::estimator::TrueCardEstimator;
    use mtmlf_exec::Executor;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableId, TableSchema};
    use std::collections::BTreeMap;

    #[test]
    fn greedy_is_legal_and_reasonable() {
        // Reuse the star schema of the DP tests.
        let mut db = Database::new("greedy");
        let fact = Table::from_columns(
            TableSchema::new(
                "fact",
                vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..1000).collect()),
                Column::Int((0..1000).map(|i| i % 7).collect()),
            ],
        )
        .unwrap();
        db.add_table(fact).unwrap();
        for (name, rows) in [("small", 10i64), ("big", 600)] {
            let t = Table::from_columns(
                TableSchema::new(
                    name,
                    vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", TableId(0))],
                ),
                vec![
                    Column::Int((0..rows).collect()),
                    Column::Int((0..rows).map(|i| i % 1000).collect()),
                ],
            )
            .unwrap();
            db.add_table(t).unwrap();
        }
        db.analyze_all(8, 4);
        let jp = |a: u32, ac: u32, b: u32, bc: u32| {
            JoinPredicate::new(
                ColumnRef::new(TableId(a), ColumnId(ac)),
                ColumnRef::new(TableId(b), ColumnId(bc)),
            )
        };
        let q = Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![jp(0, 0, 1, 1), jp(0, 0, 2, 1)],
            BTreeMap::new(),
        )
        .unwrap();
        let oracle = TrueCardEstimator::compute(&db, &q).unwrap();
        let order = greedy_order(&oracle, &db, &q).unwrap();
        order.validate(&q).unwrap();
        // Greedy under true cardinalities should be close to the DP optimum
        // on a small star.
        let exec = Executor::new(&db);
        let greedy_min = exec.execute_order(&q, &order).unwrap().sim_minutes;
        let opt = exact_optimal_order(&db, &q).unwrap();
        let opt_min = exec.execute_order(&q, &opt.order).unwrap().sim_minutes;
        assert!(
            greedy_min <= opt_min * 2.0 + 1e-9,
            "greedy {greedy_min} vs {opt_min}"
        );
    }
}

//! The binary Tree-LSTM estimator.

use crate::featurize::PlanFeaturizer;
use mtmlf_datagen::LabeledQuery;
use mtmlf_nn::layers::{Linear, Mlp, Module};
use mtmlf_nn::loss::{log_pred_to_estimate, q_error_log_loss};
use mtmlf_nn::{Adam, Matrix, Var};
use mtmlf_query::{PlanNode, Query};
use mtmlf_storage::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tree-LSTM hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeLstmConfig {
    /// Hidden state width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs over the workload.
    pub epochs: usize,
    /// Weight initialization / shuffling seed.
    pub seed: u64,
}

impl Default for TreeLstmConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            lr: 1e-3,
            epochs: 10,
            seed: 0,
        }
    }
}

/// A binary (N-ary, N = 2) Tree-LSTM over plan trees with per-node
/// cardinality and cost heads.
pub struct TreeLstm {
    featurizer: PlanFeaturizer,
    /// Maps `[x, h_left, h_right]` to the five gates `i, f_l, f_r, o, u`.
    cell: Linear,
    card_head: Mlp,
    cost_head: Mlp,
    hidden: usize,
    config: TreeLstmConfig,
}

struct NodeState {
    h: Var,
    c: Var,
}

impl TreeLstm {
    /// Builds an untrained model for a database with `tables` tables.
    pub fn new(tables: usize, config: TreeLstmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let featurizer = PlanFeaturizer::new(tables);
        let input = featurizer.width() + 2 * config.hidden;
        Self {
            cell: Linear::new(input, 5 * config.hidden, &mut rng),
            card_head: Mlp::new(&[config.hidden, config.hidden, 1], &mut rng),
            cost_head: Mlp::new(&[config.hidden, config.hidden, 1], &mut rng),
            featurizer,
            hidden: config.hidden,
            config,
        }
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.cell.parameters();
        p.extend(self.card_head.parameters());
        p.extend(self.cost_head.parameters());
        p
    }

    /// Evaluates the cell over a plan, returning per-node hidden states in
    /// post-order.
    fn states(&self, db: &Database, query: &Query, plan: &PlanNode) -> Vec<Var> {
        let mut out = Vec::with_capacity(plan.node_count());
        self.eval(db, query, plan, &mut out);
        out
    }

    fn eval(&self, db: &Database, query: &Query, node: &PlanNode, out: &mut Vec<Var>) -> NodeState {
        let zero = || Var::constant(Matrix::zeros(1, self.hidden));
        let (left, right) = match node {
            PlanNode::Scan { .. } => (
                NodeState {
                    h: zero(),
                    c: zero(),
                },
                NodeState {
                    h: zero(),
                    c: zero(),
                },
            ),
            PlanNode::Join { left, right, .. } => {
                let l = self.eval(db, query, left, out);
                let r = self.eval(db, query, right, out);
                (l, r)
            }
        };
        let features = {
            // `featurize` of a single (shallow-copied) node yields exactly one
            // row by construction, so `pop` cannot see an empty vector.
            let f = self
                .featurizer
                .featurize(db, query, &shallow_copy(node))
                .pop()
                .expect("at least the root feature"); // lint: allow(panic)
            Var::constant(Matrix::row_vec(f))
        };
        let input = Var::concat_cols(&[features, left.h, right.h]);
        let gates = self.cell.forward(&input);
        let h = self.hidden;
        let i = gates.slice_cols(0, h).sigmoid();
        let f_l = gates.slice_cols(h, 2 * h).sigmoid();
        let f_r = gates.slice_cols(2 * h, 3 * h).sigmoid();
        let o = gates.slice_cols(3 * h, 4 * h).sigmoid();
        let u = gates.slice_cols(4 * h, 5 * h).tanh();
        let c = i
            .hadamard(&u)
            .add(&f_l.hadamard(&left.c))
            .add(&f_r.hadamard(&right.c));
        let hidden = o.hadamard(&c.tanh());
        out.push(hidden.clone());
        NodeState { h: hidden, c }
    }

    /// Predicts `(cardinality, cost)` for the sub-plan rooted at each node
    /// of `plan`, in post-order.
    pub fn predict(&self, db: &Database, query: &Query, plan: &PlanNode) -> Vec<(f64, f64)> {
        self.states(db, query, plan)
            .iter()
            .map(|h| {
                let card = self.card_head.forward(h).item();
                let cost = self.cost_head.forward(h).item();
                (log_pred_to_estimate(card), log_pred_to_estimate(cost))
            })
            .collect()
    }

    /// Trains on labelled queries with per-node Q-error losses on both
    /// heads. Returns the mean loss of the final epoch.
    pub fn train(&mut self, db: &Database, data: &[LabeledQuery]) -> f32 {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xA5A5);
        let mut opt = Adam::new(self.parameters(), self.config.lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut final_epoch_loss = 0.0;
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for &qi in &order {
                let sample = &data[qi];
                let states = self.states(db, &sample.query, &sample.plan);
                let mut loss = Var::constant(Matrix::scalar(0.0));
                for (i, h) in states.iter().enumerate() {
                    let card_pred = self.card_head.forward(h);
                    let cost_pred = self.cost_head.forward(h);
                    loss = loss
                        .add(&q_error_log_loss(&card_pred, sample.node_cards[i] as f64))
                        .add(&q_error_log_loss(&cost_pred, sample.node_costs[i]));
                }
                let loss = loss.scale(1.0 / (2.0 * states.len() as f32));
                opt.zero_grad();
                loss.backward();
                opt.step();
                epoch_loss += loss.item();
            }
            final_epoch_loss = epoch_loss / data.len().max(1) as f32;
        }
        final_epoch_loss
    }
}

/// A shallow single-node copy for leaf-feature extraction: joins lose their
/// children (children features are not part of the node's own vector).
fn shallow_copy(node: &PlanNode) -> PlanNode {
    match node {
        PlanNode::Scan { table, op } => PlanNode::Scan {
            table: *table,
            op: *op,
        },
        PlanNode::Join { op, .. } => PlanNode::Join {
            op: *op,
            // Dummy children: featurization only reads the join operator.
            left: Box::new(PlanNode::scan(mtmlf_storage::TableId(u32::MAX - 1))),
            right: Box::new(PlanNode::scan(mtmlf_storage::TableId(u32::MAX))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{
        generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
    };
    use mtmlf_optd::q_error;

    fn setup(count: usize) -> (Database, Vec<LabeledQuery>) {
        let mut db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let queries = generate_queries(
            &db,
            &WorkloadConfig {
                count,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            7,
        );
        let labeled = label_workload(&db, &queries, &LabelConfig::default()).unwrap();
        (db, labeled)
    }

    #[test]
    fn predicts_per_node() {
        let (db, labeled) = setup(4);
        let model = TreeLstm::new(db.table_count(), TreeLstmConfig::default());
        let sample = &labeled[0];
        let preds = model.predict(&db, &sample.query, &sample.plan);
        assert_eq!(preds.len(), sample.plan.node_count());
        for (card, cost) in preds {
            assert!(card >= 1.0);
            assert!(cost >= 1.0);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (db, labeled) = setup(12);
        let mut model = TreeLstm::new(
            db.table_count(),
            TreeLstmConfig {
                hidden: 32,
                epochs: 1,
                ..TreeLstmConfig::default()
            },
        );
        let first = model.train(&db, &labeled);
        let mut model2 = TreeLstm::new(
            db.table_count(),
            TreeLstmConfig {
                hidden: 32,
                epochs: 12,
                ..TreeLstmConfig::default()
            },
        );
        let last = model2.train(&db, &labeled);
        assert!(
            last < first * 0.8,
            "loss should drop: 1 epoch {first}, 12 epochs {last}"
        );
    }

    #[test]
    fn trained_model_beats_untrained_on_qerror() {
        let (db, labeled) = setup(20);
        let (train, test) = labeled.split_at(16);
        let untrained = TreeLstm::new(db.table_count(), TreeLstmConfig::default());
        let mut trained = TreeLstm::new(
            db.table_count(),
            TreeLstmConfig {
                hidden: 32,
                epochs: 15,
                ..TreeLstmConfig::default()
            },
        );
        trained.train(&db, train);
        let eval = |m: &TreeLstm| -> f64 {
            let mut total = 0.0;
            let mut n = 0;
            for s in test {
                let preds = m.predict(&db, &s.query, &s.plan);
                for (i, (card, _)) in preds.iter().enumerate() {
                    total += q_error(*card, s.node_cards[i] as f64).ln();
                    n += 1;
                }
            }
            (total / n as f64).exp()
        };
        let before = eval(&untrained);
        let after = eval(&trained);
        assert!(
            after < before,
            "geometric-mean q-error should improve: {before} -> {after}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (db, labeled) = setup(4);
        let cfg = TreeLstmConfig {
            hidden: 16,
            epochs: 2,
            ..TreeLstmConfig::default()
        };
        let mut a = TreeLstm::new(db.table_count(), cfg.clone());
        let mut b = TreeLstm::new(db.table_count(), cfg);
        let la = a.train(&db, &labeled);
        let lb = b.train(&db, &labeled);
        assert_eq!(la, lb);
    }
}

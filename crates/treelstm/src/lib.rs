//! # mtmlf-treelstm
//!
//! The Tree-LSTM learned baseline (Sun & Li, *An End-to-End Learning-based
//! Cost Estimator* \[32\]) for cardinality and cost estimation: the "previous
//! SOTA" row of the paper's Table 1.
//!
//! A binary N-ary Tree-LSTM cell is evaluated bottom-up over the physical
//! plan tree; per-node hidden states feed two MLP heads predicting the
//! log-cardinality and log-cost of the sub-plan rooted at each node. Both
//! heads train with the Q-error surrogate (squared log error), the same
//! criterion the paper's MTMLF-QO uses, so Table 1 compares architectures
//! rather than loss functions.

#![forbid(unsafe_code)]

pub mod featurize;
pub mod model;

pub use featurize::{featurize_plan, PlanFeaturizer};
pub use model::{TreeLstm, TreeLstmConfig};

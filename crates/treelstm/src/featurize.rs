//! Plan featurization for the Tree-LSTM baseline.
//!
//! Each plan node becomes a fixed-width vector:
//!
//! - operator one-hot (2 scan + 3 join operators),
//! - table one-hot (scan nodes; zero for joins),
//! - `log2(table rows)` (scan nodes),
//! - an aggregated predicate summary: predicate count, per-shape counts
//!   (equality / range / LIKE / IN), and the normalized positions of
//!   anchored literal values within the column's `[min, max]` range.
//!
//! This mirrors the information the original Tree-LSTM estimator consumes
//! (operator, predicates with normalized values, metadata) without sharing
//! code with the MTMLF featurization module, keeping the baselines
//! independent.

use mtmlf_query::{CmpOp, FilterPredicate, JoinOp, PlanNode, Query, ScanOp};
use mtmlf_storage::{ColumnStats, Database, TableId, Value};

/// Width of the per-predicate summary block.
const PRED_SUMMARY: usize = 7;
/// Number of physical operator slots (2 scans + 3 joins).
const OP_SLOTS: usize = 5;

/// Featurizes plans of one database into fixed-width node vectors.
#[derive(Debug, Clone)]
pub struct PlanFeaturizer {
    tables: usize,
}

impl PlanFeaturizer {
    /// Builds a featurizer for a database with `tables` tables.
    pub fn new(tables: usize) -> Self {
        Self { tables }
    }

    /// Feature width per node.
    pub fn width(&self) -> usize {
        OP_SLOTS + self.tables + 1 + PRED_SUMMARY
    }

    /// Features for every node of `plan`, in post-order.
    pub fn featurize(&self, db: &Database, query: &Query, plan: &PlanNode) -> Vec<Vec<f32>> {
        plan.post_order()
            .iter()
            .map(|node| self.node_features(db, query, node))
            .collect()
    }

    fn node_features(&self, db: &Database, query: &Query, node: &PlanNode) -> Vec<f32> {
        let mut v = vec![0.0f32; self.width()];
        match node {
            PlanNode::Scan { table, op } => {
                v[match op {
                    ScanOp::SeqScan => 0,
                    ScanOp::IndexScan => 1,
                }] = 1.0;
                if table.index() < self.tables {
                    v[OP_SLOTS + table.index()] = 1.0;
                }
                let rows = db.table(*table).map(|t| t.rows()).unwrap_or(0);
                v[OP_SLOTS + self.tables] = (rows as f32 + 1.0).log2();
                let summary = predicate_summary(db, *table, query.filters_on(*table));
                v[OP_SLOTS + self.tables + 1..].copy_from_slice(&summary);
            }
            PlanNode::Join { op, .. } => {
                v[match op {
                    JoinOp::HashJoin => 2,
                    JoinOp::MergeJoin => 3,
                    JoinOp::NestedLoopJoin => 4,
                }] = 1.0;
            }
        }
        v
    }
}

/// Aggregated predicate features:
/// `[count, eq, range, like, in, mean_norm_lo, mean_norm_hi]`.
fn predicate_summary(
    db: &Database,
    table: TableId,
    filters: &[FilterPredicate],
) -> [f32; PRED_SUMMARY] {
    let mut out = [0.0f32; PRED_SUMMARY];
    if filters.is_empty() {
        // Unfiltered scans span the full normalized range.
        out[5] = 0.0;
        out[6] = 1.0;
        return out;
    }
    out[0] = filters.len() as f32;
    let stats = db.table(table).ok().and_then(|t| t.stats().ok());
    let mut lo_sum = 0.0;
    let mut hi_sum = 0.0;
    let mut norm_count = 0.0;
    for f in filters {
        let col_stats = stats.and_then(|s| s.columns.get(f.column().index()));
        match f {
            FilterPredicate::Cmp { op, value, .. } => {
                match op {
                    CmpOp::Eq | CmpOp::Neq => out[1] += 1.0,
                    _ => out[2] += 1.0,
                }
                if let Some((lo, hi)) = normalized_bounds(col_stats, op, value) {
                    lo_sum += lo;
                    hi_sum += hi;
                    norm_count += 1.0;
                }
            }
            FilterPredicate::Between { lo, hi, .. } => {
                out[2] += 1.0;
                if let (Some(s), Some(l), Some(h)) = (col_stats, lo.as_numeric(), hi.as_numeric()) {
                    lo_sum += normalize(s, l);
                    hi_sum += normalize(s, h);
                    norm_count += 1.0;
                }
            }
            FilterPredicate::Like { .. } => out[3] += 1.0,
            FilterPredicate::InSet { values, .. } => {
                out[4] += values.len() as f32;
            }
        }
    }
    if norm_count > 0.0 {
        out[5] = lo_sum / norm_count;
        out[6] = hi_sum / norm_count;
    } else {
        out[6] = 1.0;
    }
    out
}

fn normalized_bounds(stats: Option<&ColumnStats>, op: &CmpOp, value: &Value) -> Option<(f32, f32)> {
    let s = stats?;
    let v = normalize(s, value.as_numeric()?);
    Some(match op {
        CmpOp::Eq | CmpOp::Neq => (v, v),
        CmpOp::Lt | CmpOp::Le => (0.0, v),
        CmpOp::Gt | CmpOp::Ge => (v, 1.0),
    })
}

fn normalize(stats: &ColumnStats, v: f64) -> f32 {
    if stats.max > stats.min {
        (((v - stats.min) / (stats.max - stats.min)).clamp(0.0, 1.0)) as f32
    } else {
        0.5
    }
}

/// Convenience: featurize a plan with a fresh featurizer sized to `db`.
pub fn featurize_plan(db: &Database, query: &Query, plan: &PlanNode) -> Vec<Vec<f32>> {
    PlanFeaturizer::new(db.table_count()).featurize(db, query, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_datagen::{imdb::ImdbScale, imdb_lite};
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::ColumnId;
    use std::collections::BTreeMap;

    fn setup() -> (Database, Query) {
        let mut db = imdb_lite(1, ImdbScale { scale: 0.02 }).unwrap();
        db.analyze_all(8, 4);
        let q = mtmlf_query::Query::new(
            vec![TableId(0), TableId(4)],
            vec![JoinPredicate::new(
                ColumnRef::new(TableId(0), ColumnId(0)),
                ColumnRef::new(TableId(4), ColumnId(1)),
            )],
            BTreeMap::new(),
        )
        .unwrap();
        (db, q)
    }

    #[test]
    fn width_consistent() {
        let (db, q) = setup();
        let f = PlanFeaturizer::new(db.table_count());
        let plan = PlanNode::left_deep(&[TableId(0), TableId(4)]).unwrap();
        let features = f.featurize(&db, &q, &plan);
        assert_eq!(features.len(), 3);
        for row in &features {
            assert_eq!(row.len(), f.width());
        }
    }

    #[test]
    fn scan_and_join_nodes_distinguished() {
        let (db, q) = setup();
        let f = PlanFeaturizer::new(db.table_count());
        let plan = PlanNode::left_deep(&[TableId(0), TableId(4)]).unwrap();
        let features = f.featurize(&db, &q, &plan);
        // Post-order: scan, scan, join.
        assert_eq!(features[0][0], 1.0, "seq scan slot");
        assert_eq!(features[2][2], 1.0, "hash join slot");
        assert_eq!(features[2][OP_SLOTS], 0.0, "join has no table one-hot");
        // Scans carry log table size.
        assert!(features[0][OP_SLOTS + db.table_count()] > 0.0);
    }

    #[test]
    fn predicate_summaries_change_features() {
        let (db, _) = setup();
        let f = PlanFeaturizer::new(db.table_count());
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Le,
                value: Value::Int(1990),
            }],
        );
        let q_filtered = mtmlf_query::Query::new(vec![TableId(0)], vec![], filters).unwrap();
        let q_plain = mtmlf_query::Query::new(vec![TableId(0)], vec![], BTreeMap::new()).unwrap();
        let plan = PlanNode::scan(TableId(0));
        let with = f.featurize(&db, &q_filtered, &plan);
        let without = f.featurize(&db, &q_plain, &plan);
        assert_ne!(with[0], without[0]);
        // Range predicate normalizes the upper bound below 1.0.
        let base = OP_SLOTS + db.table_count() + 1;
        assert!(with[0][base + 6] < 1.0);
        assert_eq!(without[0][base + 6], 1.0);
    }
}

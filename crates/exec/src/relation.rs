//! Intermediate relations: column-major tuples of base-table row indices.

use mtmlf_storage::TableId;

/// An intermediate relation produced by scans and joins.
///
/// Rather than materializing attribute values, the relation stores for each
/// bound base table a column of row indices into that table. Tuple `i` of
/// the relation is `(columns[0][i], columns\[1\][i], ...)`, one row index per
/// bound table. Attribute values are fetched lazily from base tables when a
/// join key or filter needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// The bound base tables, in binding order.
    tables: Vec<TableId>,
    /// One row-index column per bound table; all have equal length.
    columns: Vec<Vec<u32>>,
}

impl Relation {
    /// A relation over a single base table with the given selected rows.
    pub fn base(table: TableId, rows: Vec<u32>) -> Self {
        Self {
            tables: vec![table],
            columns: vec![rows],
        }
    }

    /// Builds a relation from parallel columns (used by joins).
    pub fn from_parts(tables: Vec<TableId>, columns: Vec<Vec<u32>>) -> Self {
        debug_assert_eq!(tables.len(), columns.len());
        debug_assert!(columns.windows(2).all(|w| w[0].len() == w[1].len()));
        Self { tables, columns }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound base tables.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Position of `table` among the bound tables.
    pub fn position_of(&self, table: TableId) -> Option<usize> {
        self.tables.iter().position(|&t| t == table)
    }

    /// The row-index column for the bound table at `position`.
    pub fn rows_of(&self, position: usize) -> &[u32] {
        &self.columns[position]
    }

    /// Consumes the relation into its parts.
    pub fn into_parts(self) -> (Vec<TableId>, Vec<Vec<u32>>) {
        (self.tables, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_relation() {
        let r = Relation::base(TableId(3), vec![0, 2, 4]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.tables(), &[TableId(3)]);
        assert_eq!(r.rows_of(0), &[0, 2, 4]);
        assert_eq!(r.position_of(TableId(3)), Some(0));
        assert_eq!(r.position_of(TableId(1)), None);
    }

    #[test]
    fn multi_table_parts() {
        let r = Relation::from_parts(
            vec![TableId(0), TableId(1)],
            vec![vec![1, 1, 2], vec![5, 6, 5]],
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows_of(1), &[5, 6, 5]);
        let (tables, cols) = r.into_parts();
        assert_eq!(tables.len(), 2);
        assert_eq!(cols[0], vec![1, 1, 2]);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::base(TableId(0), vec![]);
        assert!(r.is_empty());
    }
}

//! Equi-join of intermediate relations.
//!
//! Output tuples are always computed with a hash-based algorithm; the
//! physical operator on the plan node only changes the *charged* cost (see
//! crate docs). The hash join builds on the smaller input and probes with
//! the larger, exactly what the charged cost model assumes.

use crate::error::ExecError;
use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::Result;
use mtmlf_query::predicate::JoinPredicate;
use mtmlf_storage::{ColumnRef, Database, TableId};

/// Resolved join key: position of the bound table in the relation plus the
/// base-table key column (pinned for the join's duration when spilled).
struct KeySide<'a> {
    position: usize,
    col: ColumnRef<'a>,
}

impl KeySide<'_> {
    /// The integer key data; int-ness was validated at resolve time.
    fn data(&self) -> &[i64] {
        self.col.as_int().expect("validated at resolve_side") // lint: allow(panic)
    }
}

fn resolve_side<'a>(
    db: &'a Database,
    relation: &Relation,
    table: TableId,
    column: mtmlf_storage::ColumnId,
) -> Result<KeySide<'a>> {
    let position = relation
        .position_of(table)
        .ok_or(ExecError::PlanTableNotInQuery(table))?;
    let col = db.table(table)?.read_column(column)?;
    if col.as_int().is_none() {
        return Err(ExecError::NonIntegerJoinKey { table });
    }
    Ok(KeySide { position, col })
}

/// Joins `left` and `right` on the given predicates. Every predicate must
/// have one side bound in `left` and the other in `right`. The first
/// predicate drives the hash join; remaining predicates are verified on
/// each candidate match.
pub fn equi_join(
    db: &Database,
    left: &Relation,
    right: &Relation,
    predicates: &[&JoinPredicate],
) -> Result<Relation> {
    equi_join_limited(db, left, right, predicates, usize::MAX)
}

/// [`equi_join`] with a cap on the output size: exceeding `row_limit`
/// aborts with [`ExecError::RowLimitExceeded`] instead of exhausting
/// memory on a pathological join order.
pub fn equi_join_limited(
    db: &Database,
    left: &Relation,
    right: &Relation,
    predicates: &[&JoinPredicate],
    row_limit: usize,
) -> Result<Relation> {
    let (&first, rest) = predicates
        .split_first()
        .ok_or_else(|| ExecError::NoJoinPredicate {
            left: left.tables().to_vec(),
            right: right.tables().to_vec(),
        })?;

    // Orient the driving predicate: left side of the predicate bound in `left`.
    let (l_ref, r_ref) = if left.position_of(first.left.table).is_some() {
        (first.left, first.right)
    } else {
        (first.right, first.left)
    };
    let l_key = resolve_side(db, left, l_ref.table, l_ref.column)?;
    let r_key = resolve_side(db, right, r_ref.table, r_ref.column)?;

    // Residual predicate key sides, oriented the same way.
    let mut residual = Vec::with_capacity(rest.len());
    for &p in rest {
        let (pl, pr) = if left.position_of(p.left.table).is_some() {
            (p.left, p.right)
        } else {
            (p.right, p.left)
        };
        residual.push((
            resolve_side(db, left, pl.table, pl.column)?,
            resolve_side(db, right, pr.table, pr.column)?,
        ));
    }

    // Build on the smaller side.
    let swap = right.len() < left.len();
    let (build_rel, probe_rel) = if swap { (right, left) } else { (left, right) };
    let (build_key, probe_key) = if swap {
        (&r_key, &l_key)
    } else {
        (&l_key, &r_key)
    };

    let mut table: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
    let build_rows = build_rel.rows_of(build_key.position);
    let build_data = build_key.data();
    for (tuple, &row) in build_rows.iter().enumerate() {
        let key = build_data[row as usize];
        table.entry(key).or_default().push(tuple as u32);
    }

    // Output columns: left tables then right tables (relation binding order).
    let out_tables: Vec<TableId> = left
        .tables()
        .iter()
        .chain(right.tables())
        .copied()
        .collect();
    let mut out_columns: Vec<Vec<u32>> = vec![Vec::new(); out_tables.len()];
    let left_arity = left.tables().len();

    let probe_rows = probe_rel.rows_of(probe_key.position);
    let probe_data = probe_key.data();
    for (probe_tuple, &row) in probe_rows.iter().enumerate() {
        let key = probe_data[row as usize];
        let Some(matches) = table.get(&key) else {
            continue;
        };
        for &build_tuple in matches {
            let (l_tuple, r_tuple) = if swap {
                (probe_tuple, build_tuple as usize)
            } else {
                (build_tuple as usize, probe_tuple)
            };
            // Verify residual predicates.
            let ok = residual.iter().all(|(ls, rs)| {
                let lv = ls.data()[left.rows_of(ls.position)[l_tuple] as usize];
                let rv = rs.data()[right.rows_of(rs.position)[r_tuple] as usize];
                lv == rv
            });
            if !ok {
                continue;
            }
            if out_columns[0].len() >= row_limit {
                return Err(ExecError::RowLimitExceeded { limit: row_limit });
            }
            for (i, col) in out_columns.iter_mut().enumerate() {
                if i < left_arity {
                    col.push(left.rows_of(i)[l_tuple]);
                } else {
                    col.push(right.rows_of(i - left_arity)[r_tuple]);
                }
            }
        }
    }
    Ok(Relation::from_parts(out_tables, out_columns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_query::predicate::ColumnRef;
    use mtmlf_storage::{Column, ColumnDef, ColumnId, TableSchema};

    /// Two tables: a(id, x) with rows id=0..4, b(id, a_id) referencing a.
    fn make_db() -> Database {
        let mut db = Database::new("j");
        let a = mtmlf_storage::Table::from_columns(
            TableSchema::new(
                "a",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("x", mtmlf_storage::ColumnType::Int),
                ],
            ),
            vec![
                Column::Int(vec![0, 1, 2, 3, 4]),
                Column::Int(vec![9, 9, 7, 7, 5]),
            ],
        )
        .unwrap();
        db.add_table(a).unwrap();
        let b = mtmlf_storage::Table::from_columns(
            TableSchema::new(
                "b",
                vec![ColumnDef::pk("id"), ColumnDef::fk("a_id", TableId(0))],
            ),
            vec![
                Column::Int(vec![0, 1, 2, 3]),
                Column::Int(vec![0, 0, 2, 9]), // 9 dangles
            ],
        )
        .unwrap();
        db.add_table(b).unwrap();
        db
    }

    fn pred(at: u32, ac: u32, bt: u32, bc: u32) -> JoinPredicate {
        JoinPredicate::new(
            ColumnRef::new(TableId(at), ColumnId(ac)),
            ColumnRef::new(TableId(bt), ColumnId(bc)),
        )
    }

    #[test]
    fn pk_fk_join() {
        let db = make_db();
        let a = Relation::base(TableId(0), (0..5).collect());
        let b = Relation::base(TableId(1), (0..4).collect());
        let p = pred(0, 0, 1, 1); // a.id = b.a_id
        let out = equi_join(&db, &a, &b, &[&p]).unwrap();
        assert_eq!(out.tables(), &[TableId(0), TableId(1)]);
        assert_eq!(
            out.len(),
            3,
            "b rows 0,1 match a row 0; b row 2 matches a row 2"
        );
        // Collect matched (a_row, b_row) pairs.
        let mut pairs: Vec<(u32, u32)> = (0..out.len())
            .map(|i| (out.rows_of(0)[i], out.rows_of(1)[i]))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn join_respects_filtered_inputs() {
        let db = make_db();
        let a = Relation::base(TableId(0), vec![2, 3]); // only a.id in {2,3}
        let b = Relation::base(TableId(1), (0..4).collect());
        let p = pred(0, 0, 1, 1);
        let out = equi_join(&db, &a, &b, &[&p]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows_of(0)[0], 2);
        assert_eq!(out.rows_of(1)[0], 2);
    }

    #[test]
    fn orientation_is_symmetric() {
        let db = make_db();
        let a = Relation::base(TableId(0), (0..5).collect());
        let b = Relation::base(TableId(1), (0..4).collect());
        let p = pred(0, 0, 1, 1);
        let ab = equi_join(&db, &a, &b, &[&p]).unwrap();
        let ba = equi_join(&db, &b, &a, &[&p]).unwrap();
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ba.tables(), &[TableId(1), TableId(0)]);
    }

    #[test]
    fn residual_predicate_filters() {
        let db = make_db();
        let a = Relation::base(TableId(0), (0..5).collect());
        let b = Relation::base(TableId(1), (0..4).collect());
        let p1 = pred(0, 0, 1, 1); // a.id = b.a_id
        let p2 = pred(0, 0, 1, 0); // a.id = b.id (residual)
        let out = equi_join(&db, &a, &b, &[&p1, &p2]).unwrap();
        // Matches must satisfy both: (a0,b0) yes (0=0), (a0,b1) no (0!=1),
        // (a2,b2) yes (2=2).
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn no_predicate_is_error() {
        let db = make_db();
        let a = Relation::base(TableId(0), vec![0]);
        let b = Relation::base(TableId(1), vec![0]);
        assert!(matches!(
            equi_join(&db, &a, &b, &[]),
            Err(ExecError::NoJoinPredicate { .. })
        ));
    }

    #[test]
    fn empty_side_yields_empty() {
        let db = make_db();
        let a = Relation::base(TableId(0), vec![]);
        let b = Relation::base(TableId(1), (0..4).collect());
        let p = pred(0, 0, 1, 1);
        let out = equi_join(&db, &a, &b, &[&p]).unwrap();
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use mtmlf_query::predicate::ColumnRef;
    use mtmlf_storage::{Column, ColumnDef, ColumnId, TableSchema};

    #[test]
    fn row_limit_aborts_explosive_join() {
        // Two 100-row tables all sharing one key: 10,000-row product.
        let mut db = Database::new("limit");
        for name in ["a", "b"] {
            let t = mtmlf_storage::Table::from_columns(
                TableSchema::new(
                    name,
                    vec![
                        ColumnDef::pk("id"),
                        ColumnDef::attr("k", mtmlf_storage::ColumnType::Int),
                    ],
                ),
                vec![Column::Int((0..100).collect()), Column::Int(vec![7; 100])],
            )
            .unwrap();
            db.add_table(t).unwrap();
        }
        let a = Relation::base(TableId(0), (0..100).collect());
        let b = Relation::base(TableId(1), (0..100).collect());
        let p = JoinPredicate::new(
            ColumnRef::new(TableId(0), ColumnId(1)),
            ColumnRef::new(TableId(1), ColumnId(1)),
        );
        let ok = equi_join_limited(&db, &a, &b, &[&p], 20_000).unwrap();
        assert_eq!(ok.len(), 10_000);
        let err = equi_join_limited(&db, &a, &b, &[&p], 5_000).unwrap_err();
        assert!(matches!(err, ExecError::RowLimitExceeded { limit: 5_000 }));
    }
}

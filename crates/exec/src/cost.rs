//! Deterministic work-unit cost accounting ("simulated execution time").
//!
//! Every physical operator charges work units as a function of its *actual*
//! input and output sizes during execution. The total converts linearly to
//! "sim-minutes". Because all plans for the same query are charged under
//! identical semantics on identical data, ratios between planners (the
//! quantity Tables 2 and 3 of the paper report) are substrate-independent.

use mtmlf_query::{JoinOp, ScanOp};

/// Work units per simulated minute. Chosen so that the Table 2 regeneration
/// lands in the paper's magnitude range (hundreds of minutes for ~1000
/// multi-join queries on the scaled data).
pub const WORK_UNITS_PER_SIM_MINUTE: f64 = 2.0e6;

/// Per-operator cost coefficients (work units per tuple touched).
#[derive(Debug, Clone, Copy)]
pub struct OperatorCost {
    /// Cost of scanning one tuple sequentially.
    pub seq_tuple: f64,
    /// Cost of an index lookup (charged per result tuple; random access).
    pub index_tuple: f64,
    /// Fixed index traversal cost per scan.
    pub index_descent: f64,
    /// Cost of inserting one tuple into a join hash table.
    pub hash_build: f64,
    /// Cost of probing the hash table with one tuple.
    pub hash_probe: f64,
    /// Per-tuple sort coefficient for merge join (multiplied by log2 n).
    pub sort_tuple: f64,
    /// Per-comparison cost in nested-loop join.
    pub nl_compare: f64,
    /// Cost of materializing one output tuple (any operator).
    pub output_tuple: f64,
}

impl Default for OperatorCost {
    fn default() -> Self {
        // Relative magnitudes follow PostgreSQL's defaults in spirit:
        // sequential IO is the unit, random access ~4x, hashing ~1.2x CPU.
        Self {
            seq_tuple: 1.0,
            index_tuple: 4.0,
            index_descent: 32.0,
            hash_build: 1.5,
            hash_probe: 1.0,
            sort_tuple: 0.25,
            nl_compare: 0.02,
            output_tuple: 1.0,
        }
    }
}

/// Accumulates work units over the execution of one or more plans.
#[derive(Debug, Clone)]
pub struct CostTracker {
    coefficients: OperatorCost,
    units: f64,
}

impl Default for CostTracker {
    fn default() -> Self {
        Self::new(OperatorCost::default())
    }
}

impl CostTracker {
    /// Creates a tracker with explicit coefficients.
    pub fn new(coefficients: OperatorCost) -> Self {
        Self {
            coefficients,
            units: 0.0,
        }
    }

    /// Total charged work units.
    pub fn units(&self) -> f64 {
        self.units
    }

    /// Total in sim-minutes.
    pub fn sim_minutes(&self) -> f64 {
        self.units / WORK_UNITS_PER_SIM_MINUTE
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        self.units = 0.0;
    }

    /// Charges a scan of `table_rows` tuples producing `out_rows`.
    pub fn charge_scan(&mut self, op: ScanOp, table_rows: usize, out_rows: usize) -> f64 {
        let c = &self.coefficients;
        let units = match op {
            ScanOp::SeqScan => c.seq_tuple * table_rows as f64 + c.output_tuple * out_rows as f64,
            ScanOp::IndexScan => {
                c.index_descent + c.index_tuple * out_rows as f64 + c.output_tuple * out_rows as f64
            }
        };
        self.units += units;
        units
    }

    /// Charges a join with `left_rows`/`right_rows` inputs and `out_rows`
    /// output. The build side of a hash join is the smaller input.
    pub fn charge_join(
        &mut self,
        op: JoinOp,
        left_rows: usize,
        right_rows: usize,
        out_rows: usize,
    ) -> f64 {
        let c = &self.coefficients;
        let (build, probe) = if left_rows <= right_rows {
            (left_rows as f64, right_rows as f64)
        } else {
            (right_rows as f64, left_rows as f64)
        };
        let units = match op {
            JoinOp::HashJoin => c.hash_build * build + c.hash_probe * probe,
            JoinOp::MergeJoin => {
                let l = left_rows as f64;
                let r = right_rows as f64;
                c.sort_tuple * (l * log2(l) + r * log2(r)) + c.seq_tuple * (l + r)
            }
            JoinOp::NestedLoopJoin => c.nl_compare * left_rows as f64 * right_rows as f64,
        } + c.output_tuple * out_rows as f64;
        self.units += units;
        units
    }

    /// Pure estimate of a scan's cost (no accumulation) — used by the
    /// classical cost model in `mtmlf-optd` so planner and executor share
    /// one cost semantics.
    pub fn scan_cost(
        coefficients: &OperatorCost,
        op: ScanOp,
        table_rows: f64,
        out_rows: f64,
    ) -> f64 {
        match op {
            ScanOp::SeqScan => {
                coefficients.seq_tuple * table_rows + coefficients.output_tuple * out_rows
            }
            ScanOp::IndexScan => {
                coefficients.index_descent
                    + coefficients.index_tuple * out_rows
                    + coefficients.output_tuple * out_rows
            }
        }
    }

    /// Pure estimate of a join's cost (no accumulation).
    pub fn join_cost(
        coefficients: &OperatorCost,
        op: JoinOp,
        left_rows: f64,
        right_rows: f64,
        out_rows: f64,
    ) -> f64 {
        let (build, probe) = if left_rows <= right_rows {
            (left_rows, right_rows)
        } else {
            (right_rows, left_rows)
        };
        (match op {
            JoinOp::HashJoin => coefficients.hash_build * build + coefficients.hash_probe * probe,
            JoinOp::MergeJoin => {
                coefficients.sort_tuple
                    * (left_rows * log2(left_rows) + right_rows * log2(right_rows))
                    + coefficients.seq_tuple * (left_rows + right_rows)
            }
            JoinOp::NestedLoopJoin => coefficients.nl_compare * left_rows * right_rows,
        }) + coefficients.output_tuple * out_rows
    }

    /// The tracker's coefficients.
    pub fn coefficients(&self) -> &OperatorCost {
        &self.coefficients
    }
}

fn log2(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_linear_in_table() {
        let mut t = CostTracker::default();
        let a = t.charge_scan(ScanOp::SeqScan, 1000, 10);
        let before = t.units();
        let b = t.charge_scan(ScanOp::SeqScan, 2000, 10);
        assert!(b > a);
        assert!((t.units() - before - b).abs() < 1e-9);
    }

    #[test]
    fn index_scan_cheap_when_selective() {
        let mut t = CostTracker::default();
        let idx = t.charge_scan(ScanOp::IndexScan, 1_000_000, 5);
        let seq = t.charge_scan(ScanOp::SeqScan, 1_000_000, 5);
        assert!(idx < seq / 100.0, "index {idx} vs seq {seq}");
    }

    #[test]
    fn index_scan_expensive_when_unselective() {
        let mut t = CostTracker::default();
        let idx = t.charge_scan(ScanOp::IndexScan, 10_000, 9_000);
        let seq = t.charge_scan(ScanOp::SeqScan, 10_000, 9_000);
        assert!(idx > seq, "index {idx} vs seq {seq}");
    }

    #[test]
    fn hash_join_builds_on_smaller_side() {
        let c = OperatorCost::default();
        let ab = CostTracker::join_cost(&c, JoinOp::HashJoin, 10.0, 1000.0, 50.0);
        let ba = CostTracker::join_cost(&c, JoinOp::HashJoin, 1000.0, 10.0, 50.0);
        assert_eq!(ab, ba, "hash join cost is symmetric");
    }

    #[test]
    fn nested_loop_quadratic() {
        let c = OperatorCost::default();
        let small = CostTracker::join_cost(&c, JoinOp::NestedLoopJoin, 100.0, 100.0, 0.0);
        let big = CostTracker::join_cost(&c, JoinOp::NestedLoopJoin, 1000.0, 1000.0, 0.0);
        assert!((big / small - 100.0).abs() < 1e-6);
    }

    #[test]
    fn nl_beats_hash_on_tiny_inputs() {
        let c = OperatorCost::default();
        let nl = CostTracker::join_cost(&c, JoinOp::NestedLoopJoin, 3.0, 4.0, 2.0);
        let hash = CostTracker::join_cost(&c, JoinOp::HashJoin, 3.0, 4.0, 2.0);
        assert!(nl < hash, "nl {nl} vs hash {hash}");
    }

    #[test]
    fn sim_minutes_conversion() {
        let mut t = CostTracker::default();
        t.charge_scan(ScanOp::SeqScan, WORK_UNITS_PER_SIM_MINUTE as usize, 0);
        assert!((t.sim_minutes() - 1.0).abs() < 1e-6);
        t.reset();
        assert_eq!(t.units(), 0.0);
    }
}

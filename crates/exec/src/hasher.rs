//! A fast, non-cryptographic hasher for integer join keys.
//!
//! Join hash tables are the hottest structure in the executor; the standard
//! SipHash hasher dominates profiles there. This is the Fx (Firefox) hash
//! algorithm specialized to our key types, implemented locally to stay
//! within the allowed dependency set.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: multiply-and-rotate word mixing.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000i64 {
            let mut h = FxHasher::default();
            h.write_i64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small dense keys");
    }

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<i64, u32> = FxHashMap::default();
        m.insert(42, 1);
        m.insert(-7, 2);
        assert_eq!(m.get(&42), Some(&1));
        assert_eq!(m.get(&-7), Some(&2));
        assert_eq!(m.get(&0), None);
    }

    #[test]
    fn byte_writes_consistent() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}

//! Vectorized evaluation of per-table filter predicates.

use crate::error::ExecError;
use crate::Result;
use mtmlf_query::{CmpOp, FilterPredicate, LikePattern};
use mtmlf_storage::{Column, Table, Value};

/// Evaluates a conjunction of filter predicates on a base table, returning
/// the selected row indices in ascending order.
pub fn evaluate_filters(table: &Table, filters: &[FilterPredicate]) -> Result<Vec<u32>> {
    let rows = table.rows();
    if filters.is_empty() {
        return Ok((0..rows as u32).collect());
    }
    let mut selected: Option<Vec<u32>> = None;
    for pred in filters {
        // `read_column` pins spilled columns for the duration of this
        // predicate's scan; resident tables borrow as before.
        let column = table.read_column(pred.column())?;
        selected = Some(match selected {
            None => eval_predicate(&column, pred, None)?,
            Some(prev) => eval_predicate(&column, pred, Some(&prev))?,
        });
        if selected.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    Ok(selected.unwrap_or_default())
}

/// Evaluates one predicate over a column, optionally restricted to a sorted
/// candidate row list.
fn eval_predicate(
    column: &Column,
    pred: &FilterPredicate,
    candidates: Option<&[u32]>,
) -> Result<Vec<u32>> {
    match pred {
        FilterPredicate::Cmp { op, value, .. } => eval_cmp(column, *op, value, candidates),
        FilterPredicate::Between { lo, hi, .. } => eval_between(column, lo, hi, candidates),
        FilterPredicate::Like { pattern, .. } => Ok(eval_like(column, pattern, candidates)),
        FilterPredicate::InSet { values, .. } => eval_in(column, values, candidates),
    }
}

/// Applies `keep` over either all rows or the candidate subset.
fn scan_rows(
    len: usize,
    candidates: Option<&[u32]>,
    mut keep: impl FnMut(usize) -> bool,
) -> Vec<u32> {
    match candidates {
        Some(cands) => cands
            .iter()
            .copied()
            .filter(|&r| keep(r as usize))
            .collect(),
        None => (0..len as u32).filter(|&r| keep(r as usize)).collect(),
    }
}

fn eval_cmp(
    column: &Column,
    op: CmpOp,
    value: &Value,
    candidates: Option<&[u32]>,
) -> Result<Vec<u32>> {
    match (column, value) {
        (Column::Int(data), Value::Int(v)) => Ok(scan_rows(data.len(), candidates, |r| {
            op.eval(data[r].cmp(v))
        })),
        (Column::Float(data), Value::Float(v)) => Ok(scan_rows(data.len(), candidates, |r| {
            data[r].partial_cmp(v).is_some_and(|o| op.eval(o))
        })),
        // Integer literal against float column (workload generators quantize).
        (Column::Float(data), Value::Int(v)) => {
            let v = *v as f64;
            Ok(scan_rows(data.len(), candidates, |r| {
                data[r].partial_cmp(&v).is_some_and(|o| op.eval(o))
            }))
        }
        (Column::Str { codes, dict }, Value::Str(s)) => {
            // Equality/inequality resolve through the dictionary; ordered
            // comparisons use code order, which matches lexicographic order.
            match dict.encode(s) {
                Some(code) => Ok(scan_rows(codes.len(), candidates, |r| {
                    op.eval(codes[r].cmp(&code))
                })),
                None => match op {
                    CmpOp::Eq => Ok(Vec::new()),
                    CmpOp::Neq => Ok(scan_rows(codes.len(), candidates, |_| true)),
                    // Value absent from dictionary: find its insertion point
                    // among dictionary entries and compare codes against it.
                    _ => {
                        let boundary =
                            dict.iter().take_while(|(_, w)| *w < s.as_ref()).count() as u32;
                        let lt = matches!(op, CmpOp::Lt | CmpOp::Le);
                        Ok(scan_rows(codes.len(), candidates, |r| {
                            let c = codes[r];
                            if lt {
                                c < boundary
                            } else {
                                c >= boundary
                            }
                        }))
                    }
                },
            }
        }
        _ => Err(ExecError::Storage(
            mtmlf_storage::StorageError::TypeMismatch {
                column: "<filter>".into(),
                expected: column.ctype().name(),
                got: value.type_name(),
            },
        )),
    }
}

fn eval_between(
    column: &Column,
    lo: &Value,
    hi: &Value,
    candidates: Option<&[u32]>,
) -> Result<Vec<u32>> {
    match (column, lo, hi) {
        (Column::Int(data), Value::Int(a), Value::Int(b)) => {
            Ok(scan_rows(data.len(), candidates, |r| {
                (*a..=*b).contains(&data[r])
            }))
        }
        (Column::Float(data), Value::Float(a), Value::Float(b)) => {
            Ok(scan_rows(data.len(), candidates, |r| {
                data[r] >= *a && data[r] <= *b
            }))
        }
        (Column::Float(data), Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a as f64, *b as f64);
            Ok(scan_rows(data.len(), candidates, |r| {
                data[r] >= a && data[r] <= b
            }))
        }
        _ => Err(ExecError::Storage(
            mtmlf_storage::StorageError::TypeMismatch {
                column: "<between>".into(),
                expected: column.ctype().name(),
                got: lo.type_name(),
            },
        )),
    }
}

/// LIKE evaluation: match each distinct dictionary value once, then filter
/// rows through the per-code match bitmap.
fn eval_like(column: &Column, pattern: &LikePattern, candidates: Option<&[u32]>) -> Vec<u32> {
    let Some((codes, dict)) = column.as_str() else {
        return Vec::new(); // LIKE on non-string matches nothing.
    };
    let mut matches = vec![false; dict.len()];
    for (code, value) in dict.iter() {
        matches[code as usize] = pattern.matches(value);
    }
    scan_rows(codes.len(), candidates, |r| matches[codes[r] as usize])
}

fn eval_in(column: &Column, values: &[Value], candidates: Option<&[u32]>) -> Result<Vec<u32>> {
    match column {
        Column::Int(data) => {
            let set: Vec<i64> = values.iter().filter_map(Value::as_int).collect();
            Ok(scan_rows(data.len(), candidates, |r| {
                set.contains(&data[r])
            }))
        }
        Column::Str { codes, dict } => {
            let set: Vec<u32> = values
                .iter()
                .filter_map(Value::as_str)
                .filter_map(|s| dict.encode(s))
                .collect();
            Ok(scan_rows(codes.len(), candidates, |r| {
                set.contains(&codes[r])
            }))
        }
        Column::Float(data) => {
            let set: Vec<f64> = values.iter().filter_map(Value::as_float).collect();
            Ok(scan_rows(data.len(), candidates, |r| {
                set.contains(&data[r])
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_storage::{ColumnDef, ColumnId, ColumnType, TableSchema};

    fn make_table() -> Table {
        Table::from_columns(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::attr("i", ColumnType::Int),
                    ColumnDef::attr("f", ColumnType::Float),
                    ColumnDef::attr("s", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int(vec![1, 2, 3, 4, 5]),
                Column::Float(vec![0.1, 0.2, 0.3, 0.4, 0.5]),
                Column::str_from_strings(&["apple", "banana", "apricot", "cherry", "avocado"]),
            ],
        )
        .unwrap()
    }

    fn cmp(col: u32, op: CmpOp, v: Value) -> FilterPredicate {
        FilterPredicate::Cmp {
            column: ColumnId(col),
            op,
            value: v,
        }
    }

    #[test]
    fn empty_filters_select_all() {
        let t = make_table();
        assert_eq!(evaluate_filters(&t, &[]).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn int_comparisons() {
        let t = make_table();
        assert_eq!(
            evaluate_filters(&t, &[cmp(0, CmpOp::Gt, Value::Int(3))]).unwrap(),
            vec![3, 4]
        );
        assert_eq!(
            evaluate_filters(&t, &[cmp(0, CmpOp::Eq, Value::Int(2))]).unwrap(),
            vec![1]
        );
        assert_eq!(
            evaluate_filters(&t, &[cmp(0, CmpOp::Neq, Value::Int(2))]).unwrap(),
            vec![0, 2, 3, 4]
        );
    }

    #[test]
    fn conjunction_narrows() {
        let t = make_table();
        let rows = evaluate_filters(
            &t,
            &[
                cmp(0, CmpOp::Ge, Value::Int(2)),
                cmp(1, CmpOp::Lt, Value::Float(0.45)),
            ],
        )
        .unwrap();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn between_inclusive() {
        let t = make_table();
        let rows = evaluate_filters(
            &t,
            &[FilterPredicate::Between {
                column: ColumnId(0),
                lo: Value::Int(2),
                hi: Value::Int(4),
            }],
        )
        .unwrap();
        assert_eq!(rows, vec![1, 2, 3]);
    }

    #[test]
    fn like_contains_prefix_suffix() {
        let t = make_table();
        let contains = evaluate_filters(
            &t,
            &[FilterPredicate::Like {
                column: ColumnId(2),
                pattern: LikePattern::Contains("an".into()),
            }],
        )
        .unwrap();
        assert_eq!(contains, vec![1]); // banana
        let prefix = evaluate_filters(
            &t,
            &[FilterPredicate::Like {
                column: ColumnId(2),
                pattern: LikePattern::Prefix("ap".into()),
            }],
        )
        .unwrap();
        assert_eq!(prefix, vec![0, 2]); // apple, apricot
        let suffix = evaluate_filters(
            &t,
            &[FilterPredicate::Like {
                column: ColumnId(2),
                pattern: LikePattern::Suffix("o".into()),
            }],
        )
        .unwrap();
        assert_eq!(suffix, vec![4]); // avocado
    }

    #[test]
    fn string_equality_and_missing_value() {
        let t = make_table();
        assert_eq!(
            evaluate_filters(&t, &[cmp(2, CmpOp::Eq, Value::str("cherry"))]).unwrap(),
            vec![3]
        );
        assert_eq!(
            evaluate_filters(&t, &[cmp(2, CmpOp::Eq, Value::str("durian"))]).unwrap(),
            Vec::<u32>::new()
        );
        assert_eq!(
            evaluate_filters(&t, &[cmp(2, CmpOp::Neq, Value::str("durian"))]).unwrap(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn string_range_with_missing_boundary() {
        let t = make_table();
        // "b" is not in the dictionary; everything < "b" is apple/apricot/avocado.
        let rows = evaluate_filters(&t, &[cmp(2, CmpOp::Lt, Value::str("b"))]).unwrap();
        assert_eq!(rows, vec![0, 2, 4]);
        let rows = evaluate_filters(&t, &[cmp(2, CmpOp::Ge, Value::str("b"))]).unwrap();
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn in_set() {
        let t = make_table();
        let rows = evaluate_filters(
            &t,
            &[FilterPredicate::InSet {
                column: ColumnId(0),
                values: vec![Value::Int(1), Value::Int(5), Value::Int(99)],
            }],
        )
        .unwrap();
        assert_eq!(rows, vec![0, 4]);
    }

    #[test]
    fn type_mismatch_rejected() {
        let t = make_table();
        assert!(evaluate_filters(&t, &[cmp(0, CmpOp::Eq, Value::str("x"))]).is_err());
    }

    #[test]
    fn short_circuit_on_empty() {
        let t = make_table();
        let rows = evaluate_filters(
            &t,
            &[
                cmp(0, CmpOp::Gt, Value::Int(100)),
                cmp(1, CmpOp::Lt, Value::Float(0.5)),
            ],
        )
        .unwrap();
        assert!(rows.is_empty());
    }
}

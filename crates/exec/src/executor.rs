//! The executor: runs plans against a database, observing true
//! cardinalities and charging simulated cost.

use crate::cost::CostTracker;
use crate::error::ExecError;
use crate::filter::evaluate_filters;
use crate::hasher::FxHashMap;
use crate::join::equi_join_limited;
use crate::relation::Relation;
use crate::Result;
use mtmlf_query::{JoinOrder, PlanNode, Query};
use mtmlf_storage::{Database, TableId};

/// Per-node observation from executing a plan: the ground-truth labels the
/// paper attaches to every node of the initial plan `P` (Section 3.2 I).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Tables covered by the sub-plan rooted at this node.
    pub tables: Vec<TableId>,
    /// True output cardinality of the sub-plan.
    pub cardinality: u64,
    /// Cumulative cost (work units) of the sub-plan, children included —
    /// the paper's per-node "cost" label.
    pub subplan_cost: f64,
}

/// Result of executing one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Observations in post-order (aligned with [`PlanNode::post_order`]).
    pub nodes: Vec<NodeObservation>,
    /// True cardinality of the root.
    pub output_cardinality: u64,
    /// Total charged work units.
    pub total_units: f64,
    /// Total in sim-minutes.
    pub sim_minutes: f64,
}

/// Default cap on intermediate result sizes (rows). Generous for the
/// scaled data (hundreds of MB at worst) while preventing pathological
/// join orders from exhausting memory.
pub const DEFAULT_ROW_LIMIT: usize = 10_000_000;

/// Executes plans against one database.
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    db: &'a Database,
    row_limit: usize,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a database with the default row limit.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            row_limit: DEFAULT_ROW_LIMIT,
        }
    }

    /// Overrides the intermediate-result row limit.
    pub fn with_row_limit(mut self, row_limit: usize) -> Self {
        self.row_limit = row_limit;
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Executes `plan` for `query`, returning per-node observations and the
    /// total simulated cost. The plan may cover a subset of the query's
    /// tables (used when labelling sub-plans), but must not bind a table
    /// twice or bind tables outside the query.
    pub fn execute_plan(&self, query: &Query, plan: &PlanNode) -> Result<ExecOutcome> {
        let mut seen = Vec::new();
        for t in plan.tables() {
            if !query.tables().contains(&t) {
                return Err(ExecError::PlanTableNotInQuery(t));
            }
            if seen.contains(&t) {
                return Err(ExecError::DuplicatePlanTable(t));
            }
            seen.push(t);
        }
        let mut tracker = CostTracker::default();
        let mut nodes = Vec::with_capacity(plan.node_count());
        let root = self.eval(query, plan, &mut tracker, &mut nodes)?;
        Ok(ExecOutcome {
            output_cardinality: root.len() as u64,
            total_units: tracker.units(),
            sim_minutes: tracker.sim_minutes(),
            nodes,
        })
    }

    /// Executes the plan induced by a join order.
    pub fn execute_order(&self, query: &Query, order: &JoinOrder) -> Result<ExecOutcome> {
        order.validate(query)?;
        self.execute_plan(query, &order.to_plan()?)
    }

    /// True result cardinality of the full query (independent of the join
    /// order; evaluated over a greedy legal order).
    pub fn true_cardinality(&self, query: &Query) -> Result<u64> {
        let order = greedy_legal_order(query)?;
        Ok(self
            .execute_plan(query, &PlanNode::left_deep(&order)?)?
            .output_cardinality)
    }

    fn eval(
        &self,
        query: &Query,
        node: &PlanNode,
        tracker: &mut CostTracker,
        nodes: &mut Vec<NodeObservation>,
    ) -> Result<Relation> {
        match node {
            PlanNode::Scan { table, op } => {
                let base = self.db.table(*table)?;
                let rows = evaluate_filters(base, query.filters_on(*table))?;
                let units = tracker.charge_scan(*op, base.rows(), rows.len());
                let relation = Relation::base(*table, rows);
                nodes.push(NodeObservation {
                    tables: vec![*table],
                    cardinality: relation.len() as u64,
                    subplan_cost: units,
                });
                Ok(relation)
            }
            PlanNode::Join { op, left, right } => {
                let l = self.eval(query, left, tracker, nodes)?;
                let l_cost = nodes
                    .last()
                    .ok_or(ExecError::Internal("left child pushed no observation"))?
                    .subplan_cost;
                let r = self.eval(query, right, tracker, nodes)?;
                let r_cost = nodes
                    .last()
                    .ok_or(ExecError::Internal("right child pushed no observation"))?
                    .subplan_cost;
                let predicates = connecting_predicates(query, l.tables(), r.tables());
                if predicates.is_empty() {
                    return Err(ExecError::NoJoinPredicate {
                        left: l.tables().to_vec(),
                        right: r.tables().to_vec(),
                    });
                }
                let out = equi_join_limited(self.db, &l, &r, &predicates, self.row_limit)?;
                let units = tracker.charge_join(*op, l.len(), r.len(), out.len());
                nodes.push(NodeObservation {
                    tables: out.tables().to_vec(),
                    cardinality: out.len() as u64,
                    subplan_cost: l_cost + r_cost + units,
                });
                Ok(out)
            }
        }
    }

    /// True cardinalities for every *connected subset* of the query's tables
    /// (keyed by join-graph-local bitset). This is the oracle behind the
    /// exact-cardinality optimal join enumerator (the paper's ECQO \[34\]).
    pub fn subset_cardinalities(&self, query: &Query) -> Result<FxHashMap<u64, u64>> {
        let graph = query.join_graph()?;
        let n = graph.len();
        let mut relations: FxHashMap<u64, Relation> = FxHashMap::default();
        let mut cards: FxHashMap<u64, u64> = FxHashMap::default();

        // Singletons: filtered base tables.
        for v in 0..n {
            let t = graph.table(v);
            let base = self.db.table(t)?;
            let rows = evaluate_filters(base, query.filters_on(t))?;
            let rel = Relation::base(t, rows);
            cards.insert(1 << v, rel.len() as u64);
            relations.insert(1 << v, rel);
        }

        // Enumerate connected subsets by size; each connected subset S of
        // size k ≥ 2 has at least one vertex v with S \ {v} connected and v
        // adjacent to it (any leaf of a spanning tree of S). Size k only
        // reads size k−1 and singletons, so lower tiers are freed as the DP
        // ascends (the full map of materialized relations would dominate
        // memory on join-heavy queries).
        for size in 2..=n {
            if size > 2 {
                relations.retain(|s, _| {
                    let ones = s.count_ones() as usize;
                    ones == 1 || ones == size - 1
                });
            }
            let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let mut s = smallest_subset_of_size(size);
            while s <= full {
                if s.count_ones() as usize == size && graph.subset_connected(s) {
                    // Find a removable vertex.
                    let mut built = false;
                    let mut bits = s;
                    while bits != 0 && !built {
                        let v = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let rest = s & !(1u64 << v);
                        if graph.subset_connected(rest) && graph.frontier(rest) & (1 << v) != 0 {
                            let left = relations
                                .get(&rest)
                                .ok_or(ExecError::Internal("smaller subsets built"))?;
                            let right = relations
                                .get(&(1u64 << v))
                                .ok_or(ExecError::Internal("singleton built"))?;
                            let preds = connecting_predicates(query, left.tables(), right.tables());
                            debug_assert!(!preds.is_empty());
                            let out =
                                equi_join_limited(self.db, left, right, &preds, self.row_limit)?;
                            cards.insert(s, out.len() as u64);
                            relations.insert(s, out);
                            built = true;
                        }
                    }
                    debug_assert!(built, "connected subset must decompose");
                }
                s = match next_subset(s, full) {
                    Some(next) => next,
                    None => break,
                };
            }
        }
        Ok(cards)
    }
}

/// Join predicates with one side bound in `left` and the other in `right`.
pub fn connecting_predicates<'q>(
    query: &'q Query,
    left: &[TableId],
    right: &[TableId],
) -> Vec<&'q mtmlf_query::predicate::JoinPredicate> {
    query
        .joins()
        .iter()
        .filter(|j| {
            (left.contains(&j.left.table) && right.contains(&j.right.table))
                || (left.contains(&j.right.table) && right.contains(&j.left.table))
        })
        .collect()
}

/// A legal left-deep order built greedily from the join graph (vertex 0
/// first, then any frontier vertex). Deterministic.
pub fn greedy_legal_order(query: &Query) -> Result<Vec<TableId>> {
    let graph = query.join_graph()?;
    let n = graph.len();
    let mut order = Vec::with_capacity(n);
    let mut joined = 0u64;
    for step in 0..n {
        let candidates = graph.frontier(joined);
        let v = if step == 0 {
            0
        } else {
            candidates.trailing_zeros() as usize
        };
        order.push(graph.table(v));
        joined |= 1 << v;
    }
    Ok(order)
}

/// The numerically smallest bitset with `size` bits set.
fn smallest_subset_of_size(size: usize) -> u64 {
    (1u64 << size) - 1
}

/// Gosper's hack: next bitset with the same popcount, or None past `full`.
fn next_subset(s: u64, full: u64) -> Option<u64> {
    let c = s & s.wrapping_neg();
    let r = s + c;
    if r > full || c == 0 {
        return None;
    }
    let next = (((r ^ s) >> 2) / c) | r;
    if next > full {
        None
    } else {
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_query::{CmpOp, FilterPredicate};
    use mtmlf_storage::{Column, ColumnDef, ColumnId, ColumnType, Table, TableSchema, Value};
    use std::collections::BTreeMap;

    /// fact(id, val), dim1(id, fact_id), dim2(id, fact_id, tag)
    fn make_db() -> Database {
        let mut db = Database::new("exec");
        let fact = Table::from_columns(
            TableSchema::new(
                "fact",
                vec![ColumnDef::pk("id"), ColumnDef::attr("val", ColumnType::Int)],
            ),
            vec![
                Column::Int((0..100).collect()),
                Column::Int((0..100).map(|i| i % 10).collect()),
            ],
        )
        .unwrap();
        db.add_table(fact).unwrap();
        let dim1 = Table::from_columns(
            TableSchema::new(
                "dim1",
                vec![ColumnDef::pk("id"), ColumnDef::fk("fact_id", TableId(0))],
            ),
            vec![
                Column::Int((0..50).collect()),
                Column::Int((0..50).map(|i| i * 2).collect()), // references even fact ids
            ],
        )
        .unwrap();
        db.add_table(dim1).unwrap();
        let dim2 = Table::from_columns(
            TableSchema::new(
                "dim2",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("fact_id", TableId(0)),
                    ColumnDef::attr("tag", ColumnType::Int),
                ],
            ),
            vec![
                Column::Int((0..20).collect()),
                Column::Int((0..20).map(|i| i * 5).collect()), // fact ids 0,5,...,95
                Column::Int((0..20).map(|i| i % 2).collect()),
            ],
        )
        .unwrap();
        db.add_table(dim2).unwrap();
        db
    }

    fn jp(a: u32, ac: u32, b: u32, bc: u32) -> JoinPredicate {
        JoinPredicate::new(
            ColumnRef::new(TableId(a), ColumnId(ac)),
            ColumnRef::new(TableId(b), ColumnId(bc)),
        )
    }

    fn three_table_query() -> Query {
        Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![jp(0, 0, 1, 1), jp(0, 0, 2, 1)],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn scan_observation() {
        let db = make_db();
        let exec = Executor::new(&db);
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Eq,
                value: Value::Int(3),
            }],
        );
        let q = Query::new(vec![TableId(0)], vec![], filters).unwrap();
        let outcome = exec.execute_plan(&q, &PlanNode::scan(TableId(0))).unwrap();
        assert_eq!(outcome.output_cardinality, 10); // val==3 hits 10 of 100
        assert_eq!(outcome.nodes.len(), 1);
        assert!(outcome.total_units > 0.0);
    }

    #[test]
    fn two_way_join_cardinality() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = Query::new(
            vec![TableId(0), TableId(1)],
            vec![jp(0, 0, 1, 1)],
            BTreeMap::new(),
        )
        .unwrap();
        let plan = PlanNode::left_deep(&[TableId(0), TableId(1)]).unwrap();
        let outcome = exec.execute_plan(&q, &plan).unwrap();
        // Every dim1 row references an even fact id < 100: all 50 match.
        assert_eq!(outcome.output_cardinality, 50);
        assert_eq!(outcome.nodes.len(), 3);
        // Root cost strictly exceeds either child's cost.
        let root = outcome.nodes.last().unwrap();
        assert!(root.subplan_cost > outcome.nodes[0].subplan_cost);
    }

    #[test]
    fn cardinality_is_order_independent() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        let orders: [Vec<TableId>; 3] = [
            vec![TableId(0), TableId(1), TableId(2)],
            vec![TableId(1), TableId(0), TableId(2)],
            vec![TableId(2), TableId(0), TableId(1)],
        ];
        let mut cards = Vec::new();
        for o in &orders {
            let plan = PlanNode::left_deep(o).unwrap();
            cards.push(exec.execute_plan(&q, &plan).unwrap().output_cardinality);
        }
        assert_eq!(cards[0], cards[1]);
        assert_eq!(cards[1], cards[2]);
        // dim1 hits even ids, dim2 hits multiples of 5; both -> multiples of 10.
        assert_eq!(cards[0], 10);
    }

    #[test]
    fn cost_depends_on_order() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        let a = exec
            .execute_plan(
                &q,
                &PlanNode::left_deep(&[TableId(0), TableId(1), TableId(2)]).unwrap(),
            )
            .unwrap();
        let b = exec
            .execute_plan(
                &q,
                &PlanNode::left_deep(&[TableId(2), TableId(0), TableId(1)]).unwrap(),
            )
            .unwrap();
        assert_ne!(a.total_units, b.total_units);
    }

    #[test]
    fn cross_product_rejected() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        // dim1 ⋈ dim2 has no direct predicate in this query.
        let plan = PlanNode::left_deep(&[TableId(1), TableId(2)]).unwrap();
        assert!(matches!(
            exec.execute_plan(&q, &plan),
            Err(ExecError::NoJoinPredicate { .. })
        ));
    }

    #[test]
    fn plan_validation() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        let outside = PlanNode::scan(TableId(9));
        assert!(matches!(
            exec.execute_plan(&q, &outside),
            Err(ExecError::PlanTableNotInQuery(_))
        ));
        let dup = PlanNode::join_default(PlanNode::scan(TableId(0)), PlanNode::scan(TableId(0)));
        assert!(matches!(
            exec.execute_plan(&q, &dup),
            Err(ExecError::DuplicatePlanTable(_))
        ));
    }

    #[test]
    fn true_cardinality_matches_execution() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        assert_eq!(exec.true_cardinality(&q).unwrap(), 10);
    }

    #[test]
    fn subset_cardinalities_cover_connected_subsets() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        let cards = exec.subset_cardinalities(&q).unwrap();
        // Graph: 0-1, 0-2 (star). Connected subsets: {0},{1},{2},{0,1},{0,2},{0,1,2}.
        assert_eq!(cards.len(), 6);
        assert_eq!(cards[&0b001], 100);
        assert_eq!(cards[&0b010], 50);
        assert_eq!(cards[&0b100], 20);
        assert_eq!(cards[&0b011], 50);
        assert_eq!(cards[&0b101], 20);
        assert_eq!(cards[&0b111], 10);
    }

    #[test]
    fn greedy_order_is_legal() {
        let q = three_table_query();
        let order = greedy_legal_order(&q).unwrap();
        JoinOrder::LeftDeep(order).validate(&q).unwrap();
    }

    #[test]
    fn execute_order_validates() {
        let db = make_db();
        let exec = Executor::new(&db);
        let q = three_table_query();
        let bad = JoinOrder::LeftDeep(vec![TableId(1), TableId(2), TableId(0)]);
        assert!(exec.execute_order(&q, &bad).is_err(), "1-2 not adjacent");
        let good = JoinOrder::LeftDeep(vec![TableId(1), TableId(0), TableId(2)]);
        assert_eq!(
            exec.execute_order(&q, &good).unwrap().output_cardinality,
            10
        );
    }

    #[test]
    fn gosper_enumeration() {
        // All 3-subsets of 5 elements.
        let full = 0b11111u64;
        let mut s = smallest_subset_of_size(3);
        let mut count = 0;
        loop {
            if s.count_ones() == 3 {
                count += 1;
            }
            match next_subset(s, full) {
                Some(n) => s = n,
                None => break,
            }
        }
        assert_eq!(count, 10);
    }
}

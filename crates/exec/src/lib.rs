//! # mtmlf-exec
//!
//! Query executor for the MTMLF reproduction. This crate plays the role the
//! paper assigns to PostgreSQL's runtime: it *actually executes* query plans
//! on the stored data to obtain
//!
//! 1. **true cardinalities** for every sub-plan (the training labels for
//!    CardEst and the oracle behind the exact-optimal join enumerator), and
//! 2. **simulated execution time**: a deterministic work-unit account of the
//!    physical operators, reported in "sim-minutes" (Tables 2 and 3 of the
//!    paper compare total execution time of different join orders; here the
//!    comparison is under the same deterministic cost semantics for all
//!    planners, so ratios are meaningful even though absolute wall-clock is
//!    not measured).
//!
//! Joins are equi-joins over integer key columns. Output *tuples* are always
//! computed with a hash-based algorithm (the result relation is identical
//! for any correct join algorithm); the *charged work* follows the plan's
//! physical operator (hash/merge/nested-loop), so operator choice affects
//! simulated time exactly as it affects a real system's runtime profile.

#![forbid(unsafe_code)]

pub mod cost;
pub mod error;
pub mod executor;
pub mod filter;
pub mod hasher;
pub mod join;
pub mod relation;

pub use cost::{CostTracker, OperatorCost, WORK_UNITS_PER_SIM_MINUTE};
pub use error::ExecError;
pub use executor::{ExecOutcome, Executor, NodeObservation};
pub use filter::evaluate_filters;
pub use relation::Relation;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ExecError>;

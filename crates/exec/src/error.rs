//! Error type for execution.

use mtmlf_query::QueryError;
use mtmlf_storage::{StorageError, TableId};
use std::fmt;

/// Errors produced during plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying query/plan failure.
    Query(QueryError),
    /// A join between two sub-plans has no connecting join predicate
    /// (cross products are not executed).
    NoJoinPredicate {
        /// Tables bound on the left side.
        left: Vec<TableId>,
        /// Tables bound on the right side.
        right: Vec<TableId>,
    },
    /// A join key column was not an integer column.
    NonIntegerJoinKey {
        /// The offending table.
        table: TableId,
    },
    /// A plan referenced a table that the query does not touch.
    PlanTableNotInQuery(TableId),
    /// A plan bound the same table twice.
    DuplicatePlanTable(TableId),
    /// An intermediate result exceeded the executor's row limit (guards
    /// against pathological join orders exhausting memory).
    RowLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An executor-internal bookkeeping invariant failed (e.g. an expected
    /// DP table entry or cost observation was missing). Indicates a bug in
    /// the executor itself, surfaced as an error instead of a panic so a
    /// serving process degrades to its fallback planner.
    Internal(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::Query(e) => write!(f, "query error: {e}"),
            Self::NoJoinPredicate { left, right } => {
                write!(f, "no join predicate between {left:?} and {right:?}")
            }
            Self::NonIntegerJoinKey { table } => {
                write!(f, "join key on table {table} is not an integer column")
            }
            Self::PlanTableNotInQuery(t) => write!(f, "plan table {t} not in query"),
            Self::DuplicatePlanTable(t) => write!(f, "plan binds table {t} twice"),
            Self::RowLimitExceeded { limit } => {
                write!(f, "intermediate result exceeded the row limit of {limit}")
            }
            Self::Internal(what) => write!(f, "executor invariant violated: {what}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

//! Property tests of executor algebra: cardinality invariants that must
//! hold for any data and any legal plan.

use mtmlf_exec::{evaluate_filters, Executor};
use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
use mtmlf_query::{CmpOp, FilterPredicate, PlanNode, Query};
use mtmlf_storage::{
    Column, ColumnDef, ColumnId, ColumnType, Database, Table, TableId, TableSchema, Value,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small two-table database with arbitrary FK contents.
fn build_db(a_vals: Vec<i64>, fk: Vec<u8>) -> Database {
    let mut db = Database::new("prop");
    let a_rows = 16i64;
    let a = Table::from_columns(
        TableSchema::new(
            "a",
            vec![ColumnDef::pk("id"), ColumnDef::attr("v", ColumnType::Int)],
        ),
        vec![
            Column::Int((0..a_rows).collect()),
            Column::Int(a_vals.iter().map(|&v| v % 8).collect()),
        ],
    )
    .unwrap();
    db.add_table(a).unwrap();
    let b = Table::from_columns(
        TableSchema::new(
            "b",
            vec![ColumnDef::pk("id"), ColumnDef::fk("a_id", TableId(0))],
        ),
        vec![
            Column::Int((0..fk.len() as i64).collect()),
            Column::Int(fk.iter().map(|&k| i64::from(k % 16)).collect()),
        ],
    )
    .unwrap();
    db.add_table(b).unwrap();
    db
}

fn join_query(filters: BTreeMap<TableId, Vec<FilterPredicate>>) -> Query {
    Query::new(
        vec![TableId(0), TableId(1)],
        vec![JoinPredicate::new(
            ColumnRef::new(TableId(0), ColumnId(0)),
            ColumnRef::new(TableId(1), ColumnId(1)),
        )],
        filters,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join cardinality is symmetric in the input order.
    #[test]
    fn join_commutes(
        a_vals in proptest::collection::vec(0i64..100, 16),
        fk in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let db = build_db(a_vals, fk);
        let exec = Executor::new(&db);
        let q = join_query(BTreeMap::new());
        let ab = exec
            .execute_plan(&q, &PlanNode::left_deep(&[TableId(0), TableId(1)]).unwrap())
            .unwrap();
        let ba = exec
            .execute_plan(&q, &PlanNode::left_deep(&[TableId(1), TableId(0)]).unwrap())
            .unwrap();
        prop_assert_eq!(ab.output_cardinality, ba.output_cardinality);
    }

    /// An unfiltered PK-FK join binds every FK row exactly once (every FK
    /// value lands in the PK domain by construction).
    #[test]
    fn pk_fk_join_preserves_fk_side(
        a_vals in proptest::collection::vec(0i64..100, 16),
        fk in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let n = fk.len() as u64;
        let db = build_db(a_vals, fk);
        let exec = Executor::new(&db);
        let q = join_query(BTreeMap::new());
        prop_assert_eq!(exec.true_cardinality(&q).unwrap(), n);
    }

    /// Adding a filter never increases any cardinality (monotonicity).
    #[test]
    fn filters_are_monotone(
        a_vals in proptest::collection::vec(0i64..100, 16),
        fk in proptest::collection::vec(any::<u8>(), 1..40),
        bound in 0i64..8,
    ) {
        let db = build_db(a_vals, fk);
        let exec = Executor::new(&db);
        let unfiltered = exec.true_cardinality(&join_query(BTreeMap::new())).unwrap();
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Lt,
                value: Value::Int(bound),
            }],
        );
        let filtered = exec.true_cardinality(&join_query(filters)).unwrap();
        prop_assert!(filtered <= unfiltered);
    }

    /// Conjunctive filter evaluation equals the intersection of the
    /// individual predicate selections.
    #[test]
    fn conjunction_is_intersection(
        a_vals in proptest::collection::vec(0i64..100, 16),
        b1 in 0i64..8,
        b2 in 0i64..8,
    ) {
        let db = build_db(a_vals, vec![0]);
        let table = db.table(TableId(0)).unwrap();
        let p1 = FilterPredicate::Cmp {
            column: ColumnId(1),
            op: CmpOp::Ge,
            value: Value::Int(b1),
        };
        let p2 = FilterPredicate::Cmp {
            column: ColumnId(1),
            op: CmpOp::Le,
            value: Value::Int(b2),
        };
        let both = evaluate_filters(table, &[p1.clone(), p2.clone()]).unwrap();
        let s1 = evaluate_filters(table, &[p1]).unwrap();
        let s2 = evaluate_filters(table, &[p2]).unwrap();
        let expected: Vec<u32> = s1.iter().copied().filter(|r| s2.contains(r)).collect();
        prop_assert_eq!(both, expected);
    }

    /// Subset cardinalities agree with direct execution for the full set.
    #[test]
    fn subset_oracle_consistent(
        a_vals in proptest::collection::vec(0i64..100, 16),
        fk in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let db = build_db(a_vals, fk);
        let exec = Executor::new(&db);
        let q = join_query(BTreeMap::new());
        let cards = exec.subset_cardinalities(&q).unwrap();
        let direct = exec.true_cardinality(&q).unwrap();
        prop_assert_eq!(cards[&0b11], direct);
    }
}

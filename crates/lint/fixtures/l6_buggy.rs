//! Lint fixture (buggy, L6): an unbounded channel constructed in a file
//! outside the reviewed allowlist. A slow consumer lets the queue grow
//! without backpressure until memory is exhausted.
use std::sync::mpsc;
use std::thread;

pub fn start() -> mpsc::Sender<u64> {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let mut acc = 0u64;
        while let Ok(v) = rx.recv() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    tx
}

//! Lint fixture (clean, G1): the same pair of locks as `g1_buggy.rs`, but
//! every function acquires them in the same global order (`a` before `b`),
//! so the lock-acquisition graph is acyclic and no deadlock is possible.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn sum(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }

    pub fn diff(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga - *gb
    }
}

//! Lint fixture (clean, L5): the same hot-path computation written as a
//! streaming fold — no heap allocation, so the `lint: hot-path` marker is
//! satisfied. A second unmarked function may allocate freely.

// lint: hot-path
pub fn sum_squares(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x * x;
    }
    acc
}

pub fn collect_squares(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| x * x).collect()
}

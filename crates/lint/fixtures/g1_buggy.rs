//! Lint fixture (buggy, G1): two functions acquire the same pair of locks
//! in opposite orders. Running `ab` and `ba` concurrently can deadlock:
//! each thread holds one lock and waits forever for the other.
//!
//! Fed to the analyzer under a synthetic `crates/core/src/` path by
//! `crates/lint/tests/fixtures.rs`; never compiled into the workspace.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        *ga - *gb
    }
}

//! Lint fixture (buggy, G2): a blocking `recv()` runs while a mutex guard
//! is live. If the sender needs the same lock to make progress, the system
//! deadlocks; even when it does not, the lock is held for an unbounded time.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Inbox {
    state: Mutex<u64>,
    rx: Receiver<u64>,
}

impl Inbox {
    pub fn drain_locked(&self) -> u64 {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while let Ok(v) = self.rx.recv() {
            *g += v;
        }
        *g
    }
}

//! Lint fixture (clean, G2): the guard is scoped to a block and dropped
//! before the blocking `recv()` loop starts, so no lock is held across a
//! blocking call.
use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Inbox {
    state: Mutex<u64>,
    rx: Receiver<u64>,
}

impl Inbox {
    pub fn drain_unlocked(&self) -> u64 {
        let start = {
            let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
            *g
        };
        let mut acc = start;
        while let Ok(v) = self.rx.recv() {
            acc += v;
        }
        acc
    }
}

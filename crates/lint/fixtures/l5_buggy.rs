//! Lint fixture (buggy, L5): a function marked `lint: hot-path` allocates a
//! fresh `Vec` on every call via `collect()`, defeating the zero-allocation
//! contract of the hot region.

// lint: hot-path
pub fn sum_squares(xs: &[f64]) -> f64 {
    let squares: Vec<f64> = xs.iter().map(|x| x * x).collect();
    squares.iter().sum()
}

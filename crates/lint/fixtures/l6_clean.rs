//! Lint fixture (clean, L6): a bounded channel — producers block (apply
//! backpressure) once the queue holds 64 in-flight items, so queue depth
//! cannot grow without bound.
use std::sync::mpsc;
use std::thread;

pub fn start() -> mpsc::SyncSender<u64> {
    let (tx, rx) = mpsc::sync_channel(64);
    thread::spawn(move || {
        let mut acc = 0u64;
        while let Ok(v) = rx.recv() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    tx
}

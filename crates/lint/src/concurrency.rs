//! Whole-program concurrency passes over the [`crate::ir`] view.
//!
//! | rule | name                | invariant |
//! |------|---------------------|-----------|
//! | G1   | `lock-cycle`        | the global lock-acquisition graph (edge `A → B` when `B` is acquired while a guard on `A` is live, interprocedurally to [`CALL_DEPTH`]) is acyclic, and no lock is re-acquired while already held |
//! | G2   | `block-under-guard` | no blocking operation (`recv` / `recv_timeout` / no-arg `join` / `sleep` / `send` on a known-bounded channel) while any lock guard is live, interprocedurally to [`CALL_DEPTH`] |
//! | L5   | `hot-path`          | functions marked `// lint: hot-path` perform no heap allocation (`Vec::new`, `Box::new`, `.clone()`, `.to_vec()`, `vec!`, …) |
//! | L6   | `unbounded-channel` | no unbounded-channel construction outside [`UNBOUNDED_ALLOWLIST`] |
//!
//! Soundness trade-offs (full discussion in DESIGN.md §13):
//!
//! * Call edges resolve by *bare name* against every workspace function of
//!   that name — an over-approximation. Method calls whose names are too
//!   generic to resolve meaningfully (`get`, `insert`, `new`, …) are
//!   excluded from interprocedural propagation ([`METHOD_BLOCKLIST`]), an
//!   under-approximation in the other direction; direct (same-function)
//!   acquisitions are always seen.
//! * Lock identity unifies by field name across types (`self.cache` in two
//!   different structs is one graph node). This can manufacture cycles
//!   that no single runtime object participates in; the escape hatch and
//!   per-rule baseline absorb deliberate cases.
//! * `send` is only considered blocking when the sender variable was bound
//!   from a bounded-channel constructor in the same file. Senders passed
//!   across functions are not tracked (under-approximation).
//! * L5 checks direct allocations only; a hot function calling a cold
//!   allocating helper is not flagged.

use crate::ir::{CallSite, EventKind, FileIr};
use crate::rules::{Allowed, Violation};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Maximum interprocedural propagation depth for G1/G2 (direct = depth 0).
pub const CALL_DEPTH: usize = 3;

/// Callee names too generic to resolve by bare name (see module docs).
/// Applies to method *and* path calls: `Foo::new` or `PlanId::from`
/// resolving to every workspace `new`/`from` drowns real findings.
/// `send`/`recv`-family names are here because channel blocking is modeled
/// as direct [`EventKind`]s, not through call resolution.
pub const CALL_BLOCKLIST: &[&str] = &[
    "new", "default", "clone", "next", "iter", "into_iter", "get", "insert",
    "remove", "len", "is_empty", "push", "pop", "clear", "extend", "drain",
    "contains", "contains_key", "entry", "or_default", "or_insert", "map",
    "and_then", "unwrap_or", "unwrap_or_else", "expect", "unwrap", "fmt",
    "eq", "cmp", "hash", "from", "into", "as_ref", "as_mut", "to_vec",
    "to_string", "write_str", "index", "min", "max", "abs", "get_or_init",
    "send", "recv", "try_send", "try_recv", "recv_timeout", "drop", "run",
    "spawn", "join", "sleep", "write", "read", "lock", "value", "build",
    "with", "call", "apply", "update", "add", "sub", "mul", "div", "scale",
];

/// Files permitted to construct unbounded channels, with the reason.
/// Everything else needs `// lint: allow(unbounded-channel)` or a fix.
pub const UNBOUNDED_ALLOWLIST: &[(&str, &str)] = &[(
    "crates/nn/src/kernel.rs",
    "global GEMM job queue: outstanding jobs are bounded by the chunk count \
     of in-flight matmuls, and the submitting thread steals work from the \
     same queue, so depth cannot grow unboundedly",
)];

/// Where a transitively-reached fact came from, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Provenance {
    /// Hop count (0 = in this function).
    depth: usize,
    /// Human-readable chain, e.g. "via `flush` → acquired in `push_msg` (file:12)".
    desc: String,
}

/// One fn flattened into the global index.
struct FnEntry<'a> {
    file: &'a str,
    f: &'a crate::ir::FnIr,
    bounded: &'a HashSet<String>,
}

/// Lock-acquisition and blocking-operation summaries per function,
/// propagated [`CALL_DEPTH`] hops along the (name-resolved) call graph.
struct Summaries {
    /// fn idx → lock name → provenance of the shallowest acquisition.
    locks: Vec<BTreeMap<String, Provenance>>,
    /// fn idx → blocking-op label → provenance.
    blocking: Vec<BTreeMap<String, Provenance>>,
}

/// Candidate fns for a call site. When the calling file itself defines a
/// fn of that name, resolution is restricted to those — the local
/// definition is almost always the intended target, and cross-file
/// same-name matches are the main false-positive source.
fn resolvable(
    call: &CallSite,
    caller: usize,
    fns: &[FnEntry<'_>],
    index: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    if CALL_BLOCKLIST.contains(&call.callee.as_str()) {
        return Vec::new();
    }
    let all = match index.get(call.callee.as_str()) {
        Some(all) => all,
        None => return Vec::new(),
    };
    // The caller itself never adds facts (its direct events are already in
    // its own summary), and a same-name method on another type (e.g.
    // `Matrix::matmul` called inside `Var::matmul`) must not be shadowed
    // by it.
    let others: Vec<usize> = all.iter().copied().filter(|&i| i != caller).collect();
    let local: Vec<usize> = others
        .iter()
        .copied()
        .filter(|&i| fns[i].file == fns[caller].file)
        .collect();
    if local.is_empty() {
        others
    } else {
        local
    }
}

fn blocking_label(kind: &EventKind, bounded: &HashSet<String>) -> Option<String> {
    match kind {
        EventKind::Recv => Some("recv()".to_string()),
        EventKind::RecvTimeout => Some("recv_timeout()".to_string()),
        EventKind::Join => Some("join()".to_string()),
        EventKind::Sleep => Some("sleep()".to_string()),
        EventKind::Send { sender } if bounded.contains(sender) => {
            Some(format!("send() on bounded channel `{sender}`"))
        }
        _ => None,
    }
}

fn build_summaries(fns: &[FnEntry<'_>], index: &HashMap<&str, Vec<usize>>) -> Summaries {
    let guard_fns: HashSet<&str> = fns
        .iter()
        .filter(|e| e.f.returns_guard)
        .map(|e| e.f.name.as_str())
        .collect();

    // Depth 0: direct facts.
    let mut locks: Vec<BTreeMap<String, Provenance>> = Vec::with_capacity(fns.len());
    let mut blocking: Vec<BTreeMap<String, Provenance>> = Vec::with_capacity(fns.len());
    for e in fns {
        let mut l = BTreeMap::new();
        let mut b = BTreeMap::new();
        for ev in &e.f.events {
            if let EventKind::LockAcquire { lock, .. } = &ev.kind {
                l.entry(lock.clone()).or_insert(Provenance {
                    depth: 0,
                    desc: format!("acquired in `{}` ({}:{})", e.f.name, e.file, ev.line),
                });
            }
            if let Some(label) = blocking_label(&ev.kind, e.bounded) {
                b.entry(label.clone()).or_insert(Provenance {
                    depth: 0,
                    desc: format!("`{label}` in `{}` ({}:{})", e.f.name, e.file, ev.line),
                });
            }
        }
        // A call to a guard-returning wrapper is itself an acquisition.
        for c in &e.f.calls {
            if guard_fns.contains(c.callee.as_str()) {
                if let Some(lock) = &c.arg_lock {
                    l.entry(lock.clone()).or_insert(Provenance {
                        depth: 0,
                        desc: format!(
                            "acquired via `{}` in `{}` ({}:{})",
                            c.callee, e.f.name, e.file, c.line
                        ),
                    });
                }
            }
        }
        locks.push(l);
        blocking.push(b);
    }

    // Propagate along call edges, CALL_DEPTH hops.
    for _ in 0..CALL_DEPTH {
        let mut next_locks = locks.clone();
        let mut next_blocking = blocking.clone();
        for (i, e) in fns.iter().enumerate() {
            for c in &e.f.calls {
                for callee in resolvable(c, i, fns, index) {
                    for (lock, prov) in &locks[callee] {
                        if prov.depth + 1 > CALL_DEPTH {
                            continue;
                        }
                        let cand = Provenance {
                            depth: prov.depth + 1,
                            desc: format!(
                                "via `{}` ({}:{}): {}",
                                c.callee, e.file, c.line, prov.desc
                            ),
                        };
                        let slot = next_locks[i].entry(lock.clone()).or_insert(cand.clone());
                        if cand.depth < slot.depth {
                            *slot = cand;
                        }
                    }
                    for (label, prov) in &blocking[callee] {
                        if prov.depth + 1 > CALL_DEPTH {
                            continue;
                        }
                        let cand = Provenance {
                            depth: prov.depth + 1,
                            desc: format!(
                                "via `{}` ({}:{}): {}",
                                c.callee, e.file, c.line, prov.desc
                            ),
                        };
                        let slot = next_blocking[i]
                            .entry(label.clone())
                            .or_insert(cand.clone());
                        if cand.depth < slot.depth {
                            *slot = cand;
                        }
                    }
                }
            }
        }
        locks = next_locks;
        blocking = next_blocking;
    }
    Summaries { locks, blocking }
}

/// A lock-order edge with its first witness.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    desc: String,
}

/// Runs G1/G2/L5/L6 over the extracted IRs. `is_allowed(file, line, rule)`
/// consults the per-file escape-hatch directives. Findings land in
/// `violations` (or `allowed` when escaped / allowlisted); the caller
/// routes bench-crate findings to the advisory section.
pub fn check_concurrency(
    irs: &[FileIr],
    is_allowed: &dyn Fn(&str, u32, &str) -> bool,
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Allowed>,
) {
    // Flatten fns and build the name index.
    let mut fns: Vec<FnEntry<'_>> = Vec::new();
    for ir in irs {
        for f in &ir.fns {
            fns.push(FnEntry {
                file: &ir.file,
                f,
                bounded: &ir.bounded_senders,
            });
        }
    }
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, e) in fns.iter().enumerate() {
        index.entry(e.f.name.as_str()).or_default().push(i);
    }
    let guard_fns: HashSet<&str> = fns
        .iter()
        .filter(|e| e.f.returns_guard)
        .map(|e| e.f.name.as_str())
        .collect();
    let summaries = build_summaries(&fns, &index);

    let push = |violations: &mut Vec<Violation>,
                    allowed: &mut Vec<Allowed>,
                    rule: &'static str,
                    rule_name: &str,
                    file: &str,
                    line: u32,
                    message: String| {
        let v = Violation {
            rule,
            file: file.to_string(),
            line,
            message,
        };
        if is_allowed(file, line, rule_name) {
            allowed.push(v);
        } else {
            violations.push(v);
        }
    };

    // ---- gather guard live ranges and scan them (G1 edges + G2) -------
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    // One interprocedural G2 per (file, call line, lock): a call can reach
    // several blocking ops through several candidate callees, but the
    // actionable unit is the call site itself.
    let mut g2_seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (ei, e) in fns.iter().enumerate() {
        // Guard sites: direct acquisitions + guard-returning wrapper calls.
        let mut guard_sites: Vec<(String, usize, usize, u32, bool)> = Vec::new(); // (lock, start, until, line, bound)
        for ev in &e.f.events {
            if let EventKind::LockAcquire { lock, until, bound } = &ev.kind {
                guard_sites.push((lock.clone(), ev.tok, *until, ev.line, *bound));
            }
        }
        for c in &e.f.calls {
            if guard_fns.contains(c.callee.as_str()) {
                if let Some(lock) = &c.arg_lock {
                    guard_sites.push((lock.clone(), c.tok, c.until, c.line, true));
                }
            }
        }

        for (lock, start, until, gline, bound) in &guard_sites {
            // Direct acquisitions inside the live range.
            for ev in &e.f.events {
                if ev.tok <= *start || ev.tok >= *until {
                    continue;
                }
                match &ev.kind {
                    EventKind::LockAcquire { lock: inner, .. } => {
                        if inner == lock {
                            if *bound {
                                push(
                                    violations,
                                    allowed,
                                    "G1",
                                    "lock-cycle",
                                    e.file,
                                    ev.line,
                                    format!(
                                        "lock `{lock}` re-acquired while the guard taken on \
                                         line {gline} is still live (std locks are not \
                                         reentrant; this self-deadlocks)"
                                    ),
                                );
                            }
                        } else {
                            edges
                                .entry((lock.clone(), inner.clone()))
                                .or_insert_with(|| Edge {
                                    from: lock.clone(),
                                    to: inner.clone(),
                                    file: e.file.to_string(),
                                    line: ev.line,
                                    desc: format!(
                                        "`{inner}` acquired on line {} of `{}` while the \
                                         guard on `{lock}` (line {gline}) is live",
                                        ev.line, e.f.name
                                    ),
                                });
                        }
                    }
                    kind => {
                        // G2: direct blocking op under guard.
                        if let Some(label) = blocking_label(kind, e.bounded) {
                            push(
                                violations,
                                allowed,
                                "G2",
                                "block-under-guard",
                                e.file,
                                ev.line,
                                format!(
                                    "blocking `{label}` while the guard on `{lock}` \
                                     (line {gline}) is live; release the guard before \
                                     blocking or use a try_/deadline variant"
                                ),
                            );
                        }
                    }
                }
            }
            // Calls inside the live range: pull callee summaries.
            for c in &e.f.calls {
                if c.tok <= *start || c.tok >= *until {
                    continue;
                }
                // Wrapper-call acquisitions are already guard sites; still
                // record the ordering edge from the outer lock.
                if guard_fns.contains(c.callee.as_str()) {
                    if let Some(inner) = &c.arg_lock {
                        if inner != lock {
                            edges
                                .entry((lock.clone(), inner.clone()))
                                .or_insert_with(|| Edge {
                                    from: lock.clone(),
                                    to: inner.clone(),
                                    file: e.file.to_string(),
                                    line: c.line,
                                    desc: format!(
                                        "`{inner}` acquired via `{}` on line {} while the \
                                         guard on `{lock}` (line {gline}) is live",
                                        c.callee, c.line
                                    ),
                                });
                        }
                    }
                }
                for callee in resolvable(c, ei, &fns, &index) {
                    for (inner, prov) in &summaries.locks[callee] {
                        if inner == lock {
                            continue; // re-entry through calls is too
                                      // imprecise to report (same-name
                                      // unification would dominate)
                        }
                        edges
                            .entry((lock.clone(), inner.clone()))
                            .or_insert_with(|| Edge {
                                from: lock.clone(),
                                to: inner.clone(),
                                file: e.file.to_string(),
                                line: c.line,
                                desc: format!(
                                    "call to `{}` on line {} can acquire `{inner}` \
                                     ({}) while the guard on `{lock}` (line {gline}) \
                                     is live",
                                    c.callee, c.line, prov.desc
                                ),
                            });
                    }
                    for (_label, prov) in &summaries.blocking[callee] {
                        if !g2_seen.insert((e.file.to_string(), c.line, lock.clone())) {
                            continue;
                        }
                        push(
                            violations,
                            allowed,
                            "G2",
                            "block-under-guard",
                            e.file,
                            c.line,
                            format!(
                                "call to `{}` can block ({}) while the guard on \
                                 `{lock}` (line {gline}) is live",
                                c.callee, prov.desc
                            ),
                        );
                    }
                }
            }
        }

        // ---- L5: hot-path allocations --------------------------------
        if e.f.hot {
            for ev in &e.f.events {
                if let EventKind::Alloc { what } = &ev.kind {
                    push(
                        violations,
                        allowed,
                        "L5",
                        "hot-path",
                        e.file,
                        ev.line,
                        format!(
                            "`{what}` allocates inside hot-path function `{}`; use a \
                             preallocated buffer or arena (escape hatch: \
                             `// lint: allow(hot-path)`)",
                            e.f.name
                        ),
                    );
                }
            }
        }

        // ---- L6: unbounded channels ----------------------------------
        for ev in &e.f.events {
            if matches!(ev.kind, EventKind::ChannelUnbounded) {
                let allowlisted = UNBOUNDED_ALLOWLIST
                    .iter()
                    .find(|(file, _)| *file == e.file);
                let v = Violation {
                    rule: "L6",
                    file: e.file.to_string(),
                    line: ev.line,
                    message: match allowlisted {
                        Some((_, reason)) => format!(
                            "unbounded channel in allowlisted file (`{}`): {reason}",
                            e.file
                        ),
                        None => format!(
                            "unbounded channel constructed in `{}`; use a bounded \
                             channel for backpressure or add the file to the L6 \
                             allowlist with a justification",
                            e.f.name
                        ),
                    },
                };
                if allowlisted.is_some() || is_allowed(e.file, ev.line, "unbounded-channel") {
                    allowed.push(v);
                } else {
                    violations.push(v);
                }
            }
        }
    }

    // ---- G1: cycles in the lock graph ---------------------------------
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for edge in edges.values() {
        if reaches(&edge.to, &edge.from) {
            push(
                violations,
                allowed,
                "G1",
                "lock-cycle",
                &edge.file,
                edge.line,
                format!(
                    "lock-order cycle: edge `{}` → `{}` closes a cycle back to \
                     `{}` ({}); pick one global order for these locks",
                    edge.from, edge.to, edge.from, edge.desc
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::extract;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileScope};

    fn run(files: &[(&str, &str)]) -> (Vec<Violation>, Vec<Allowed>) {
        let mut irs = Vec::new();
        let mut lexed_by_file = std::collections::HashMap::new();
        for (path, src) in files {
            let lexed = lex(src);
            let mask = test_mask(&lexed.toks);
            irs.push(extract(path, &FileScope::of(path), &lexed, &mask));
            lexed_by_file.insert(path.to_string(), lexed);
        }
        let is_allowed = |file: &str, line: u32, rule: &str| {
            lexed_by_file
                .get(file)
                .is_some_and(|l| l.is_allowed(line, rule))
        };
        let (mut v, mut a) = (Vec::new(), Vec::new());
        check_concurrency(&irs, &is_allowed, &mut v, &mut a);
        (v, a)
    }

    #[test]
    fn g1_two_file_cycle_is_detected() {
        let a = r#"
            fn forward(&self) {
                let g = self.tape.lock().unwrap();
                let c = self.cache.lock().unwrap();
            }
        "#;
        let b = r#"
            fn evict(&self) {
                let c = self.cache.lock().unwrap();
                let g = self.tape.lock().unwrap();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", a), ("crates/core/src/b.rs", b)]);
        let g1: Vec<_> = v.iter().filter(|v| v.rule == "G1").collect();
        assert_eq!(g1.len(), 2, "both edges of the cycle: {v:?}");
    }

    #[test]
    fn g1_consistent_order_is_clean() {
        let a = r#"
            fn one(&self) {
                let g = self.tape.lock().unwrap();
                let c = self.cache.lock().unwrap();
            }
            fn two(&self) {
                let g = self.tape.lock().unwrap();
                let c = self.cache.lock().unwrap();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", a)]);
        assert!(v.iter().all(|v| v.rule != "G1"), "{v:?}");
    }

    #[test]
    fn g1_interprocedural_cycle_through_helper() {
        let a = r#"
            fn outer(&self) {
                let g = self.tape.lock().unwrap();
                self.helper_locks_cache();
            }
            fn helper_locks_cache(&self) {
                let c = self.cache.lock().unwrap();
            }
            fn reverse(&self) {
                let c = self.cache.lock().unwrap();
                let g = self.tape.lock().unwrap();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", a)]);
        assert!(
            v.iter().any(|v| v.rule == "G1" && v.message.contains("helper_locks_cache")
                || v.rule == "G1"),
            "cycle through the helper call must be found: {v:?}"
        );
        assert!(v.iter().filter(|v| v.rule == "G1").count() >= 2);
    }

    #[test]
    fn g1_self_reacquire_is_flagged() {
        let src = r#"
            fn f(&self) {
                let g = self.state.lock().unwrap();
                let h = self.state.lock().unwrap();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(
            v.iter().any(|v| v.rule == "G1" && v.message.contains("re-acquired")),
            "{v:?}"
        );
    }

    #[test]
    fn g2_recv_under_guard() {
        let src = r#"
            fn f(&self) {
                let g = self.peers.lock().unwrap();
                let msg = self.rx.recv();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(v.iter().any(|v| v.rule == "G2"), "{v:?}");
    }

    #[test]
    fn g2_recv_after_guard_scope_is_clean() {
        let src = r#"
            fn f(&self) {
                {
                    let g = self.peers.lock().unwrap();
                }
                let msg = self.rx.recv();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "G2"), "{v:?}");
    }

    #[test]
    fn g2_bounded_send_under_guard_and_unbounded_send_clean() {
        let src = r#"
            fn f(&self) {
                let (tx, rx) = bounded(1);
                let g = self.peers.lock().unwrap();
                tx.send(1);
            }
            fn ok(&self, utx: &Sender<u8>) {
                let g = self.peers.lock().unwrap();
                utx.send(1);
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        let g2: Vec<_> = v.iter().filter(|v| v.rule == "G2").collect();
        assert_eq!(g2.len(), 1, "only the known-bounded send blocks: {v:?}");
    }

    #[test]
    fn g2_interprocedural_blocking_callee() {
        let src = r#"
            fn waits(&self) {
                let x = self.rx.recv();
            }
            fn f(&self) {
                let g = self.peers.lock().unwrap();
                self.waits();
            }
        "#;
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(
            v.iter().any(|v| v.rule == "G2" && v.message.contains("waits")),
            "{v:?}"
        );
    }

    #[test]
    fn g2_escape_hatch_reclassifies() {
        let src = "fn f(&self) {\n let g = self.m.lock().unwrap();\n let x = self.rx.recv(); // lint: allow(block-under-guard)\n }";
        let (v, a) = run(&[("crates/core/src/a.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "G2"), "{v:?}");
        assert!(a.iter().any(|a| a.rule == "G2"));
    }

    #[test]
    fn l5_flags_allocs_only_in_hot_fns() {
        let src = r#"
            // lint: hot-path
            fn hot(&self) {
                let v = Vec::new();
            }
            fn cold(&self) {
                let v = Vec::new();
            }
        "#;
        let (v, _) = run(&[("crates/nn/src/a.rs", src)]);
        let l5: Vec<_> = v.iter().filter(|v| v.rule == "L5").collect();
        assert_eq!(l5.len(), 1, "{v:?}");
        assert!(l5[0].message.contains("hot"));
    }

    #[test]
    fn l6_unbounded_flagged_allowlist_and_hatch_reclassify() {
        let src = "fn f() { let (tx, rx) = unbounded(); }";
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(v.iter().any(|v| v.rule == "L6"), "{v:?}");
        // Allowlisted file: recorded as allowed, not a violation.
        let (v, a) = run(&[("crates/nn/src/kernel.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "L6"), "{v:?}");
        assert!(a.iter().any(|a| a.rule == "L6"));
        let hatched = "fn f() { let (tx, rx) = unbounded(); // lint: allow(unbounded-channel)\n }";
        let (v, a) = run(&[("crates/core/src/a.rs", hatched)]);
        assert!(v.iter().all(|v| v.rule != "L6"));
        assert!(a.iter().any(|a| a.rule == "L6"));
    }

    #[test]
    fn bounded_channel_is_clean_for_l6() {
        let src = "fn f() { let (tx, rx) = bounded(8); }";
        let (v, _) = run(&[("crates/core/src/a.rs", src)]);
        assert!(v.iter().all(|v| v.rule != "L6"), "{v:?}");
    }
}

//! A brute-force bounded-interleaving model checker for the serving path.
//!
//! `loom`-style, hand-rolled: a model is a small deterministic state
//! machine with N logical threads; [`explore`] enumerates **every**
//! interleaving of their atomic steps by depth-first search over cloned
//! states, checking invariants after each step and at the end of each
//! complete execution, and flagging deadlocks (no thread can run, yet not
//! all are done).
//!
//! Atomicity granularity is the point: the real code's mutex-protected
//! operations (one `LruShard` op under its shard lock; one channel
//! send/recv) are modeled as single atomic steps, so the schedules explored
//! here are exactly the linearizations the real locks permit.
//!
//! Four models mirror the serving path:
//!
//! * [`CacheModel`] — the intrusive doubly-linked LRU of
//!   `mtmlf::cache::ShardedLruCache`, op for op (get with recency bump,
//!   insert with tail eviction, slab free-list reuse), with structural
//!   integrity and oracle-consistency invariants.
//! * [`ServiceModel`] — `mtmlf::serve::PlannerService` submit/shutdown:
//!   clients submit jobs to a queue, a worker drains and replies, shutdown
//!   closes the queue then joins. Invariants: every submitted request gets
//!   exactly one reply (no lost responses, no double-completion) and no
//!   schedule deadlocks — including shutdown racing in-flight requests.
//! * [`BreakerModel`] — `mtmlf::resilience::CircuitBreaker`
//!   acquire/report transition for transition, with a clock thread ticking
//!   the cool-down. Invariants: a probe flag only ever flies in the
//!   half-open state, a cooled-down open breaker always yields a probe
//!   (no stuck-open), and no probe admission is left unresolved at the end
//!   of any schedule (no lost half-open probe).
//! * [`RouterModel`] — `mtmlf::cluster::ClusterService` routing: clients
//!   dispatch to their key's primary replica and walk the candidate list on
//!   transient failure while a killer thread kills and revives replicas —
//!   including mid-flight, after dispatch but before the replica answers.
//!   Invariants: every request gets exactly one reply (a success from a
//!   live candidate or an explicit all-candidates-down error — never
//!   silence), no double completion, and no schedule deadlocks.
//! * [`SwapModel`] — `mtmlf::lifecycle::ModelSlot` hot swap under load:
//!   clients submit requests a worker serves by reading the slot's
//!   (model, version) pair while a swapper thread swaps and rolls back the
//!   active model. Invariants: every request gets exactly one reply, no
//!   request is dropped by a swap, and every reply was produced by a
//!   consistent pair — never a half-swapped model (one half read before a
//!   swap, the other after).
//!
//! Deliberate-bug variants (gated behind test-only constructors) prove the
//! checker actually catches lost replies, double completions, and
//! deadlocks.

use std::collections::VecDeque;

/// A model explorable by [`explore`]: N logical threads over shared state.
pub trait Interleave: Clone {
    /// Number of logical threads.
    fn threads(&self) -> usize;
    /// Whether thread `t` has run to completion.
    fn done(&self, t: usize) -> bool;
    /// Whether thread `t` can take a step now (a blocked thread waits).
    fn enabled(&self, t: usize) -> bool;
    /// Applies one atomic step of thread `t`; returns a violation message
    /// if a per-step invariant breaks.
    fn step(&mut self, t: usize) -> Result<(), String>;
    /// End-of-execution invariants (all threads done).
    fn check_complete(&self) -> Result<(), String>;
}

/// Statistics from an exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Complete executions (distinct schedules) explored.
    pub schedules: u64,
    /// Total atomic steps taken across all executions.
    pub steps: u64,
}

/// A schedule that broke an invariant, with the step trace that got there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// What broke.
    pub message: String,
    /// Thread ids in execution order up to the violation.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule {:?})", self.message, self.schedule)
    }
}

/// Exhaustively explores every interleaving of `model`'s threads.
///
/// `limit` bounds the total number of steps (across all branches) as a
/// runaway guard; exceeding it is reported as a violation rather than
/// silently truncating coverage.
pub fn explore<M: Interleave>(model: &M, limit: u64) -> Result<Exploration, ModelViolation> {
    let mut stats = Exploration {
        schedules: 0,
        steps: 0,
    };
    let mut trace = Vec::new();
    dfs(model, &mut stats, &mut trace, limit)?;
    Ok(stats)
}

fn dfs<M: Interleave>(
    model: &M,
    stats: &mut Exploration,
    trace: &mut Vec<usize>,
    limit: u64,
) -> Result<(), ModelViolation> {
    let n = model.threads();
    let all_done = (0..n).all(|t| model.done(t));
    if all_done {
        stats.schedules += 1;
        return model.check_complete().map_err(|message| ModelViolation {
            message,
            schedule: trace.clone(),
        });
    }
    let runnable: Vec<usize> = (0..n).filter(|&t| !model.done(t) && model.enabled(t)).collect();
    if runnable.is_empty() {
        return Err(ModelViolation {
            message: "deadlock: live threads exist but none can step".to_string(),
            schedule: trace.clone(),
        });
    }
    for t in runnable {
        if stats.steps >= limit {
            return Err(ModelViolation {
                message: format!("exploration exceeded step limit {limit}"),
                schedule: trace.clone(),
            });
        }
        stats.steps += 1;
        let mut next = model.clone();
        trace.push(t);
        if let Err(message) = next.step(t) {
            return Err(ModelViolation {
                message,
                schedule: trace.clone(),
            });
        }
        dfs(&next, stats, trace, limit)?;
        trace.pop();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------

/// One atomic cache operation (executed under the shard mutex in the real
/// code, hence one step here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// `cache.insert(key, value)`.
    Insert(u32, u32),
    /// `cache.get(&key)`.
    Get(u32),
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct ModelEntry {
    key: u32,
    value: u32,
    prev: usize,
    next: usize,
}

/// Mirror of one `LruShard`: intrusive doubly-linked LRU over a slab with
/// a free list, plus a linearization oracle (key → last inserted value).
#[derive(Debug, Clone)]
pub struct CacheModel {
    // -- the mirrored shard --
    map: Vec<(u32, usize)>, // sorted assoc (key → slab idx); tiny N
    entries: Vec<ModelEntry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    // -- the harness --
    scripts: Vec<Vec<CacheOp>>,
    pc: Vec<usize>,
    oracle: Vec<(u32, u32)>, // key → last value written, any-time truth
    // Deliberate-bug switch for checker self-tests: eviction forgets to
    // unmap the victim key, corrupting the map/list correspondence.
    bug_skip_evict_unmap: bool,
}

impl CacheModel {
    /// A model with one logical thread per script, sharing one shard of
    /// the given capacity.
    pub fn new(capacity: usize, scripts: Vec<Vec<CacheOp>>) -> Self {
        let n = scripts.len();
        Self {
            map: Vec::new(),
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            scripts,
            pc: vec![0; n],
            oracle: Vec::new(),
            bug_skip_evict_unmap: false,
        }
    }

    /// Buggy variant: eviction leaves the victim key in the map (must be
    /// caught by the structural-integrity invariant).
    pub fn with_broken_eviction(capacity: usize, scripts: Vec<Vec<CacheOp>>) -> Self {
        Self {
            bug_skip_evict_unmap: true,
            ..Self::new(capacity, scripts)
        }
    }

    fn map_get(&self, key: u32) -> Option<usize> {
        self.map.iter().find(|(k, _)| *k == key).map(|&(_, i)| i)
    }

    fn map_remove(&mut self, key: u32) {
        self.map.retain(|(k, _)| *k != key);
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn op_get(&mut self, key: u32) -> Option<u32> {
        let idx = self.map_get(key)?;
        self.detach(idx);
        self.push_front(idx);
        Some(self.entries[idx].value)
    }

    fn op_insert(&mut self, key: u32, value: u32) {
        if self.capacity == 0 {
            return;
        }
        if let Some(idx) = self.map_get(key) {
            self.entries[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            let old_key = self.entries[victim].key;
            if !self.bug_skip_evict_unmap {
                self.map_remove(old_key);
            }
            self.free.push(victim);
        }
        let entry = ModelEntry {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = entry;
                slot
            }
            None => {
                self.entries.push(entry);
                self.entries.len() - 1
            }
        };
        self.map.push((key, idx));
        self.push_front(idx);
    }

    /// Structural invariants of the intrusive list + map + slab.
    fn integrity(&self) -> Result<(), String> {
        if self.map.len() > self.capacity {
            return Err(format!(
                "capacity exceeded: {} entries, capacity {}",
                self.map.len(),
                self.capacity
            ));
        }
        // Walk head→tail; must visit exactly map.len() nodes, links sane.
        let mut seen = 0usize;
        let mut idx = self.head;
        let mut prev = NIL;
        while idx != NIL {
            if seen > self.entries.len() {
                return Err("cycle in LRU recency list".to_string());
            }
            let e = &self.entries[idx];
            if e.prev != prev {
                return Err(format!("broken prev link at slab index {idx}"));
            }
            if self.map_get(e.key) != Some(idx) {
                return Err(format!("listed entry for key {} not in map", e.key));
            }
            prev = idx;
            idx = e.next;
            seen += 1;
        }
        if prev != self.tail {
            return Err("tail does not terminate the recency list".to_string());
        }
        if seen != self.map.len() {
            return Err(format!(
                "map has {} entries but recency list has {seen}",
                self.map.len()
            ));
        }
        Ok(())
    }
}

impl Interleave for CacheModel {
    fn threads(&self) -> usize {
        self.scripts.len()
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t] >= self.scripts[t].len()
    }

    fn enabled(&self, _t: usize) -> bool {
        true // a mutex acquisition always eventually succeeds
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        let op = self.scripts[t][self.pc[t]];
        self.pc[t] += 1;
        match op {
            CacheOp::Insert(k, v) => {
                self.op_insert(k, v);
                if !self.oracle.iter().any(|&(ok, _)| ok == k) {
                    self.oracle.push((k, v));
                } else {
                    for slot in self.oracle.iter_mut() {
                        if slot.0 == k {
                            slot.1 = v;
                        }
                    }
                }
            }
            CacheOp::Get(k) => {
                let got = self.op_get(k);
                let truth = self.oracle.iter().find(|&&(ok, _)| ok == k).map(|&(_, v)| v);
                match (got, truth) {
                    // A miss is always legal (the key may have been
                    // evicted), but a hit must return the last value the
                    // linearized history wrote — never stale data.
                    (Some(v), Some(tv)) if v != tv => {
                        return Err(format!(
                            "stale read: get({k}) returned {v}, last insert wrote {tv}"
                        ));
                    }
                    (Some(v), None) => {
                        return Err(format!(
                            "phantom read: get({k}) returned {v} but {k} was never inserted"
                        ));
                    }
                    _ => {}
                }
            }
        }
        self.integrity()
    }

    fn check_complete(&self) -> Result<(), String> {
        self.integrity()
    }
}

// ---------------------------------------------------------------------
// Service model
// ---------------------------------------------------------------------

/// A reply as observed by a model client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reply {
    /// The worker planned the request.
    Planned,
    /// Submission was rejected because the service had shut down.
    Rejected,
}

/// Mirror of `PlannerService` submit/shutdown: `clients` submitter threads,
/// one worker draining a closable queue, and one shutdown thread that
/// closes the queue then joins the worker.
///
/// Thread layout: `0..clients` = clients, `clients` = worker,
/// `clients + 1` = shutdown.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    queue: VecDeque<usize>,
    closed: bool,
    replies: Vec<Option<Reply>>,
    client_pc: Vec<u8>, // 0 = submit, 1 = await reply, 2 = done
    worker_done: bool,
    shutdown_pc: u8, // 0 = close, 1 = join, 2 = done
    // Deliberate-bug switches for checker self-tests.
    bug_drop_queue_on_close: bool,
    bug_double_reply: bool,
}

impl ServiceModel {
    /// A correct model with `clients` client threads.
    pub fn new(clients: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            closed: false,
            replies: vec![None; clients],
            client_pc: vec![0; clients],
            worker_done: false,
            shutdown_pc: 0,
            bug_drop_queue_on_close: false,
            bug_double_reply: false,
        }
    }

    /// Buggy variant: the worker exits on close without draining the queue
    /// (drops queued responses — must be caught as a deadlocked client).
    pub fn with_lost_replies(clients: usize) -> Self {
        Self {
            bug_drop_queue_on_close: true,
            ..Self::new(clients)
        }
    }

    /// Buggy variant: the worker replies twice to the same request.
    pub fn with_double_reply(clients: usize) -> Self {
        Self {
            bug_double_reply: true,
            ..Self::new(clients)
        }
    }

    fn clients(&self) -> usize {
        self.replies.len()
    }

    fn worker_idx(&self) -> usize {
        self.clients()
    }

    fn deliver(&mut self, req: usize, reply: Reply) -> Result<(), String> {
        if self.replies[req].is_some() {
            return Err(format!("double completion: request {req} replied twice"));
        }
        self.replies[req] = Some(reply);
        Ok(())
    }
}

impl Interleave for ServiceModel {
    fn threads(&self) -> usize {
        self.clients() + 2
    }

    fn done(&self, t: usize) -> bool {
        if t < self.clients() {
            self.client_pc[t] == 2
        } else if t == self.worker_idx() {
            self.worker_done
        } else {
            self.shutdown_pc == 2
        }
    }

    fn enabled(&self, t: usize) -> bool {
        if t < self.clients() {
            match self.client_pc[t] {
                0 => true,                          // submit (or observe closed)
                1 => self.replies[t].is_some(),     // blocked on reply channel
                _ => false,
            }
        } else if t == self.worker_idx() {
            // `recv` wakes on a queued job or on channel close.
            !self.queue.is_empty() || self.closed
        } else {
            match self.shutdown_pc {
                0 => true,             // close the channel
                1 => self.worker_done, // join blocks until the worker exits
                _ => false,
            }
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t < self.clients() {
            match self.client_pc[t] {
                0 => {
                    // PlannerService::plan — send fails after shutdown and
                    // surfaces as an error response, never a hang.
                    if self.closed {
                        self.deliver(t, Reply::Rejected)?;
                    } else {
                        self.queue.push_back(t);
                    }
                    self.client_pc[t] = 1;
                }
                1 => {
                    // Reply observed; consume it.
                    self.client_pc[t] = 2;
                }
                _ => return Err(format!("client {t} stepped after completion")),
            }
            Ok(())
        } else if t == self.worker_idx() {
            // One `recv` iteration of worker_loop.
            if self.bug_drop_queue_on_close && self.closed {
                self.worker_done = true; // drops whatever is still queued
                return Ok(());
            }
            if let Some(req) = self.queue.pop_front() {
                self.deliver(req, Reply::Planned)?;
                if self.bug_double_reply {
                    self.deliver(req, Reply::Planned)?;
                }
            } else if self.closed {
                self.worker_done = true; // channel disconnected and drained
            }
            Ok(())
        } else {
            match self.shutdown_pc {
                0 => {
                    self.closed = true; // drop the Sender
                    self.shutdown_pc = 1;
                }
                1 => {
                    if !self.worker_done {
                        return Err("join completed before the worker exited".to_string());
                    }
                    self.shutdown_pc = 2;
                }
                _ => return Err("shutdown stepped after completion".to_string()),
            }
            Ok(())
        }
    }

    fn check_complete(&self) -> Result<(), String> {
        for (i, r) in self.replies.iter().enumerate() {
            if r.is_none() {
                return Err(format!("lost response: client {i} never got a reply"));
            }
        }
        if !self.queue.is_empty() {
            return Err(format!("{} jobs left in the queue at shutdown", self.queue.len()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Breaker model
// ---------------------------------------------------------------------

/// Breaker state, mirroring `mtmlf::resilience::BreakerState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPhase {
    /// Requests flow to the model path; failures are counted.
    Closed,
    /// The model path is short-circuited until the cool-down elapses.
    Open,
    /// One probe request is testing whether the model path recovered.
    HalfOpen,
}

/// What the model breaker told an acquiring client, mirroring
/// `mtmlf::resilience::Admission`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelAdmission {
    /// Closed: proceed to the model path.
    Admitted,
    /// Half-open: proceed as the single recovery probe.
    Probe,
    /// Open (or probe already in flight): degrade without the model.
    Rejected,
}

/// One scripted client attempt: whether the model path would fail if this
/// attempt reaches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// `true` → the client reports `on_failure` when admitted.
    pub fails: bool,
}

/// Mirror of `mtmlf::resilience::CircuitBreaker` under concurrent clients
/// and a ticking clock.
///
/// Each client attempt is two atomic steps, exactly the two lock
/// acquisitions in the real code: **acquire** (`try_acquire`) and
/// **report** (`on_success`/`on_failure`, or nothing when rejected). The
/// last thread is a clock that advances time by one cool-down per tick, so
/// schedules cover trips, cool-downs, probe races, and probe takeover.
///
/// Thread layout: `0..clients` = clients, `clients` = clock.
#[derive(Debug, Clone)]
pub struct BreakerModel {
    // -- the mirrored breaker (fields of BreakerInner) --
    state: BreakerPhase,
    consecutive_failures: u32,
    opened_at: u64,
    probe_in_flight: bool,
    probe_started: u64,
    threshold: u32,
    // -- the harness --
    now: u64, // ticks; cool-down is 1 tick
    scripts: Vec<Vec<Attempt>>,
    pc: Vec<usize>, // per client: step index (attempt*2 + phase)
    pending: Vec<Option<ModelAdmission>>,
    ticks_left: usize,
    // Deliberate-bug switches for checker self-tests.
    bug_lost_probe: bool,
    bug_stuck_open: bool,
}

const COOLDOWN_TICKS: u64 = 1;

impl BreakerModel {
    /// A correct model: one client thread per script plus a clock thread
    /// ticking `ticks` times.
    pub fn new(threshold: u32, scripts: Vec<Vec<Attempt>>, ticks: usize) -> Self {
        let n = scripts.len();
        Self {
            state: BreakerPhase::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            probe_in_flight: false,
            probe_started: 0,
            threshold,
            now: 0,
            scripts,
            pc: vec![0; n],
            pending: vec![None; n],
            ticks_left: ticks,
            bug_lost_probe: false,
            bug_stuck_open: false,
        }
    }

    /// Buggy variant: `on_success` closes the breaker but forgets to clear
    /// the probe-in-flight flag (must be caught as a probe flying outside
    /// the half-open state, or as a lost probe at completion).
    pub fn with_lost_probe(threshold: u32, scripts: Vec<Vec<Attempt>>, ticks: usize) -> Self {
        Self {
            bug_lost_probe: true,
            ..Self::new(threshold, scripts, ticks)
        }
    }

    /// Buggy variant: `try_acquire` ignores the cool-down and keeps
    /// rejecting forever once open (must be caught as stuck-open).
    pub fn with_stuck_open(threshold: u32, scripts: Vec<Vec<Attempt>>, ticks: usize) -> Self {
        Self {
            bug_stuck_open: true,
            ..Self::new(threshold, scripts, ticks)
        }
    }

    fn clock_idx(&self) -> usize {
        self.scripts.len()
    }

    /// Mirrors `CircuitBreaker::try_acquire`.
    fn try_acquire(&mut self) -> ModelAdmission {
        match self.state {
            BreakerPhase::Closed => ModelAdmission::Admitted,
            BreakerPhase::Open => {
                if self.bug_stuck_open {
                    return ModelAdmission::Rejected;
                }
                if self.now - self.opened_at >= COOLDOWN_TICKS {
                    self.state = BreakerPhase::HalfOpen;
                    self.probe_in_flight = true;
                    self.probe_started = self.now;
                    ModelAdmission::Probe
                } else {
                    ModelAdmission::Rejected
                }
            }
            BreakerPhase::HalfOpen => {
                if self.probe_in_flight && self.now - self.probe_started < COOLDOWN_TICKS {
                    ModelAdmission::Rejected
                } else {
                    // Probe takeover: the old probe's worker is presumed
                    // dead after a full cool-down with no verdict.
                    self.probe_in_flight = true;
                    self.probe_started = self.now;
                    ModelAdmission::Probe
                }
            }
        }
    }

    /// Mirrors `CircuitBreaker::on_success`.
    fn on_success(&mut self) {
        self.state = BreakerPhase::Closed;
        self.consecutive_failures = 0;
        if !self.bug_lost_probe {
            self.probe_in_flight = false;
        }
    }

    /// Mirrors `CircuitBreaker::on_failure`.
    fn on_failure(&mut self) {
        match self.state {
            BreakerPhase::HalfOpen => {
                self.state = BreakerPhase::Open;
                self.opened_at = self.now;
                self.probe_in_flight = false;
            }
            BreakerPhase::Closed => {
                self.consecutive_failures += 1;
                if self.threshold > 0 && self.consecutive_failures >= self.threshold {
                    self.state = BreakerPhase::Open;
                    self.opened_at = self.now;
                }
            }
            BreakerPhase::Open => {}
        }
    }

    /// Per-step invariant: the probe flag only flies half-open.
    fn probe_invariant(&self) -> Result<(), String> {
        if self.probe_in_flight && self.state != BreakerPhase::HalfOpen {
            return Err(format!(
                "probe in flight while breaker is {:?} (must be HalfOpen)",
                self.state
            ));
        }
        Ok(())
    }
}

impl Interleave for BreakerModel {
    fn threads(&self) -> usize {
        self.scripts.len() + 1
    }

    fn done(&self, t: usize) -> bool {
        if t < self.scripts.len() {
            self.pc[t] >= 2 * self.scripts[t].len()
        } else {
            self.ticks_left == 0
        }
    }

    fn enabled(&self, _t: usize) -> bool {
        true // acquire, report, and tick never block
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t == self.clock_idx() {
            self.now += COOLDOWN_TICKS;
            self.ticks_left -= 1;
            return self.probe_invariant();
        }
        let attempt = self.scripts[t][self.pc[t] / 2];
        if self.pc[t] % 2 == 0 {
            // Acquire phase.
            let was_open = self.state == BreakerPhase::Open;
            let cooled = self.now - self.opened_at >= COOLDOWN_TICKS;
            let admission = self.try_acquire();
            if was_open && cooled && admission == ModelAdmission::Rejected {
                return Err(
                    "stuck open: cooled-down breaker rejected instead of probing".to_string(),
                );
            }
            self.pending[t] = Some(admission);
        } else {
            // Report phase: rejected attempts bypass the breaker entirely
            // (the real code degrades them to the fallback).
            match self.pending[t].take() {
                Some(ModelAdmission::Admitted) | Some(ModelAdmission::Probe) => {
                    if attempt.fails {
                        self.on_failure();
                    } else {
                        self.on_success();
                    }
                }
                Some(ModelAdmission::Rejected) => {}
                None => return Err(format!("client {t} reported without acquiring")),
            }
        }
        self.pc[t] += 1;
        self.probe_invariant()
    }

    fn check_complete(&self) -> Result<(), String> {
        if self.probe_in_flight {
            return Err(
                "lost half-open probe: a probe admission was never resolved".to_string(),
            );
        }
        if let Some(t) = self.pending.iter().position(Option::is_some) {
            return Err(format!("client {t} finished with an unreported admission"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Router model
// ---------------------------------------------------------------------

/// A reply as observed by a model cluster client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterReply {
    /// Some candidate replica planned the request (which one).
    Planned(usize),
    /// Every candidate was down; the router surfaced an explicit error.
    Unavailable,
}

/// One killer-thread action against the replica set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillerOp {
    /// Mark a replica dead: new dispatches fail immediately and requests
    /// already in flight come back as transient errors.
    Kill(usize),
    /// Bring a replica back; it serves again from the next dispatch.
    Revive(usize),
}

/// Mirror of `mtmlf::cluster::ClusterService::plan` under replica churn.
///
/// Each client owns one request with a fixed key whose candidate order is
/// the rotation `[key % n, (key+1) % n, ..]` — the shape `HashRing::
/// candidates` guarantees (a permutation of the membership, primary
/// first). An attempt is two atomic steps, matching the two points where
/// the real router observes replica state: **dispatch** (the health /
/// breaker check before `ReplicaNode::plan`) and **execute** (the
/// replica's own alive check inside `plan`). A kill landing between the
/// two is exactly the in-flight failure the failover walk must absorb.
///
/// Thread layout: `0..clients` = clients, `clients` = killer.
#[derive(Debug, Clone)]
pub struct RouterModel {
    alive: Vec<bool>,
    keys: Vec<usize>,
    attempt: Vec<usize>,          // per client: index into its candidate list
    in_flight: Vec<Option<usize>>, // per client: replica executing its request
    client_pc: Vec<u8>,           // 0 = dispatch, 1 = execute, 2 = observe, 3 = done
    replies: Vec<Option<RouterReply>>,
    killer_script: Vec<KillerOp>,
    killer_pc: usize,
    // Deliberate-bug switches for checker self-tests.
    bug_drop_in_flight: bool,
    bug_reply_then_failover: bool,
}

impl RouterModel {
    /// A correct model: one client per key over `replicas` replicas, plus a
    /// killer thread running `script`.
    pub fn new(replicas: usize, keys: Vec<usize>, script: Vec<KillerOp>) -> Self {
        let n = keys.len();
        Self {
            alive: vec![true; replicas],
            keys,
            attempt: vec![0; n],
            in_flight: vec![None; n],
            client_pc: vec![0; n],
            replies: vec![None; n],
            killer_script: script,
            killer_pc: 0,
            bug_drop_in_flight: false,
            bug_reply_then_failover: false,
        }
    }

    /// Buggy variant: a request whose replica dies mid-flight is silently
    /// dropped instead of failing over (must be caught as a deadlocked
    /// client or a lost response).
    pub fn with_dropped_in_flight(
        replicas: usize,
        keys: Vec<usize>,
        script: Vec<KillerOp>,
    ) -> Self {
        Self {
            bug_drop_in_flight: true,
            ..Self::new(replicas, keys, script)
        }
    }

    /// Buggy variant: a mid-flight failure is reported to the client as an
    /// error *and* retried on the next candidate, which then replies again
    /// (must be caught as a double completion).
    pub fn with_reply_then_failover(
        replicas: usize,
        keys: Vec<usize>,
        script: Vec<KillerOp>,
    ) -> Self {
        Self {
            bug_reply_then_failover: true,
            ..Self::new(replicas, keys, script)
        }
    }

    fn replica_count(&self) -> usize {
        self.alive.len()
    }

    fn killer_idx(&self) -> usize {
        self.keys.len()
    }

    /// The candidate walk for a key: primary first, then the ring
    /// survivors, covering every member exactly once.
    fn candidate(&self, key: usize, attempt: usize) -> usize {
        (key + attempt) % self.replica_count()
    }

    fn deliver(&mut self, client: usize, reply: RouterReply) -> Result<(), String> {
        if self.replies[client].is_some() {
            return Err(format!("double completion: client {client} replied twice"));
        }
        self.replies[client] = Some(reply);
        Ok(())
    }
}

impl Interleave for RouterModel {
    fn threads(&self) -> usize {
        self.keys.len() + 1
    }

    fn done(&self, t: usize) -> bool {
        if t < self.keys.len() {
            self.client_pc[t] == 3
        } else {
            self.killer_pc >= self.killer_script.len()
        }
    }

    fn enabled(&self, t: usize) -> bool {
        if t < self.keys.len() {
            match self.client_pc[t] {
                0 | 1 => true,                      // dispatch / replica execution
                2 => self.replies[t].is_some(),     // blocked on the reply channel
                _ => false,
            }
        } else {
            true // kill and revive never block
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t == self.killer_idx() {
            match self.killer_script[self.killer_pc] {
                KillerOp::Kill(r) => self.alive[r] = false,
                KillerOp::Revive(r) => self.alive[r] = true,
            }
            self.killer_pc += 1;
            return Ok(());
        }
        match self.client_pc[t] {
            0 => {
                // Dispatch: the router's pre-flight health check.
                if self.attempt[t] >= self.replica_count() {
                    // Candidate list exhausted — the router answers with an
                    // explicit error rather than hanging the client.
                    self.deliver(t, RouterReply::Unavailable)?;
                    self.client_pc[t] = 2;
                } else {
                    let r = self.candidate(self.keys[t], self.attempt[t]);
                    if self.alive[r] {
                        self.in_flight[t] = Some(r);
                        self.client_pc[t] = 1;
                    } else {
                        // Immediate connect failure: walk to the next
                        // candidate without consuming a reply.
                        self.attempt[t] += 1;
                    }
                }
                Ok(())
            }
            1 => {
                // Execute: the replica answers — unless it was killed after
                // dispatch, which surfaces as a transient error.
                let r = self.in_flight[t]
                    .take()
                    .ok_or_else(|| format!("client {t} executing with no dispatch"))?;
                if self.alive[r] {
                    self.deliver(t, RouterReply::Planned(r))?;
                    self.client_pc[t] = 2;
                } else if self.bug_drop_in_flight {
                    // Bug: the error is swallowed; the client waits forever.
                    self.client_pc[t] = 2;
                } else {
                    if self.bug_reply_then_failover {
                        // Bug: report the transient error as a final answer
                        // but keep walking the candidates anyway.
                        self.deliver(t, RouterReply::Unavailable)?;
                    }
                    self.attempt[t] += 1;
                    self.client_pc[t] = 0;
                }
                Ok(())
            }
            2 => {
                // Reply observed; consume it.
                self.client_pc[t] = 3;
                Ok(())
            }
            _ => Err(format!("client {t} stepped after completion")),
        }
    }

    fn check_complete(&self) -> Result<(), String> {
        for (i, r) in self.replies.iter().enumerate() {
            if r.is_none() {
                return Err(format!("lost response: client {i} never got a reply"));
            }
        }
        if let Some(t) = self.in_flight.iter().position(Option::is_some) {
            return Err(format!("client {t} finished with a request still in flight"));
        }
        Ok(())
    }
}

/// One swapper operation in a [`SwapModel`] script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapOp {
    /// Install this version as the active model (write-lock pointer swap;
    /// the displaced pair becomes the rollback target).
    Swap(usize),
    /// Restore the displaced pair, if one exists (a rollback with no
    /// previous model is a no-op here; the real API returns an error).
    Rollback,
}

/// Mirror of `mtmlf::lifecycle::ModelSlot` under a serving load.
///
/// The slot is modeled as the two halves a careless reader could observe
/// separately — the model pointer and its version. The real `select()`
/// takes the read lock exactly once and clones both out together, so a
/// batch can never straddle a swap; the model encodes that as the worker
/// reading both halves in one atomic step. Swap and rollback are single
/// write-lock steps. Invariant: every reply carries a consistent
/// (model, version) pair, every client gets exactly one reply, and no
/// queued request is lost to a swap.
///
/// Thread layout: `0..clients` = clients, `clients` = worker,
/// `clients + 1` = swapper.
#[derive(Debug, Clone)]
pub struct SwapModel {
    // The slot's two halves. A correct install always writes (v, v), so
    // any mismatched pair in a reply is proof of a torn read.
    active_model: usize,
    active_version: usize,
    previous: Option<(usize, usize)>,
    queue: VecDeque<usize>,
    replies: Vec<Option<(usize, usize)>>,
    client_pc: Vec<u8>, // 0 = submit, 1 = await reply, 2 = done
    // Mid-read state for the torn-read bug: (client, model half).
    torn: Option<(usize, usize)>,
    script: Vec<SwapOp>,
    swapper_pc: usize,
    // Deliberate-bug switches for checker self-tests.
    bug_drop_in_flight: bool,
    bug_torn_read: bool,
}

impl SwapModel {
    /// A correct model: `clients` one-request clients served by one worker
    /// while the swapper runs `script`. Boot version is 1.
    pub fn new(clients: usize, script: Vec<SwapOp>) -> Self {
        Self {
            active_model: 1,
            active_version: 1,
            previous: None,
            queue: VecDeque::new(),
            replies: vec![None; clients],
            client_pc: vec![0; clients],
            torn: None,
            script,
            swapper_pc: 0,
            bug_drop_in_flight: false,
            bug_torn_read: false,
        }
    }

    /// Buggy variant: a swap tears down the worker queue, dropping every
    /// queued request (must be caught as a deadlocked client or a lost
    /// response).
    pub fn with_dropped_in_flight(clients: usize, script: Vec<SwapOp>) -> Self {
        Self {
            bug_drop_in_flight: true,
            ..Self::new(clients, script)
        }
    }

    /// Buggy variant: the worker reads the model half and the version half
    /// under two separate lock acquisitions, so a swap landing between
    /// them produces a half-swapped reply (must be caught as an
    /// inconsistent pair).
    pub fn with_torn_read(clients: usize, script: Vec<SwapOp>) -> Self {
        Self {
            bug_torn_read: true,
            ..Self::new(clients, script)
        }
    }

    fn clients(&self) -> usize {
        self.replies.len()
    }

    fn worker_idx(&self) -> usize {
        self.clients()
    }

    fn swapper_idx(&self) -> usize {
        self.clients() + 1
    }

    fn all_submitted(&self) -> bool {
        self.client_pc.iter().all(|&pc| pc >= 1)
    }

    fn deliver(&mut self, client: usize, pair: (usize, usize)) -> Result<(), String> {
        if self.replies[client].is_some() {
            return Err(format!("double completion: client {client} replied twice"));
        }
        if pair.0 != pair.1 {
            return Err(format!(
                "half-swapped model: client {client} served by model {} at version {}",
                pair.0, pair.1
            ));
        }
        self.replies[client] = Some(pair);
        Ok(())
    }
}

impl Interleave for SwapModel {
    fn threads(&self) -> usize {
        self.clients() + 2
    }

    fn done(&self, t: usize) -> bool {
        if t < self.clients() {
            self.client_pc[t] == 2
        } else if t == self.worker_idx() {
            self.all_submitted() && self.queue.is_empty() && self.torn.is_none()
        } else {
            self.swapper_pc >= self.script.len()
        }
    }

    fn enabled(&self, t: usize) -> bool {
        if t < self.clients() {
            match self.client_pc[t] {
                0 => true,
                1 => self.replies[t].is_some(),
                _ => false,
            }
        } else if t == self.worker_idx() {
            !self.queue.is_empty() || self.torn.is_some()
        } else {
            true // swap and rollback never block
        }
    }

    fn step(&mut self, t: usize) -> Result<(), String> {
        if t == self.swapper_idx() {
            match self.script[self.swapper_pc] {
                SwapOp::Swap(v) => {
                    self.previous = Some((self.active_model, self.active_version));
                    self.active_model = v;
                    self.active_version = v;
                    if self.bug_drop_in_flight {
                        // Bug: the swap tears down the queue; queued
                        // clients wait forever.
                        self.queue.clear();
                    }
                }
                SwapOp::Rollback => {
                    if let Some((m, v)) = self.previous.take() {
                        self.active_model = m;
                        self.active_version = v;
                    }
                }
            }
            self.swapper_pc += 1;
            return Ok(());
        }
        if t == self.worker_idx() {
            if let Some((client, model_half)) = self.torn.take() {
                // Second half of a torn read: the version observed now may
                // postdate the model observed before.
                return self.deliver(client, (model_half, self.active_version));
            }
            let client = self
                .queue
                .pop_front()
                .ok_or_else(|| "worker stepped with an empty queue".to_string())?;
            if self.bug_torn_read {
                self.torn = Some((client, self.active_model));
                return Ok(());
            }
            // The real select(): one read lock, both halves together.
            let pair = (self.active_model, self.active_version);
            return self.deliver(client, pair);
        }
        match self.client_pc[t] {
            0 => {
                self.queue.push_back(t);
                self.client_pc[t] = 1;
                Ok(())
            }
            1 => {
                self.client_pc[t] = 2;
                Ok(())
            }
            _ => Err(format!("client {t} stepped after completion")),
        }
    }

    fn check_complete(&self) -> Result<(), String> {
        for (i, r) in self.replies.iter().enumerate() {
            match r {
                None => return Err(format!("lost response: client {i} never got a reply")),
                Some((m, v)) if m != v => {
                    return Err(format!(
                        "half-swapped model: client {i} served by model {m} at version {v}"
                    ))
                }
                Some(_) => {}
            }
        }
        if self.torn.is_some() {
            return Err("worker finished with a read still torn open".to_string());
        }
        Ok(())
    }
}

/// The standard model suite run by `mtmlf-lint --check`: name, schedules
/// explored, steps taken. Any violation aborts with its message.
pub fn run_model_suite() -> Result<Vec<(&'static str, Exploration)>, (String, String)> {
    let mut out = Vec::new();

    let cache2 = CacheModel::new(
        2,
        vec![
            vec![
                CacheOp::Insert(1, 10),
                CacheOp::Get(1),
                CacheOp::Insert(3, 30),
            ],
            vec![
                CacheOp::Insert(2, 20),
                CacheOp::Get(2),
                CacheOp::Insert(1, 11),
                CacheOp::Get(3),
            ],
        ],
    );
    match explore(&cache2, 2_000_000) {
        Ok(stats) => out.push(("cache-2thread", stats)),
        Err(v) => return Err(("cache-2thread".to_string(), v.to_string())),
    }

    let cache3 = CacheModel::new(
        2,
        vec![
            vec![CacheOp::Insert(1, 10), CacheOp::Get(2)],
            vec![CacheOp::Insert(2, 20), CacheOp::Get(1)],
            vec![CacheOp::Insert(1, 12), CacheOp::Get(1)],
        ],
    );
    match explore(&cache3, 2_000_000) {
        Ok(stats) => out.push(("cache-3thread", stats)),
        Err(v) => return Err(("cache-3thread".to_string(), v.to_string())),
    }

    match explore(&ServiceModel::new(2), 2_000_000) {
        Ok(stats) => out.push(("service-2client", stats)),
        Err(v) => return Err(("service-2client".to_string(), v.to_string())),
    }

    match explore(&ServiceModel::new(3), 20_000_000) {
        Ok(stats) => out.push(("service-3client", stats)),
        Err(v) => return Err(("service-3client".to_string(), v.to_string())),
    }

    // Trip-and-recover: two clients whose first attempts fail and second
    // attempts succeed, one cool-down tick. Covers threshold trips,
    // rejection while open, the half-open probe, and reclosure.
    let trip = BreakerModel::new(
        2,
        vec![
            vec![Attempt { fails: true }, Attempt { fails: false }],
            vec![Attempt { fails: true }, Attempt { fails: false }],
        ],
        1,
    );
    match explore(&trip, 2_000_000) {
        Ok(stats) => out.push(("breaker-trip-recover", stats)),
        Err(v) => return Err(("breaker-trip-recover".to_string(), v.to_string())),
    }

    // Probe race: threshold one, three clients (two failing, one healthy)
    // and two ticks, so schedules include concurrent acquire in half-open,
    // failed probes restarting the cool-down, and probe takeover.
    let race = BreakerModel::new(
        1,
        vec![
            vec![Attempt { fails: true }],
            vec![Attempt { fails: true }],
            vec![Attempt { fails: false }],
        ],
        2,
    );
    match explore(&race, 2_000_000) {
        Ok(stats) => out.push(("breaker-probe-race", stats)),
        Err(v) => return Err(("breaker-probe-race".to_string(), v.to_string())),
    }

    // Replica churn: two clients on distinct primaries while the killer
    // takes replica 0 down and brings it back. Schedules include kills
    // landing mid-flight (after dispatch, before the replica answers), so
    // the failover walk is exercised under every interleaving.
    let churn = RouterModel::new(
        2,
        vec![0, 1],
        vec![KillerOp::Kill(0), KillerOp::Revive(0)],
    );
    match explore(&churn, 20_000_000) {
        Ok(stats) => out.push(("router-replica-churn", stats)),
        Err(v) => return Err(("router-replica-churn".to_string(), v.to_string())),
    }

    // Total outage: both replicas die and only one comes back, so some
    // schedules exhaust the candidate list — the router must answer with
    // an explicit error, never silence.
    let outage = RouterModel::new(
        2,
        vec![0, 1],
        vec![KillerOp::Kill(0), KillerOp::Kill(1), KillerOp::Revive(1)],
    );
    match explore(&outage, 20_000_000) {
        Ok(stats) => out.push(("router-total-outage", stats)),
        Err(v) => return Err(("router-total-outage".to_string(), v.to_string())),
    }

    // Hot swap under load: two clients served across a swap and a
    // rollback. Schedules include the swap landing between a request's
    // enqueue and its service, and the rollback racing the second request
    // — every reply must come from a consistent (model, version) pair.
    let swap = SwapModel::new(2, vec![SwapOp::Swap(2), SwapOp::Rollback]);
    match explore(&swap, 20_000_000) {
        Ok(stats) => out.push(("swap-during-serve", stats)),
        Err(v) => return Err(("swap-during-serve".to_string(), v.to_string())),
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_two_thread_model_is_exhaustive_and_clean() {
        let model = CacheModel::new(
            2,
            vec![
                vec![
                    CacheOp::Insert(1, 10),
                    CacheOp::Get(1),
                    CacheOp::Insert(3, 30),
                ],
                vec![
                    CacheOp::Insert(2, 20),
                    CacheOp::Get(2),
                    CacheOp::Insert(1, 11),
                    CacheOp::Get(3),
                ],
            ],
        );
        let stats = explore(&model, 2_000_000).expect("no invariant failures");
        // 7 steps interleaved two ways: C(7,3) = 35 distinct schedules.
        assert_eq!(stats.schedules, 35);
    }

    #[test]
    fn cache_three_thread_model_is_exhaustive_and_clean() {
        let model = CacheModel::new(
            2,
            vec![
                vec![CacheOp::Insert(1, 10), CacheOp::Get(2)],
                vec![CacheOp::Insert(2, 20), CacheOp::Get(1)],
                vec![CacheOp::Insert(1, 12), CacheOp::Get(1)],
            ],
        );
        let stats = explore(&model, 2_000_000).expect("no invariant failures");
        // Multinomial(6; 2,2,2) = 90 schedules.
        assert_eq!(stats.schedules, 90);
    }

    #[test]
    fn cache_checker_catches_broken_eviction() {
        let model = CacheModel::with_broken_eviction(
            1,
            vec![vec![CacheOp::Insert(1, 10)], vec![CacheOp::Insert(2, 20)]],
        );
        let err = explore(&model, 1_000).expect_err("corrupted map must be caught");
        assert!(
            err.message.contains("capacity exceeded") || err.message.contains("recency list"),
            "unexpected violation: {err}"
        );
    }

    #[test]
    fn cache_miss_before_insert_is_legal_but_phantom_hits_are_not() {
        // A get with no prior insert must simply miss; the phantom-read
        // detector only fires on an impossible hit.
        let model = CacheModel::new(1, vec![vec![CacheOp::Get(9)]]);
        assert!(explore(&model, 1_000).is_ok());
    }

    #[test]
    fn service_two_client_model_has_no_lost_or_double_replies() {
        let stats = explore(&ServiceModel::new(2), 2_000_000).expect("no invariant failures");
        assert!(
            stats.schedules > 100,
            "expected a real schedule space, got {}",
            stats.schedules
        );
    }

    #[test]
    fn service_three_client_model_has_no_lost_or_double_replies() {
        let stats = explore(&ServiceModel::new(3), 20_000_000).expect("no invariant failures");
        assert!(stats.schedules > 1_000);
    }

    #[test]
    fn checker_catches_lost_replies_as_deadlock() {
        let err = explore(&ServiceModel::with_lost_replies(2), 2_000_000)
            .expect_err("dropping the queue on close must be caught");
        assert!(
            err.message.contains("deadlock") || err.message.contains("lost response"),
            "unexpected violation: {err}"
        );
    }

    #[test]
    fn checker_catches_double_completion() {
        let err = explore(&ServiceModel::with_double_reply(2), 2_000_000)
            .expect_err("double reply must be caught");
        assert!(err.message.contains("double completion"), "{err}");
    }

    #[test]
    fn breaker_trip_recover_model_is_exhaustive_and_clean() {
        let model = BreakerModel::new(
            2,
            vec![
                vec![Attempt { fails: true }, Attempt { fails: false }],
                vec![Attempt { fails: true }, Attempt { fails: false }],
            ],
            1,
        );
        let stats = explore(&model, 2_000_000).expect("no invariant failures");
        // 9 steps interleaved three ways: 9!/(4!·4!·1!) = 630 schedules.
        assert_eq!(stats.schedules, 630);
    }

    #[test]
    fn breaker_probe_race_model_is_exhaustive_and_clean() {
        let model = BreakerModel::new(
            1,
            vec![
                vec![Attempt { fails: true }],
                vec![Attempt { fails: true }],
                vec![Attempt { fails: false }],
            ],
            2,
        );
        let stats = explore(&model, 2_000_000).expect("no invariant failures");
        // 8 steps interleaved four ways: 8!/(2!·2!·2!·2!) = 2520 schedules.
        assert_eq!(stats.schedules, 2520);
    }

    #[test]
    fn checker_catches_lost_half_open_probe() {
        // One failure trips the breaker; after a tick the probe succeeds,
        // but the buggy on_success leaves the probe flag flying.
        let model = BreakerModel::with_lost_probe(
            1,
            vec![vec![Attempt { fails: true }, Attempt { fails: false }]],
            1,
        );
        let err = explore(&model, 2_000_000).expect_err("lost probe must be caught");
        assert!(
            err.message.contains("probe"),
            "unexpected violation: {err}"
        );
    }

    #[test]
    fn checker_catches_stuck_open_breaker() {
        let model = BreakerModel::with_stuck_open(
            1,
            vec![vec![Attempt { fails: true }, Attempt { fails: false }]],
            1,
        );
        let err = explore(&model, 2_000_000).expect_err("stuck open must be caught");
        assert!(err.message.contains("stuck open"), "{err}");
    }

    #[test]
    fn router_churn_model_has_exactly_one_reply_per_request() {
        let model = RouterModel::new(
            2,
            vec![0, 1],
            vec![KillerOp::Kill(0), KillerOp::Revive(0)],
        );
        let stats = explore(&model, 20_000_000).expect("no invariant failures");
        assert!(
            stats.schedules > 100,
            "expected a real schedule space, got {}",
            stats.schedules
        );
    }

    #[test]
    fn router_total_outage_model_answers_every_client() {
        let model = RouterModel::new(
            2,
            vec![0, 1],
            vec![KillerOp::Kill(0), KillerOp::Kill(1), KillerOp::Revive(1)],
        );
        let stats = explore(&model, 20_000_000).expect("no invariant failures");
        assert!(stats.schedules > 100);
    }

    #[test]
    fn checker_catches_requests_dropped_mid_flight() {
        let err = explore(
            &RouterModel::with_dropped_in_flight(2, vec![0], vec![KillerOp::Kill(0)]),
            2_000_000,
        )
        .expect_err("swallowed in-flight failure must be caught");
        assert!(
            err.message.contains("deadlock") || err.message.contains("lost response"),
            "unexpected violation: {err}"
        );
    }

    #[test]
    fn checker_catches_reply_then_failover_double_completion() {
        let err = explore(
            &RouterModel::with_reply_then_failover(
                2,
                vec![0],
                vec![KillerOp::Kill(0), KillerOp::Revive(1)],
            ),
            2_000_000,
        )
        .expect_err("reply-then-failover must be caught");
        assert!(err.message.contains("double completion"), "{err}");
    }

    #[test]
    fn swap_model_serves_only_consistent_pairs() {
        let model = SwapModel::new(2, vec![SwapOp::Swap(2), SwapOp::Rollback]);
        let stats = explore(&model, 20_000_000).expect("no invariant failures");
        assert!(
            stats.schedules > 100,
            "expected a real schedule space, got {}",
            stats.schedules
        );
    }

    #[test]
    fn swap_model_survives_swap_chains_without_rollback_target() {
        // Rollback-before-swap is a no-op; double swap retargets rollback.
        let model = SwapModel::new(
            1,
            vec![SwapOp::Rollback, SwapOp::Swap(2), SwapOp::Swap(3), SwapOp::Rollback],
        );
        let stats = explore(&model, 20_000_000).expect("no invariant failures");
        assert!(stats.schedules > 10);
    }

    #[test]
    fn checker_catches_swap_dropping_queued_requests() {
        let err = explore(
            &SwapModel::with_dropped_in_flight(2, vec![SwapOp::Swap(2)]),
            2_000_000,
        )
        .expect_err("queue-clearing swap must be caught");
        assert!(
            err.message.contains("deadlock") || err.message.contains("lost response"),
            "unexpected violation: {err}"
        );
    }

    #[test]
    fn checker_catches_half_swapped_reads() {
        let err = explore(
            &SwapModel::with_torn_read(1, vec![SwapOp::Swap(2)]),
            2_000_000,
        )
        .expect_err("torn slot read must be caught");
        assert!(err.message.contains("half-swapped"), "{err}");
    }

    #[test]
    fn model_suite_runs_clean() {
        let suite = run_model_suite().expect("suite clean");
        assert_eq!(suite.len(), 9);
        for (name, stats) in suite {
            assert!(stats.schedules > 0, "{name} explored nothing");
        }
    }
}

//! # mtmlf-lint
//!
//! The workspace invariant checker. PR 1 made MTMLF-QO a concurrent
//! service (shared `Arc`/`RwLock` autograd tape, sharded LRU plan cache,
//! worker pool), which puts correctness on invariants the compiler cannot
//! see. This crate machine-enforces them:
//!
//! * a **static-analysis pass** ([`lexer`], [`rules`]) — a hand-rolled
//!   Rust lexer walks every `.rs` file and enforces the L1–L4 catalog
//!   (panic-freedom, determinism, lock ordering, error-type discipline),
//!   ratcheted against a checked-in [`baseline`] so existing debt fails
//!   nothing but *new* debt fails CI;
//! * a **bounded-interleaving model checker** ([`interleave`]) — a
//!   `loom`-style brute-force scheduler that exhaustively explores every
//!   interleaving of small state machines mirroring the serving path's
//!   `ShardedLruCache` and `PlannerService`, proving no lost responses, no
//!   double completions, and no deadlocks for 2–3 threads.
//!
//! Run it as `cargo run -p mtmlf-lint -- --check`; results land in
//! `results/LINT.json`. See DESIGN.md §"Static guarantees" for the catalog
//! and how to add a lint.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod interleave;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

/// Runs the full static pass over a workspace root, returning the report
/// (model suite not yet attached).
pub fn analyze_workspace(root: &Path) -> std::io::Result<report::Report> {
    let mut rep = report::Report::default();
    let mut graph = rules::ErrorGraph::default();
    let files = walk::rust_files(root)?;
    for path in &files {
        let rel = walk::relative(root, path);
        if rel.starts_with("crates/lint/") {
            // The lint does not lint itself: its sources are full of the
            // very token patterns it hunts for.
            continue;
        }
        let src = fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let mask = rules::test_mask(&lexed.toks);
        let scope = rules::FileScope::of(&rel);
        rules::check_l1(&rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
        rules::check_l2(&rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
        rules::check_l3(&rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
        graph.collect(&rel, &scope, &lexed, &mask);
        rep.files_scanned += 1;
    }
    graph.finalize(&mut rep.violations);
    rep.violations.sort_by(|a, b| {
        (a.rule, &a.file, a.line)
            .cmp(&(b.rule, &b.file, b.line))
    });
    Ok(rep)
}

//! # mtmlf-lint
//!
//! The workspace invariant checker. PR 1 made MTMLF-QO a concurrent
//! service (shared `Arc`/`RwLock` autograd tape, sharded LRU plan cache,
//! worker pool), which puts correctness on invariants the compiler cannot
//! see. This crate machine-enforces them:
//!
//! * a **static-analysis pass** ([`lexer`], [`rules`]) — a hand-rolled
//!   Rust lexer walks every `.rs` file and enforces the L1–L4 catalog
//!   (panic-freedom, determinism, lock ordering, error-type discipline),
//!   ratcheted against a checked-in [`baseline`] so existing debt fails
//!   nothing but *new* debt fails CI;
//! * a **bounded-interleaving model checker** ([`interleave`]) — a
//!   `loom`-style brute-force scheduler that exhaustively explores every
//!   interleaving of small state machines mirroring the serving path's
//!   `ShardedLruCache` and `PlannerService`, proving no lost responses, no
//!   double completions, and no deadlocks for 2–3 threads.
//!
//! Run it as `cargo run -p mtmlf-lint -- --check`; results land in
//! `results/LINT.json`. See DESIGN.md §"Static guarantees" for the catalog
//! and how to add a lint.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod concurrency;
pub mod interleave;
pub mod ir;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use std::collections::HashMap;
use std::fs;
use std::path::Path;

/// One source file prepared for analysis: workspace-relative path plus its
/// contents. Public so tests can drive the analyzer on in-memory fixtures.
pub struct SourceFile {
    /// Workspace-relative path (drives scoping and lock identities).
    pub rel: String,
    /// File contents.
    pub src: String,
}

/// Runs every pass (token rules L1–L4, IR extraction, concurrency passes
/// G1/G2/L5/L6) over in-memory sources. `crates/bench` findings are routed
/// to the advisory (report-only) section.
pub fn analyze_sources(sources: &[SourceFile], rep: &mut report::Report) {
    let mut graph = rules::ErrorGraph::default();
    let mut irs: Vec<ir::FileIr> = Vec::new();
    let mut lexed_by_file: HashMap<String, lexer::Lexed> = HashMap::new();
    for sf in sources {
        let lexed = lexer::lex(&sf.src);
        let mask = rules::test_mask(&lexed.toks);
        let mut scope = rules::FileScope::of(&sf.rel);
        let bench = scope.crate_dir.as_deref() == Some("bench");
        if bench {
            // Satellite: bench coverage is report-only. Run the same rules
            // with library scoping forced on, but collect into `advisory`
            // so the findings never gate `--check`.
            scope.library_override = true;
            rules::check_l1(&sf.rel, &scope, &lexed, &mask, &mut rep.advisory, &mut rep.allowed);
            rules::check_l3(&sf.rel, &scope, &lexed, &mask, &mut rep.advisory, &mut rep.allowed);
        } else {
            rules::check_l1(&sf.rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
            rules::check_l2(&sf.rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
            rules::check_l3(&sf.rel, &scope, &lexed, &mask, &mut rep.violations, &mut rep.allowed);
            graph.collect(&sf.rel, &scope, &lexed, &mask);
        }
        // IR feeds the whole-program passes: library + bench sources, no
        // integration-test trees (panicking/blocking is fine in a test).
        if scope.is_library_crate() && !scope.in_test_tree {
            irs.push(ir::extract(&sf.rel, &scope, &lexed, &mask));
        }
        lexed_by_file.insert(sf.rel.clone(), lexed);
        rep.files_scanned += 1;
    }
    graph.finalize(&mut rep.violations);

    for ir in &irs {
        rep.ir_stats.absorb(ir);
    }
    let is_allowed = |file: &str, line: u32, rule: &str| {
        lexed_by_file
            .get(file)
            .is_some_and(|l| l.is_allowed(line, rule))
    };
    let mut conc = Vec::new();
    concurrency::check_concurrency(&irs, &is_allowed, &mut conc, &mut rep.allowed);
    for v in conc {
        if v.file.starts_with("crates/bench/") {
            rep.advisory.push(v);
        } else {
            rep.violations.push(v);
        }
    }

    let order = |a: &rules::Violation, b: &rules::Violation| {
        (a.rule, a.file.clone(), a.line).cmp(&(b.rule, b.file.clone(), b.line))
    };
    rep.violations.sort_by(order);
    rep.advisory.sort_by(order);
}

/// Runs the full static pass over a workspace root, returning the report
/// (model suite not yet attached).
pub fn analyze_workspace(root: &Path) -> std::io::Result<report::Report> {
    let mut sources = Vec::new();
    for path in &walk::rust_files(root)? {
        let rel = walk::relative(root, path);
        if rel.starts_with("crates/lint/") {
            // The lint does not lint itself: its sources are full of the
            // very token patterns it hunts for.
            continue;
        }
        sources.push(SourceFile {
            rel,
            src: fs::read_to_string(path)?,
        });
    }
    let mut rep = report::Report::default();
    analyze_sources(&sources, &mut rep);
    Ok(rep)
}

//! Machine-readable report (`results/LINT.json`), hand-rolled writer.

use crate::baseline::Comparison;
use crate::interleave::Exploration;
use crate::ir::IrStats;
use crate::rules::Violation;
use std::collections::BTreeMap;

/// `results/LINT.json` schema version. v2 added `schema_version` itself,
/// the G1/G2/L5/L6 per-pass counts, the `advisory` (report-only bench)
/// section, `ir` extraction stats, and the `models_passed` tally.
pub const SCHEMA_VERSION: u32 = 2;

/// Rule ids reported in `rule_counts`, in render order.
pub const ALL_RULES: &[&str] = &["L1", "L2", "L3", "L4", "G1", "G2", "L5", "L6"];

/// Everything one lint run learned, serializable to `results/LINT.json`.
#[derive(Debug, Default)]
pub struct Report {
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations (baseline-tolerated ones included; `new_violations`
    /// carries the delta that fails `--check`).
    pub violations: Vec<Violation>,
    /// Report-only findings (`crates/bench`): recorded, never fatal.
    pub advisory: Vec<Violation>,
    /// Hits suppressed via `// lint: allow(...)`.
    pub allowed: Vec<Violation>,
    /// Aggregate IR-extraction counts (fn items, calls, guards, …).
    pub ir_stats: IrStats,
    /// Count of violations beyond the baseline.
    pub new_violations: usize,
    /// `(rule, file, baseline, actual)` improvements vs. the baseline.
    pub improved: Vec<(String, String, u64, u64)>,
    /// Baseline entries with no remaining violations.
    pub stale_baseline: Vec<(String, String, u64)>,
    /// Model-checker results: name → exploration stats.
    pub models: Vec<(&'static str, Exploration)>,
    /// Model-checker failure, if any: (model, message).
    pub model_failure: Option<(String, String)>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation, indent: &str) -> String {
    format!(
        "{indent}{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
        v.rule,
        esc(&v.file),
        v.line,
        esc(&v.message)
    )
}

impl Report {
    /// Applies a baseline comparison to the report.
    pub fn absorb(&mut self, cmp: Comparison) {
        self.new_violations = cmp.new.len();
        self.improved = cmp.improved;
        self.stale_baseline = cmp.stale;
    }

    /// Per-rule violation counts.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_default() += 1;
        }
        counts
    }

    /// Whether `--check` should fail.
    pub fn failed(&self) -> bool {
        self.new_violations > 0 || self.model_failure.is_some()
    }

    /// Per-rule advisory counts (bench report-only findings).
    pub fn advisory_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for v in &self.advisory {
            *counts.entry(v.rule).or_default() += 1;
        }
        counts
    }

    /// Renders the full JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"mtmlf-lint\",\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!(
            "  \"check_passed\": {},\n",
            if self.failed() { "false" } else { "true" }
        ));

        out.push_str("  \"rule_counts\": {");
        let counts = self.rule_counts();
        let parts: Vec<String> = ALL_RULES
            .iter()
            .map(|r| format!("\"{}\": {}", r, counts.get(*r).copied().unwrap_or(0)))
            .collect();
        out.push_str(&parts.join(", "));
        out.push_str("},\n");

        out.push_str("  \"advisory_counts\": {");
        let acounts = self.advisory_counts();
        let parts: Vec<String> = ALL_RULES
            .iter()
            .map(|r| format!("\"{}\": {}", r, acounts.get(*r).copied().unwrap_or(0)))
            .collect();
        out.push_str(&parts.join(", "));
        out.push_str("},\n");

        out.push_str(&format!(
            "  \"ir\": {{\"functions\": {}, \"calls\": {}, \"guards\": {}, \"channels\": {}, \"spawns\": {}}},\n",
            self.ir_stats.functions,
            self.ir_stats.calls,
            self.ir_stats.guards,
            self.ir_stats.channels,
            self.ir_stats.spawns,
        ));

        // On a model failure the suite aborts and `models` stays empty, so
        // this is simply "how many models ran to completion".
        out.push_str(&format!("  \"models_passed\": {},\n", self.models.len()));

        out.push_str(&format!(
            "  \"new_violations\": {},\n",
            self.new_violations
        ));

        out.push_str("  \"violations\": [\n");
        let vs: Vec<String> = self
            .violations
            .iter()
            .map(|v| violation_json(v, "    "))
            .collect();
        out.push_str(&vs.join(",\n"));
        if !vs.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"advisory\": [\n");
        let adv: Vec<String> = self
            .advisory
            .iter()
            .map(|v| violation_json(v, "    "))
            .collect();
        out.push_str(&adv.join(",\n"));
        if !adv.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"allowed\": [\n");
        let al: Vec<String> = self
            .allowed
            .iter()
            .map(|v| violation_json(v, "    "))
            .collect();
        out.push_str(&al.join(",\n"));
        if !al.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"baseline_improvements\": [\n");
        let imp: Vec<String> = self
            .improved
            .iter()
            .map(|(rule, file, budget, actual)| {
                format!(
                    "    {{\"rule\": \"{}\", \"file\": \"{}\", \"baseline\": {budget}, \"actual\": {actual}}}",
                    rule,
                    esc(file)
                )
            })
            .collect();
        out.push_str(&imp.join(",\n"));
        if !imp.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");

        out.push_str("  \"models\": [\n");
        let ms: Vec<String> = self
            .models
            .iter()
            .map(|(name, stats)| {
                format!(
                    "    {{\"name\": \"{name}\", \"schedules\": {}, \"steps\": {}}}",
                    stats.schedules, stats.steps
                )
            })
            .collect();
        out.push_str(&ms.join(",\n"));
        if !ms.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");

        match &self.model_failure {
            Some((model, message)) => out.push_str(&format!(
                "  \"model_failure\": {{\"model\": \"{}\", \"message\": \"{}\"}}\n",
                esc(model),
                esc(message)
            )),
            None => out.push_str("  \"model_failure\": null\n"),
        }
        out.push_str("}\n");
        out
    }

    /// Renders a minimal SARIF 2.1.0 document (one run, one result per
    /// violation; advisory findings carry level `note`, everything else
    /// `warning` when baseline-tolerated semantics apply). Uploaded as a CI
    /// artifact so findings render in code-scanning UIs.
    pub fn to_sarif(&self) -> String {
        fn result_json(v: &Violation, level: &str) -> String {
            format!(
                concat!(
                    "        {{\"ruleId\": \"{}\", \"level\": \"{}\", ",
                    "\"message\": {{\"text\": \"{}\"}}, \"locations\": [{{",
                    "\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, ",
                    "\"region\": {{\"startLine\": {}}}}}}}]}}"
                ),
                v.rule,
                level,
                esc(&v.message),
                esc(&v.file),
                v.line.max(1),
            )
        }
        let rule_descs: &[(&str, &str)] = &[
            ("L1", "no panic paths in library crates"),
            ("L2", "clock/randomness confinement"),
            ("L3", "cache-lock under autograd guard"),
            ("L4", "error enums wire into MtmlfError"),
            ("G1", "global lock-acquisition graph is acyclic"),
            ("G2", "no blocking operation while a guard is live"),
            ("L5", "no allocation in // lint: hot-path functions"),
            ("L6", "no unbounded channels outside the allowlist"),
        ];
        let mut out = String::from("{\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str(
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n",
        );
        out.push_str("  \"runs\": [{\n");
        out.push_str("    \"tool\": {\"driver\": {\"name\": \"mtmlf-lint\", \"rules\": [\n");
        let rules: Vec<String> = rule_descs
            .iter()
            .map(|(id, desc)| {
                format!(
                    "      {{\"id\": \"{id}\", \"shortDescription\": {{\"text\": \"{desc}\"}}}}"
                )
            })
            .collect();
        out.push_str(&rules.join(",\n"));
        out.push_str("\n    ]}},\n");
        out.push_str("    \"results\": [\n");
        let mut results: Vec<String> = self
            .violations
            .iter()
            .map(|v| result_json(v, "warning"))
            .collect();
        results.extend(self.advisory.iter().map(|v| result_json(v, "note")));
        out.push_str(&results.join(",\n"));
        if !results.is_empty() {
            out.push('\n');
        }
        out.push_str("    ]\n");
        out.push_str("  }]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut report = Report {
            files_scanned: 3,
            ..Report::default()
        };
        report.violations.push(Violation {
            rule: "L1",
            file: "a\"b.rs".to_string(),
            line: 7,
            message: "bad\nthing".to_string(),
        });
        let json = report.to_json();
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("bad\\nthing"));
        assert!(json.contains("\"L1\": 1"));
        assert!(json.contains("\"check_passed\": true"));
    }
}

//! The violation baseline: a checked-in ratchet for existing debt.
//!
//! `lint.baseline` records, per `(rule, file)`, how many violations are
//! tolerated. `--check` fails only when a count *exceeds* its baseline —
//! new debt is rejected, old debt can be burned down incrementally. When a
//! file drops below its baseline the run reports the slack so the baseline
//! can be tightened (`--update-baseline` rewrites it from reality).
//!
//! Format: one entry per line, `<rule> <count> <file>`, `#` comments,
//! sorted. Hand-editable; no JSON parser needed.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// Baseline counts keyed by `(rule, file)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Tolerated violation counts.
    pub counts: BTreeMap<(String, String), u64>,
}

/// Outcome of comparing current violations against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Violations beyond the baseline (these fail `--check`).
    pub new: Vec<Violation>,
    /// `(rule, file, baseline, actual)` where actual < baseline.
    pub improved: Vec<(String, String, u64, u64)>,
    /// Baseline entries whose file no longer has any violations at all.
    pub stale: Vec<(String, String, u64)>,
}

impl Baseline {
    /// Parses the baseline text format (missing file ⇒ empty baseline).
    pub fn parse(text: &str) -> Self {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (Some(rule), Some(count), Some(file)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            if let Ok(count) = count.parse::<u64>() {
                counts.insert((rule.to_string(), file.trim().to_string()), count);
            }
        }
        Self { counts }
    }

    /// Renders the baseline text format from current violations.
    pub fn render(violations: &[Violation]) -> String {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for v in violations {
            *counts
                .entry((v.rule.to_string(), v.file.clone()))
                .or_default() += 1;
        }
        let mut out = String::from(
            "# mtmlf-lint baseline: tolerated per-file violation counts.\n\
             # `cargo run -p mtmlf-lint -- --check` fails only when a count grows.\n\
             # Burn debt down, then `--update-baseline` to ratchet. Format: rule count file\n",
        );
        for ((rule, file), count) in counts {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
        out
    }

    /// Splits current violations into new-vs-baseline and improvements.
    pub fn compare(&self, violations: &[Violation]) -> Comparison {
        let mut grouped: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
        for v in violations {
            grouped
                .entry((v.rule.to_string(), v.file.clone()))
                .or_default()
                .push(v);
        }
        let mut cmp = Comparison::default();
        for (key, vs) in &grouped {
            let budget = self.counts.get(key).copied().unwrap_or(0);
            let actual = vs.len() as u64;
            if actual > budget {
                // Report the overflow, attributed to the trailing hits so
                // diagnostics stay stable as files grow from the top.
                for v in vs.iter().skip(budget as usize) {
                    cmp.new.push((*v).clone());
                }
            } else if actual < budget {
                cmp.improved
                    .push((key.0.clone(), key.1.clone(), budget, actual));
            }
        }
        for (key, &budget) in &self.counts {
            if !grouped.contains_key(key) {
                cmp.stale.push((key.0.clone(), key.1.clone(), budget));
            }
        }
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let violations = vec![
            v("L1", "crates/a/src/x.rs", 3),
            v("L1", "crates/a/src/x.rs", 9),
            v("L2", "crates/b/src/y.rs", 1),
        ];
        let text = Baseline::render(&violations);
        let parsed = Baseline::parse(&text);
        assert_eq!(
            parsed.counts.get(&("L1".into(), "crates/a/src/x.rs".into())),
            Some(&2)
        );
        assert_eq!(
            parsed.counts.get(&("L2".into(), "crates/b/src/y.rs".into())),
            Some(&1)
        );
    }

    #[test]
    fn growth_is_new_shrink_is_improved_absence_is_stale() {
        let baseline = Baseline::parse("L1 2 f.rs\nL2 1 gone.rs\n");
        let current = vec![
            v("L1", "f.rs", 1),
            v("L1", "f.rs", 2),
            v("L1", "f.rs", 3),
            v("L3", "h.rs", 7),
        ];
        let cmp = baseline.compare(&current);
        // f.rs grew 2 → 3: exactly one new violation; h.rs is all new.
        assert_eq!(cmp.new.len(), 2);
        assert!(cmp.new.iter().any(|n| n.file == "h.rs"));
        assert_eq!(cmp.stale, vec![("L2".into(), "gone.rs".into(), 1)]);
        assert!(cmp.improved.is_empty());

        let cmp = baseline.compare(&[v("L1", "f.rs", 1)]);
        assert!(cmp.new.is_empty());
        assert_eq!(cmp.improved, vec![("L1".into(), "f.rs".into(), 2, 1)]);
    }

    #[test]
    fn empty_baseline_tolerates_nothing() {
        let cmp = Baseline::default().compare(&[v("L1", "f.rs", 1)]);
        assert_eq!(cmp.new.len(), 1);
    }
}

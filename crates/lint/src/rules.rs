//! The MTMLF lint catalog (L1–L4) over lexed token streams.
//!
//! | rule | name         | invariant |
//! |------|--------------|-----------|
//! | L1   | `panic`      | no `unwrap()` / `expect()` / `panic!`-family macros in library-crate non-test code |
//! | L2   | `clock`      | no wall-clock or OS randomness outside `serve.rs` / bench code; *strict* in `trace.rs` / `metrics.rs` / `lifecycle.rs`, where any `Instant`/`SystemTime` token is flagged — the observability and lifecycle layers read time only through the injectable `Clock` |
//! | L3   | `lock-order` | no cache-lock acquisition while an autograd guard is held |
//! | L4   | `error-impl` | every public error enum implements `std::error::Error` and `From`-converts (possibly transitively) into `MtmlfError` |
//!
//! Every rule honors the `// lint: allow(<name>)` escape hatch (same line,
//! or a directive-only comment covering the next line); allowed hits are
//! counted separately so debt stays visible. Test code (`#[cfg(test)]`
//! items, `tests/`, `benches/`) is exempt from L1/L2/L3 — panics are the
//! correct failure mode for a test.
//!
//! The matchers are token patterns with brace-depth bookkeeping, not a
//! parser. Where that forces an approximation (L3's notion of "holds a
//! guard") the approximation is conservative and documented inline.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::{HashMap, HashSet};

/// Crate directories under `crates/` that count as library code for L1.
pub const LIBRARY_CRATES: &[&str] = &[
    "core", "nn", "exec", "query", "storage", "treelstm", "optd", "datagen",
];

/// Crate directories exempt from L2 entirely (measurement is their job, or
/// they are the lint itself).
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["bench", "lint"];

/// Library-crate files where L2 is *strict*: the observability layer must
/// read time only through the injectable `Clock` abstraction, so any
/// `Instant` / `SystemTime` token — even a type annotation or an
/// `.elapsed()` on a stored stamp, which ordinary L2 permits — is a
/// violation here. This is what makes traces replayable under `ManualClock`
/// and keeps histogram tests deterministic. `lifecycle.rs` is held to the
/// same bar: drift windows are counted in requests, not seconds, so drift
/// and shadow-evaluation tests replay deterministically. `durable.rs` too:
/// log-record stamps come from the injected clock, so recovery tests can
/// replay byte-identical logs.
pub const CLOCK_STRICT_FILES: &[&str] = &["trace.rs", "metrics.rs", "lifecycle.rs", "durable.rs"];

/// One rule violation with a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `L1` … `L4`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

/// A hit suppressed by `// lint: allow(...)` — reported, not failed.
pub type Allowed = Violation;

/// Where a file sits in the workspace, as far as the rules care.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Directory name under `crates/` (`None` for the root package).
    pub crate_dir: Option<String>,
    /// Inside `tests/` or `benches/` (integration tests / benchmarks).
    pub in_test_tree: bool,
    /// File name (last path component).
    pub file_name: String,
    /// Treat the file as library code even when its crate is not in
    /// [`LIBRARY_CRATES`] — used for the advisory (report-only) pass over
    /// `crates/bench`.
    pub library_override: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path like `crates/core/src/serve.rs`.
    pub fn of(rel_path: &str) -> Self {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_dir = if parts.len() >= 2 && parts[0] == "crates" {
            Some(parts[1].to_string())
        } else {
            None
        };
        let in_test_tree = parts.iter().any(|p| *p == "tests" || *p == "benches");
        let file_name = parts.last().unwrap_or(&"").to_string();
        Self {
            crate_dir,
            in_test_tree,
            file_name,
            library_override: false,
        }
    }

    /// Whether the per-file rules treat this as library code.
    pub fn is_library_crate(&self) -> bool {
        self.library_override
            || self
                .crate_dir
                .as_deref()
                .is_some_and(|d| LIBRARY_CRATES.contains(&d))
    }

    fn clock_exempt(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|d| CLOCK_EXEMPT_CRATES.contains(&d))
            || self.file_name == "serve.rs"
    }
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]`-gated items, so the
/// per-file rules can skip them.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Scan the attribute body for `cfg … test` or a bare `test`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut saw_cfg = false;
            let mut saw_not = false;
            let mut saw_test_ident = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if toks[j].is_ident("not") {
                    saw_not = true;
                } else if toks[j].is_ident("test") {
                    saw_test_ident = true;
                }
                j += 1;
            }
            // `#[cfg(not(test))]` gates *production* code — do not mask it.
            let is_test_attr = (saw_cfg && saw_test_ident && !saw_not)
                || (saw_test_ident && j == i + 4 /* #[test] */);
            if is_test_attr {
                // Skip any further attributes, then mask through the end of
                // the gated item: to the matching `}` of its first block, or
                // to a `;` for block-less items (`#[cfg(test)] use …;`).
                let mut k = j;
                while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                    let mut d = 1;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                let mut d = 0usize;
                let mut entered = false;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        d += 1;
                        entered = true;
                    } else if toks[k].is_punct('}') {
                        d = d.saturating_sub(1);
                        if entered && d == 0 {
                            mask[k] = true;
                            k += 1;
                            break;
                        }
                    } else if toks[k].is_punct(';') && !entered {
                        mask[k] = true;
                        k += 1;
                        break;
                    }
                    mask[k] = true;
                    k += 1;
                }
                for m in mask.iter_mut().take(k).skip(i) {
                    *m = true;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn push(
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Allowed>,
    lexed: &Lexed,
    rule: &'static str,
    rule_name: &str,
    file: &str,
    line: u32,
    message: String,
) {
    let v = Violation {
        rule,
        file: file.to_string(),
        line,
        message,
    };
    if lexed.is_allowed(line, rule_name) {
        allowed.push(v);
    } else {
        violations.push(v);
    }
}

/// L1: no panicking constructs in library-crate non-test code.
pub fn check_l1(
    rel_path: &str,
    scope: &FileScope,
    lexed: &Lexed,
    mask: &[bool],
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Allowed>,
) {
    if !scope.is_library_crate() || scope.in_test_tree {
        return;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let method_call = |name: &str| -> bool {
            t.is_ident(name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
        };
        if method_call("unwrap") || method_call("expect") {
            push(
                violations,
                allowed,
                lexed,
                "L1",
                "panic",
                rel_path,
                t.line,
                format!(
                    "`.{}()` in library code can panic; return an error instead \
                     (escape hatch: `// lint: allow(panic)`)",
                    t.text
                ),
            );
        } else if matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && i + 1 < toks.len()
            && toks[i + 1].is_punct('!')
        {
            push(
                violations,
                allowed,
                lexed,
                "L1",
                "panic",
                rel_path,
                t.line,
                format!("`{}!` in library code aborts the caller; return an error", t.text),
            );
        }
    }
}

/// L2: planning must be deterministic and replayable — no wall clock, no OS
/// randomness, outside the serving/bench allowlist.
pub fn check_l2(
    rel_path: &str,
    scope: &FileScope,
    lexed: &Lexed,
    mask: &[bool],
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Allowed>,
) {
    if scope.clock_exempt() || scope.in_test_tree {
        return;
    }
    let strict =
        scope.is_library_crate() && CLOCK_STRICT_FILES.contains(&scope.file_name.as_str());
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if strict && (t.is_ident("Instant") || t.is_ident("SystemTime")) {
            push(
                violations,
                allowed,
                lexed,
                "L2",
                "clock",
                rel_path,
                t.line,
                format!(
                    "`{}` in `{}`: the observability layer must read time only \
                     through the injectable `Clock` (strict L2 file)",
                    t.text, scope.file_name
                ),
            );
            continue;
        }
        let path_call = |head: &str, tail: &str| -> bool {
            t.is_ident(head)
                && i + 3 < toks.len()
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
                && toks[i + 3].is_ident(tail)
        };
        let hit = if path_call("Instant", "now") {
            Some("Instant::now")
        } else if path_call("SystemTime", "now") {
            Some("SystemTime::now")
        } else if t.is_ident("thread_rng") {
            Some("thread_rng")
        } else if t.is_ident("from_entropy") {
            Some("from_entropy")
        } else if path_call("rand", "random") {
            Some("rand::random")
        } else {
            None
        };
        if let Some(what) = hit {
            push(
                violations,
                allowed,
                lexed,
                "L2",
                "clock",
                rel_path,
                t.line,
                format!(
                    "`{what}` breaks deterministic replay; thread a seeded RNG or a \
                     caller-supplied clock (allowed only in serve.rs and bench crates)"
                ),
            );
        }
    }
}

/// L3: while a function holds a guard from `autograd.rs` (or any
/// `RwLock`/`Mutex` guard — the approximation is conservative), it must not
/// acquire a `cache.rs` lock. This is the one cross-module lock pair the
/// serving layer introduced; taking them in this order can deadlock against
/// `process_batch`, which acquires cache locks first.
///
/// Guard acquisition is recognized as a `let` statement whose initializer
/// calls `.value()`, `.read()` or `.write()` **with no arguments** (the
/// autograd guard APIs; argument-taking `io::Read::read`-style calls do not
/// match). The guard is considered live until its enclosing block closes.
pub fn check_l3(
    rel_path: &str,
    scope: &FileScope,
    lexed: &Lexed,
    mask: &[bool],
    violations: &mut Vec<Violation>,
    allowed: &mut Vec<Allowed>,
) {
    // The lock pair lives in core (cache + serve) and nn (autograd).
    let in_scope = matches!(scope.crate_dir.as_deref(), Some("core") | Some("nn"));
    if !in_scope || scope.in_test_tree {
        return;
    }
    let toks = &lexed.toks;
    let mut depth: i32 = 0;
    // Live guards: (block depth at acquisition, line).
    let mut guards: Vec<(i32, u32)> = Vec::new();

    let guard_call_at = |i: usize| -> bool {
        // `. value ( )` / `. read ( )` / `. write ( )`
        i > 0
            && toks[i - 1].is_punct('.')
            && (toks[i].is_ident("value") || toks[i].is_ident("read") || toks[i].is_ident("write"))
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('(')
            && toks[i + 2].is_punct(')')
    };

    let mut i = 0;
    while i < toks.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|&(d, _)| d <= depth);
        } else if t.is_ident("let") {
            // Scan the statement (to the `;` at this depth) for a guard call.
            let stmt_depth = depth;
            let mut j = i + 1;
            let mut d = depth;
            let mut acquires: Option<u32> = None;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct('{') {
                    d += 1;
                } else if tj.is_punct('}') {
                    d -= 1;
                    if d < stmt_depth {
                        break;
                    }
                } else if tj.is_punct(';') && d == stmt_depth {
                    break;
                } else if tj.kind == TokKind::Ident && d == stmt_depth && guard_call_at(j) {
                    // Guard calls nested inside a block expression (`let x =
                    // { let v = n.value(); … };`) drop at that block's `}`,
                    // so only depth-level calls bind a live guard.
                    acquires = Some(tj.line);
                }
                j += 1;
            }
            if let Some(line) = acquires {
                guards.push((stmt_depth, line));
            }
            i = j;
            continue;
        } else if !guards.is_empty() && t.kind == TokKind::Ident {
            // Cache acquisition: `<…cache>.get/insert/len/is_empty(` or `.lock()`.
            let cache_method = t.text.to_ascii_lowercase().ends_with("cache")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct('.')
                && matches!(
                    toks[i + 2].text.as_str(),
                    "get" | "insert" | "len" | "is_empty"
                )
                && i + 3 < toks.len()
                && toks[i + 3].is_punct('(');
            let lock_call = t.is_ident("lock")
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 2 < toks.len()
                && toks[i + 1].is_punct('(')
                && toks[i + 2].is_punct(')');
            if cache_method || lock_call {
                let (_, gline) = guards[guards.len() - 1];
                push(
                    violations,
                    allowed,
                    lexed,
                    "L3",
                    "lock-order",
                    rel_path,
                    t.line,
                    format!(
                        "cache lock acquired while a guard taken on line {gline} is \
                         still live; release the autograd guard first (lock-order: \
                         cache before tape)"
                    ),
                );
            }
        }
        i += 1;
    }
}

/// Cross-file facts L4 needs: error enums, `Error` impls, `From` edges.
#[derive(Debug, Default)]
pub struct ErrorGraph {
    /// `pub enum *Error` declarations: name → (file, line).
    pub enums: HashMap<String, (String, u32)>,
    /// Types with an `impl … Error for T`.
    pub error_impls: HashSet<String>,
    /// `impl From<Src> for Dst` edges.
    pub from_edges: Vec<(String, String)>,
}

impl ErrorGraph {
    /// Harvests facts from one file.
    pub fn collect(&mut self, rel_path: &str, scope: &FileScope, lexed: &Lexed, mask: &[bool]) {
        if !scope.is_library_crate() || scope.in_test_tree {
            return;
        }
        let toks = &lexed.toks;
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            // `pub enum XError`
            if toks[i].is_ident("pub")
                && i + 2 < toks.len()
                && toks[i + 1].is_ident("enum")
                && toks[i + 2].kind == TokKind::Ident
                && toks[i + 2].text.ends_with("Error")
            {
                self.enums.insert(
                    toks[i + 2].text.clone(),
                    (rel_path.to_string(), toks[i + 2].line),
                );
            }
            if !toks[i].is_ident("impl") {
                continue;
            }
            // Find `for` at angle-depth 0 within the impl header.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut for_at = None;
            while j < toks.len() && j < i + 40 {
                let tj = &toks[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if tj.is_punct('{') || tj.is_punct(';') {
                    break;
                } else if tj.is_ident("for") && angle == 0 {
                    for_at = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(f) = for_at else { continue };
            // Target type: last ident after `for` before `{` / `<` / `where`.
            let mut target = None;
            let mut k = f + 1;
            while k < toks.len() {
                let tk = &toks[k];
                if tk.is_punct('{') || tk.is_punct('<') || tk.is_ident("where") {
                    break;
                }
                if tk.kind == TokKind::Ident {
                    target = Some(tk.text.clone());
                }
                k += 1;
            }
            let Some(target) = target else { continue };
            // Trait: tokens between `impl` and `for`.
            let header: Vec<&Tok> = toks[i + 1..f].iter().collect();
            let is_error_trait = header
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident)
                .is_some_and(|t| t.text == "Error");
            if is_error_trait {
                self.error_impls.insert(target);
                continue;
            }
            // `From < Src… >`
            if let Some(fp) = header.iter().position(|t| t.is_ident("From")) {
                // Source type: last ident inside the <...> after From.
                let mut src = None;
                let mut angle = 0i32;
                for t in header.iter().skip(fp + 1) {
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    } else if t.kind == TokKind::Ident && angle >= 1 {
                        src = Some(t.text.clone());
                    }
                }
                if let Some(src) = src {
                    self.from_edges.push((src, target));
                }
            }
        }
    }

    /// Emits L4 violations after all files have been collected.
    pub fn finalize(&self, violations: &mut Vec<Violation>) {
        // Transitive closure of From edges toward MtmlfError.
        let mut reaches: HashSet<String> = HashSet::new();
        reaches.insert("MtmlfError".to_string());
        let mut changed = true;
        while changed {
            changed = false;
            for (src, dst) in &self.from_edges {
                if reaches.contains(dst) && reaches.insert(src.clone()) {
                    changed = true;
                }
            }
        }
        let mut names: Vec<&String> = self.enums.keys().collect();
        names.sort();
        for name in names {
            let (file, line) = &self.enums[name];
            if !self.error_impls.contains(name) {
                violations.push(Violation {
                    rule: "L4",
                    file: file.clone(),
                    line: *line,
                    message: format!("public error enum `{name}` does not implement `std::error::Error`"),
                });
            }
            if !reaches.contains(name) {
                violations.push(Violation {
                    rule: "L4",
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "public error enum `{name}` has no `From` path into `MtmlfError`; \
                         callers cannot propagate it through the unified `mtmlf::Result`"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_l1(path: &str, src: &str) -> (Vec<Violation>, Vec<Allowed>) {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let scope = FileScope::of(path);
        let (mut v, mut a) = (Vec::new(), Vec::new());
        check_l1(path, &scope, &lexed, &mask, &mut v, &mut a);
        (v, a)
    }

    #[test]
    fn l1_flags_unwrap_expect_and_panic_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); unreachable!(); }";
        let (v, _) = run_l1("crates/core/src/model.rs", src);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|v| v.rule == "L1"));
    }

    #[test]
    fn l1_skips_unwrap_or_variants_and_non_library_code() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        let (v, _) = run_l1("crates/core/src/model.rs", src);
        assert!(v.is_empty());
        let src = "fn f() { x.unwrap(); }";
        let (v, _) = run_l1("crates/bench/src/table1.rs", src);
        assert!(v.is_empty(), "bench crate is not a library crate");
        let (v, _) = run_l1("crates/core/tests/integration.rs", src);
        assert!(v.is_empty(), "integration tests are exempt");
    }

    #[test]
    fn l1_skips_cfg_test_modules() {
        let src = r#"
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); z.expect("fine in tests"); }
            }
        "#;
        let (v, _) = run_l1("crates/nn/src/matrix.rs", src);
        assert_eq!(v.len(), 1, "only the library-code unwrap counts: {v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn l1_escape_hatch_reclassifies_not_hides() {
        let src = "fn f() { x.unwrap(); // lint: allow(panic)\n y.unwrap(); }";
        let (v, a) = run_l1("crates/core/src/model.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].line, 1);
    }

    fn run_l2(path: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let scope = FileScope::of(path);
        let (mut v, mut a) = (Vec::new(), Vec::new());
        check_l2(path, &scope, &lexed, &mask, &mut v, &mut a);
        v
    }

    #[test]
    fn l2_flags_clock_and_randomness_outside_allowlist() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); let r = thread_rng(); }";
        assert_eq!(run_l2("crates/core/src/train.rs", src).len(), 3);
        assert!(run_l2("crates/core/src/serve.rs", src).is_empty());
        assert!(run_l2("crates/bench/src/table1.rs", src).is_empty());
        assert!(run_l2("crates/core/tests/t.rs", src).is_empty());
    }

    #[test]
    fn l2_does_not_flag_instant_elapsed_or_duration() {
        let src = "fn f(t: Instant) -> Duration { t.elapsed() }";
        assert!(run_l2("crates/core/src/train.rs", src).is_empty());
    }

    #[test]
    fn l2_strict_files_flag_any_instant_or_systemtime_token() {
        // In trace.rs / metrics.rs even a type annotation or a stored-stamp
        // `.elapsed()` — legal elsewhere — is a violation.
        let src = "fn f(t: Instant) -> Duration { t.elapsed() }";
        let v = run_l2("crates/core/src/trace.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("injectable `Clock`"));
        let src = "struct S { at: SystemTime }";
        assert_eq!(run_l2("crates/core/src/metrics.rs", src).len(), 1);
        // Same tokens in a non-strict library file keep the ordinary rules.
        assert!(run_l2("crates/core/src/train.rs", "struct S { at: SystemTime }").is_empty());
        // Strict files never double-report `Instant::now` (one hit, not two).
        let v = run_l2("crates/core/src/trace.rs", "fn f() { Instant::now(); }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn l2_strict_files_accept_injected_clock_code() {
        let src = r#"
            pub struct Tracer { clock: Arc<dyn Clock> }
            impl Tracer {
                fn now(&self) -> Duration { self.clock.now() }
            }
        "#;
        assert!(run_l2("crates/core/src/trace.rs", src).is_empty());
        assert!(run_l2("crates/core/src/metrics.rs", src).is_empty());
    }

    fn run_l3(path: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        let scope = FileScope::of(path);
        let (mut v, mut a) = (Vec::new(), Vec::new());
        check_l3(path, &scope, &lexed, &mask, &mut v, &mut a);
        v
    }

    #[test]
    fn l3_flags_cache_acquisition_under_live_guard() {
        let src = r#"
            fn bad(&self) {
                let v = self.node.value();
                self.cache.get(&key);
            }
        "#;
        let v = run_l3("crates/core/src/model.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L3");
    }

    #[test]
    fn l3_allows_cache_access_after_guard_scope_closes() {
        let src = r#"
            fn good(&self) {
                let x = {
                    let v = self.node.value();
                    v.rows()
                };
                self.cache.get(&key);
            }
            fn also_good(&self) {
                self.cache.insert(key, value);
                let v = self.node.read();
            }
        "#;
        assert!(run_l3("crates/core/src/serve.rs", src).is_empty());
    }

    #[test]
    fn l3_ignores_argument_taking_read_write_calls() {
        let src = r#"
            fn io(&self) {
                let n = reader.read_exact(&mut buf);
                let m = file.write(&buf[..]);
                self.cache.get(&key);
            }
        "#;
        assert!(run_l3("crates/core/src/persist.rs", src).is_empty());
    }

    #[test]
    fn l4_requires_error_impl_and_from_path() {
        let mut graph = ErrorGraph::default();
        let files = [
            (
                "crates/storage/src/error.rs",
                "pub enum GoodError {}\nimpl std::error::Error for GoodError {}\nimpl From<GoodError> for MidError { fn from(e: GoodError) -> Self { todo() } }",
            ),
            (
                "crates/query/src/error.rs",
                "pub enum MidError {}\nimpl std::error::Error for MidError {}\nimpl From<MidError> for MtmlfError { fn from(e: MidError) -> Self { todo() } }",
            ),
            (
                "crates/exec/src/error.rs",
                "pub enum OrphanError {}\n",
            ),
            (
                "crates/core/src/error.rs",
                "pub enum MtmlfError {}\nimpl std::error::Error for MtmlfError {}",
            ),
        ];
        for (path, src) in files {
            let lexed = lex(src);
            let mask = test_mask(&lexed.toks);
            graph.collect(path, &FileScope::of(path), &lexed, &mask);
        }
        let mut v = Vec::new();
        graph.finalize(&mut v);
        // OrphanError: missing Error impl AND missing From path. Good/Mid
        // reach MtmlfError transitively.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.message.contains("OrphanError")));
    }
}

//! A hand-rolled Rust lexer, just deep enough for invariant checking.
//!
//! The lexer turns source text into a flat token stream with line numbers,
//! discarding comments and whitespace but *harvesting* lint directives
//! (`// lint: allow(rule)`) from them. It understands the parts of Rust's
//! lexical grammar that would otherwise produce false positives:
//!
//! * line and (nested) block comments,
//! * string / byte-string / raw-string literals (`r#"…"#` with any number
//!   of hashes), so an `unwrap()` inside a string never counts,
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#type`).
//!
//! It deliberately does **not** build a syntax tree: the rules in
//! [`crate::rules`] are token-pattern matchers with a little brace-depth
//! bookkeeping, which keeps the whole tool dependency-free and fast.

use std::collections::HashMap;

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, dehashed).
    Ident,
    /// A single punctuation character (`.`, `(`, `{`, `!`, …).
    Punct,
    /// String, byte-string, or raw-string literal (text dropped).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (empty for string literals; the character for puncts).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A lexed file: the token stream plus harvested lint directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// `line -> rules` from `// lint: allow(rule)` comments. A directive
    /// applies to the line it sits on; when the comment is alone on its
    /// line it also applies to the following line.
    pub allows: HashMap<u32, Vec<String>>,
    /// Lines carrying a `// lint: hot-path` marker. The marker covers the
    /// next `fn` item (see [`crate::ir`]); like `allow`, a marker alone on
    /// its line also registers the following line.
    pub hot_markers: std::collections::HashSet<u32>,
}

impl Lexed {
    /// Whether `rule` is allowed on `line` by an escape-hatch comment.
    pub fn is_allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Whether a comment body carries the `lint: hot-path` region marker.
fn parse_hot_path(comment: &str) -> bool {
    comment
        .find("lint:")
        .is_some_and(|at| comment[at + 5..].trim_start().starts_with("hot-path"))
}

/// Parses `lint: allow(a, b)` out of a comment body, if present.
fn parse_allow(comment: &str) -> Vec<String> {
    let Some(at) = comment.find("lint:") else {
        return Vec::new();
    };
    let rest = comment[at + 5..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Vec::new();
    };
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Lexes `src` into tokens and lint directives.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether anything other than whitespace appeared on the
    // current line before the position at hand (for "comment alone on its
    // line" detection).
    let mut line_has_code = false;

    // Consumes a quoted string starting at the opening `"`; returns the
    // index just past the closing quote. Tracks newlines.
    fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
        debug_assert_eq!(bytes[i], b'"');
        i += 1;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                let rules = parse_allow(comment);
                if !rules.is_empty() {
                    out.allows.entry(line).or_default().extend(rules.clone());
                    if !line_has_code {
                        out.allows.entry(line + 1).or_default().extend(rules);
                    }
                }
                if parse_hot_path(comment) {
                    out.hot_markers.insert(line);
                    if !line_has_code {
                        out.hot_markers.insert(line + 1);
                    }
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                line_has_code = true;
                let l = line;
                i = skip_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: l,
                });
            }
            b'\'' => {
                line_has_code = true;
                // Char literal vs lifetime. `'\x'`-style and `'a'` are
                // chars; `'a` followed by non-quote is a lifetime.
                let l = line;
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: l,
                    });
                } else {
                    // Find the extent of an identifier-ish run after the quote.
                    let mut j = i + 1;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'\'' && j > i + 1 {
                        // 'a' — char literal (multi-byte chars also land here
                        // via the alphanumeric test failing; handle below).
                        i = j + 1;
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line: l,
                        });
                    } else if j == i + 1 && j < bytes.len() && bytes[j] != b'\'' {
                        // Non-identifier char like '+' or a multi-byte char:
                        // scan to the closing quote.
                        let mut k = j;
                        while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
                            k += 1;
                        }
                        i = (k + 1).min(bytes.len());
                        out.toks.push(Tok {
                            kind: TokKind::Char,
                            text: String::new(),
                            line: l,
                        });
                    } else {
                        // Lifetime: consume the quote + identifier.
                        let text = src[i + 1..j].to_string();
                        i = j;
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text,
                            line: l,
                        });
                    }
                }
            }
            b'r' | b'b' => {
                line_has_code = true;
                let l = line;
                // Raw strings r"…", r#"…"#; byte strings b"…", br#"…"#;
                // byte chars b'…'; raw identifiers r#ident; or a plain
                // identifier starting with r/b.
                let mut j = i + 1;
                let is_b = c == b'b';
                if is_b && j < bytes.len() && bytes[j] == b'r' {
                    j += 1; // br…
                }
                let raw_candidate = c == b'r' || (is_b && j > i + 1);
                let mut hashes = 0usize;
                let mut k = j;
                while raw_candidate && k < bytes.len() && bytes[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if raw_candidate && k < bytes.len() && bytes[k] == b'"' {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    let mut m = k + 1;
                    'scan: while m < bytes.len() {
                        if bytes[m] == b'\n' {
                            line += 1;
                        } else if bytes[m] == b'"' {
                            let mut h = 0;
                            while h < hashes && m + 1 + h < bytes.len() && bytes[m + 1 + h] == b'#'
                            {
                                h += 1;
                            }
                            if h == hashes {
                                m += 1 + hashes;
                                break 'scan;
                            }
                        }
                        m += 1;
                    }
                    i = m;
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: l,
                    });
                } else if c == b'r'
                    && hashes == 1
                    && k < bytes.len()
                    && (bytes[k].is_ascii_alphabetic() || bytes[k] == b'_')
                {
                    // Raw identifier r#ident.
                    let start = k;
                    let mut m = k;
                    while m < bytes.len() && (bytes[m].is_ascii_alphanumeric() || bytes[m] == b'_')
                    {
                        m += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..m].to_string(),
                        line: l,
                    });
                    i = m;
                } else if is_b && i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                    // Byte char b'…'.
                    let mut m = i + 2;
                    if m < bytes.len() && bytes[m] == b'\\' {
                        m += 1;
                    }
                    while m < bytes.len() && bytes[m] != b'\'' {
                        m += 1;
                    }
                    i = (m + 1).min(bytes.len());
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: l,
                    });
                } else if is_b && i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                    // Byte string b"…".
                    i = skip_string(bytes, i + 1, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: l,
                    });
                } else {
                    // Plain identifier starting with r or b.
                    let start = i;
                    let mut m = i;
                    while m < bytes.len() && (bytes[m].is_ascii_alphanumeric() || bytes[m] == b'_')
                    {
                        m += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[start..m].to_string(),
                        line: l,
                    });
                    i = m;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                line_has_code = true;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                line_has_code = true;
                let start = i;
                let mut seen_dot = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.'
                        && !seen_dot
                        && i + 1 < bytes.len()
                        && bytes[i + 1].is_ascii_digit()
                    {
                        seen_dot = true;
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && i > start
                        && matches!(bytes[i - 1], b'e' | b'E')
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                line_has_code = true;
                // Multi-byte UTF-8 punctuation is split into bytes; the
                // rules only inspect ASCII puncts, so that is harmless.
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let src = r##"
            // x.unwrap()
            /* panic!("no") /* nested */ still comment */
            let s = "call .unwrap() here";
            let r = r#"panic!("raw")"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nafter();";
        let lexed = lex(src);
        let after = lexed.toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn allow_directives_are_harvested() {
        let src = "x.unwrap(); // lint: allow(panic)\n// lint: allow(clock)\nInstant::now();\n";
        let lexed = lex(src);
        assert!(lexed.is_allowed(1, "panic"));
        assert!(!lexed.is_allowed(1, "clock"));
        // Comment alone on line 2 covers line 3 too.
        assert!(lexed.is_allowed(2, "clock"));
        assert!(lexed.is_allowed(3, "clock"));
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let lexed = lex("let r#type = b\"bytes\"; let y = br#\"raw\"#; let z = b'x';");
        assert!(lexed.toks.iter().any(|t| t.is_ident("type")));
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            2
        );
        assert_eq!(
            lexed
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let lexed = lex("let a = 1.5e-3; for i in 0..10 {}");
        let nums: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "0", "10"]);
    }
}

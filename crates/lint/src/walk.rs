//! Workspace traversal: every `.rs` file, deterministic order, no deps.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", ".github"];

/// Collects every `.rs` file under `root`, sorted by path for stable
/// reports and baselines.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (report + baseline keys).
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

//! `mtmlf-lint` CLI: static invariant pass + serving-path model checker.
//!
//! ```text
//! cargo run -p mtmlf-lint                      # report only (exit 0)
//! cargo run -p mtmlf-lint -- --check           # fail on new violations
//! cargo run -p mtmlf-lint -- --update-baseline # ratchet lint.baseline
//! cargo run -p mtmlf-lint -- --root <path>     # lint another workspace
//! ```
//!
//! Always writes `results/LINT.json`. `--check` exits nonzero when any
//! `(rule, file)` violation count exceeds the checked-in `lint.baseline`,
//! or when the bounded-interleaving model suite finds an invariant
//! failure.

#![forbid(unsafe_code)]

use mtmlf_lint::{analyze_workspace, baseline::Baseline, interleave};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    check: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        check: false,
        update_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--update-baseline" => args.update_baseline = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a path".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: mtmlf-lint [--check] [--update-baseline] [--root <path>]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut report = match analyze_workspace(&args.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mtmlf-lint: cannot walk {}: {e}", args.root.display());
            return ExitCode::FAILURE;
        }
    };

    // Baseline ratchet.
    let baseline_path = args.root.join("lint.baseline");
    let mut baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::default(),
    };
    if args.update_baseline {
        let rendered = Baseline::render(&report.violations);
        if let Err(e) = fs::write(&baseline_path, &rendered) {
            eprintln!("mtmlf-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("baseline updated: {}", baseline_path.display());
        baseline = Baseline::parse(&rendered);
    }
    let cmp = baseline.compare(&report.violations);
    let new = cmp.new.clone();
    report.absorb(cmp);

    // Serving-path model suite.
    match interleave::run_model_suite() {
        Ok(models) => report.models = models,
        Err((model, message)) => report.model_failure = Some((model, message)),
    }

    // Human diagnostics: new violations in full, tolerated debt as counts.
    for v in &new {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    let counts = report.rule_counts();
    let total: u64 = counts.values().sum();
    let per_rule: Vec<String> = mtmlf_lint::report::ALL_RULES
        .iter()
        .map(|r| format!("{r}={}", counts.get(*r).copied().unwrap_or(0)))
        .collect();
    println!(
        "mtmlf-lint: {} files; {} ({} total, {} beyond baseline, {} allowed, {} advisory)",
        report.files_scanned,
        per_rule.join(" "),
        total,
        report.new_violations,
        report.allowed.len(),
        report.advisory.len(),
    );
    println!(
        "  ir: {} fns, {} calls, {} guard sites, {} channels, {} spawns",
        report.ir_stats.functions,
        report.ir_stats.calls,
        report.ir_stats.guards,
        report.ir_stats.channels,
        report.ir_stats.spawns,
    );
    for (rule, file, budget, actual) in &report.improved {
        println!("  tightenable: {rule} {file} baseline {budget} > actual {actual}");
    }
    for (rule, file, budget) in &report.stale_baseline {
        println!("  stale baseline entry: {rule} {file} ({budget} tolerated, 0 present)");
    }
    for (name, stats) in &report.models {
        println!(
            "  model {name}: {} schedules, {} steps, all invariants hold",
            stats.schedules, stats.steps
        );
    }
    if let Some((model, message)) = &report.model_failure {
        eprintln!("model {model} FAILED: {message}");
    }

    // Machine-readable reports: LINT.json + SARIF for CI artifact upload.
    let results_dir = args.root.join("results");
    let json_path = results_dir.join("LINT.json");
    let sarif_path = results_dir.join("lint.sarif");
    if let Err(e) = fs::create_dir_all(&results_dir)
        .and_then(|()| fs::write(&json_path, report.to_json()))
        .and_then(|()| fs::write(&sarif_path, report.to_sarif()))
    {
        eprintln!("mtmlf-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} and {}", json_path.display(), sarif_path.display());

    if args.check && report.failed() {
        eprintln!(
            "mtmlf-lint --check FAILED: {} new violation(s){}",
            report.new_violations,
            if report.model_failure.is_some() {
                " + model invariant failure"
            } else {
                ""
            }
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! A lightweight syntactic IR for whole-program concurrency analysis.
//!
//! The L1–L4 rules are single-file token matchers. The concurrency passes
//! (G1 lock-order cycles, G2 blocking-under-guard, L5 hot-path
//! allocations, L6 unbounded channels — see [`crate::concurrency`]) need a
//! view of the *program*: which functions exist, who calls whom, where
//! lock guards are acquired and how long they live, where channels are
//! built and drained, where threads are spawned. This module extracts
//! that view from the lexed token stream of each file.
//!
//! It is a *syntactic* IR: no types, no name resolution beyond identifier
//! text. The approximations (documented per extraction rule below and in
//! DESIGN.md §13) are chosen so the downstream passes err on the side
//! that the ratcheting baseline and `// lint: allow(...)` hatches can
//! absorb:
//!
//! * **Guard lifetimes** are approximated from statement shape: a
//!   `let g = x.lock()…;` whose initializer ends after poison adapters
//!   (`unwrap` / `expect` / `unwrap_or_else` / `map_err` / `?`) binds a
//!   guard live until its enclosing block closes (or an explicit
//!   `drop(g)`); a lock call with further method calls chained onto it
//!   (`x.lock().unwrap().get(k)`) is a temporary live to the end of the
//!   statement; a lock call in an `if let` / `while let` / `match` header
//!   is live until the construct's block closes.
//! * **Lock identity** is the field name for `self.<field>.lock()`-style
//!   chains and for `UPPER_STATIC.lock()` (a *global* identity shared
//!   across files), and a `{file}::{fn}::{var}` scoped identity for bare
//!   local receivers so unrelated locals named `m` never unify. `.value()`
//!   guards (the autograd tape API) all map to the single global identity
//!   `autograd-tape`.
//! * **Guard-returning functions** (return type mentions `*Guard`) are
//!   recognized so wrappers like `lock_unpoisoned(&self.inboxes)` count
//!   as acquisitions of `inboxes` at the call site.
//! * **Call edges** are by bare callee name; resolution against the
//!   function index happens in the analysis pass.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::rules::FileScope;

/// Global identity assigned to every `.value()` (autograd tape) guard.
pub const AUTOGRAD_TAPE_LOCK: &str = "autograd-tape";

/// One concurrency-relevant event inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A lock acquisition: `.lock()` / `.read()` / `.write()` / `.value()`.
    LockAcquire {
        /// Lock identity (global field/static name or scoped local).
        lock: String,
        /// Exclusive token index where the guard's approximate life ends.
        until: usize,
        /// Whether the guard was `let`-bound (vs. a statement temporary).
        bound: bool,
    },
    /// Blocking `.recv()`.
    Recv,
    /// Blocking `.recv_timeout(..)` / `.recv_deadline(..)`.
    RecvTimeout,
    /// Blocking no-arg `.join()` (thread join; `Path::join` takes args).
    Join,
    /// `sleep(..)` / `thread::sleep(..)`.
    Sleep,
    /// `.send(..)` — blocking only when the channel is bounded; the
    /// analysis consults the file's `bounded_senders`.
    Send {
        /// Receiver identifier the send was invoked on (`tx` in `tx.send`).
        sender: String,
    },
    /// Construction of an unbounded channel (`unbounded()`, `mpsc::channel()`).
    ChannelUnbounded,
    /// Construction of a bounded channel (`bounded(n)`, `sync_channel(n)`).
    ChannelBounded,
    /// A heap allocation site (L5 hot-path catalog).
    Alloc {
        /// What allocated, e.g. `Vec::new` or `.clone()`.
        what: String,
    },
    /// A thread spawn site (`spawn(..)` / `.spawn(..)`).
    Spawn,
}

/// An event with its position.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Token index in the file's token stream.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`foo` for `foo(..)` and for `x.foo(..)`).
    pub callee: String,
    /// Whether this was a method call (`.foo(..)`).
    pub method: bool,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Lock identity derived from the first `self.<field>` / local chain in
    /// the argument list, for calls to guard-returning wrappers.
    pub arg_lock: Option<String>,
    /// Approximate guard live-range end if this call returns a guard
    /// (computed with the same statement-shape rules as direct locks).
    pub until: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnIr {
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (inclusive `{`, inclusive `}`).
    pub body: (usize, usize),
    /// Whether a `// lint: hot-path` marker covers this function.
    pub hot: bool,
    /// Whether the return type mentions a `*Guard` type.
    pub returns_guard: bool,
    /// Concurrency events in body order.
    pub events: Vec<Event>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
}

/// The IR of one file.
#[derive(Debug, Clone, Default)]
pub struct FileIr {
    /// Workspace-relative path.
    pub file: String,
    /// Function items.
    pub fns: Vec<FnIr>,
    /// Sender variable names bound from a bounded-channel constructor
    /// (`let (tx, rx) = bounded(n)`), file-wide.
    pub bounded_senders: std::collections::HashSet<String>,
}

/// Aggregate counts over a set of [`FileIr`]s (reported in LINT.json).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IrStats {
    /// Function items extracted.
    pub functions: usize,
    /// Call sites recorded.
    pub calls: usize,
    /// Guard acquisitions (direct lock calls).
    pub guards: usize,
    /// Channel construction sites.
    pub channels: usize,
    /// Thread-spawn sites.
    pub spawns: usize,
}

impl IrStats {
    /// Tallies one file into the stats.
    pub fn absorb(&mut self, ir: &FileIr) {
        self.functions += ir.fns.len();
        for f in &ir.fns {
            self.calls += f.calls.len();
            for e in &f.events {
                match e.kind {
                    EventKind::LockAcquire { .. } => self.guards += 1,
                    EventKind::ChannelUnbounded | EventKind::ChannelBounded => {
                        self.channels += 1
                    }
                    EventKind::Spawn => self.spawns += 1,
                    _ => {}
                }
            }
        }
    }
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALLEE_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "let", "fn", "move",
    "in", "as", "ref", "mut", "else", "break", "continue", "where", "impl",
    "dyn", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "unsafe", "extern", "crate", "super", "Some", "Ok", "Err",
    "None", "Box", "Vec", "String", "Arc", "Rc",
];

/// Allocation-constructor paths recognized for L5 (head, tail).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("Arc", "new"),
    ("Rc", "new"),
];

/// Allocating method calls recognized for L5.
const ALLOC_METHODS: &[&str] =
    &["to_vec", "clone", "to_string", "to_owned", "to_boxed", "collect"];

/// Allocating macros recognized for L5.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn is_upper_ident(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Extracts the IR of one lexed file. `mask` marks test-gated tokens
/// (skipped entirely, matching the per-file rules).
pub fn extract(rel_path: &str, _scope: &FileScope, lexed: &Lexed, mask: &[bool]) -> FileIr {
    let toks = &lexed.toks;
    let mut ir = FileIr {
        file: rel_path.to_string(),
        ..FileIr::default()
    };

    // Pass 0: matching-brace map over unmasked tokens, so guard lifetimes
    // can point at the end of their enclosing block.
    let mut block_close = vec![toks.len(); toks.len()]; // tok -> innermost enclosing block's `}`
    {
        let mut stack: Vec<usize> = Vec::new();
        let mut opens: Vec<Vec<usize>> = Vec::new(); // tokens inside each open block
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            if toks[i].is_punct('{') {
                stack.push(i);
                opens.push(Vec::new());
            } else if toks[i].is_punct('}') {
                if stack.pop().is_some() {
                    if let Some(members) = opens.pop() {
                        for m in members {
                            block_close[m] = i;
                        }
                    }
                }
            } else if let Some(members) = opens.last_mut() {
                members.push(i);
            }
        }
    }

    // Forward scan helper: end of the current statement-or-construct
    // starting at token `i` (exclusive token index). Stops at `;` at the
    // starting nesting level, at the close of a block opened at that level
    // (`match`/`if let` headers), or at the enclosing block's `}`.
    let construct_end = |start: usize| -> usize {
        let mut d = 0i32;
        let mut j = start;
        while j < toks.len() {
            if mask[j] {
                j += 1;
                continue;
            }
            let t = &toks[j];
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                if d == 0 {
                    return j; // enclosing block closed
                }
                d -= 1;
                if d == 0 {
                    // A construct-level block closed (match / if / loop
                    // body). Continue through `else` chains only.
                    let next = next_unmasked(toks, mask, j + 1);
                    if !next.is_some_and(|n| toks[n].is_ident("else")) {
                        return j;
                    }
                }
            } else if t.is_punct(';') && d == 0 {
                return j;
            }
            j += 1;
        }
        toks.len()
    };

    // Pass 1: function items. A `fn` keyword followed by an identifier
    // opens an item; the signature runs to the body `{` (or `;` for trait
    // declarations, which have no body and are skipped).
    let mut i = 0;
    let mut fn_spans: Vec<(usize, usize, usize)> = Vec::new(); // (fn kw, body open, body close)
    let mut headers: Vec<(String, u32, bool)> = Vec::new(); // (name, line, returns_guard)
    while i < toks.len() {
        if mask[i] || !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_at) = next_unmasked(toks, mask, i + 1) else {
            break;
        };
        if toks[name_at].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[name_at].text.clone();
        let line = toks[i].line;
        // Scan the signature for the body `{` or a trailing `;`.
        let mut j = name_at + 1;
        let mut saw_arrow = false;
        let mut returns_guard = false;
        let mut paren = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            if mask[j] {
                j += 1;
                continue;
            }
            let t = &toks[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('-')
                && j + 1 < toks.len()
                && toks[j + 1].is_punct('>')
                && paren == 0
            {
                saw_arrow = true;
            } else if t.kind == TokKind::Ident && saw_arrow && t.text.ends_with("Guard") {
                returns_guard = true;
            } else if t.is_punct('{') && paren == 0 {
                body_open = Some(j);
                break;
            } else if t.is_punct(';') && paren == 0 {
                break; // trait method declaration — no body
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = block_close_of(toks, mask, open);
        fn_spans.push((i, open, close));
        headers.push((name, line, returns_guard));
        i = name_at + 1; // nested fns re-enter the scan inside this body
    }

    // Hot-path markers cover the *next* `fn` item: the fn's keyword line
    // must be within a small window below the marker (attributes may sit
    // between) with no other fn item starting in between.
    let fn_lines: Vec<u32> = headers.iter().map(|&(_, l, _)| l).collect();
    let hot_for = |fn_line: u32| -> bool {
        lexed.hot_markers.iter().any(|&m| {
            m <= fn_line
                && fn_line - m <= 4
                && !fn_lines.iter().any(|&l| l >= m && l < fn_line)
        })
    };

    // Pass 2: per-function event/call extraction. Tokens inside a nested
    // fn belong to the innermost enclosing item.
    for (idx, &(_kw, open, close)) in fn_spans.iter().enumerate() {
        let (name, line, returns_guard) = headers[idx].clone();
        let nested: Vec<(usize, usize)> = fn_spans
            .iter()
            .enumerate()
            .filter(|&(k, &(kw2, _, c2))| k != idx && kw2 > open && c2 <= close)
            .map(|(_, &(kw2, _, c2))| (kw2, c2))
            .collect();
        let mut f = FnIr {
            name,
            line,
            body: (open, close),
            hot: hot_for(line),
            returns_guard,
            events: Vec::new(),
            calls: Vec::new(),
        };
        // Closures handed to another thread (`spawn(move || …)`) or stored
        // for later (`Box::new(|…| …)`, the autograd backward callbacks) do
        // not run under the spawning function's guards — mask their bodies
        // so their events/calls are not attributed here. The `spawn` /
        // `Box::new` tokens themselves sit outside the range, so the Spawn
        // and Alloc events are still recorded. Trade-off: locks taken
        // *inside* such closures are invisible to G1/G2 (DESIGN.md §13).
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        {
            let mut t = open + 1;
            while t + 1 < close.min(toks.len()) {
                let is_deferral = !mask[t]
                    && toks[t + 1].is_punct('(')
                    && (toks[t].is_ident("spawn")
                        || (toks[t].is_ident("new")
                            && t >= 3
                            && toks[t - 1].is_punct(':')
                            && toks[t - 2].is_punct(':')
                            && toks[t - 3].is_ident("Box")));
                if is_deferral {
                    if let Some(a) = next_unmasked(toks, mask, t + 2) {
                        if toks[a].is_ident("move") || toks[a].is_punct('|') {
                            let mut d = 0i32;
                            let mut j = t + 1;
                            while j < toks.len() {
                                if toks[j].is_punct('(') {
                                    d += 1;
                                } else if toks[j].is_punct(')') {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            deferred.push((t + 2, j));
                            t = j + 1;
                            continue;
                        }
                    }
                }
                t += 1;
            }
        }
        let mut t = open + 1;
        while t < close.min(toks.len()) {
            if mask[t] {
                t += 1;
                continue;
            }
            if let Some(&(_, c2)) = nested.iter().find(|&&(kw2, c2)| t >= kw2 && t <= c2) {
                t = c2 + 1; // skip nested fn bodies
                continue;
            }
            if let Some(&(_, e2)) = deferred.iter().find(|&&(s2, e2)| t >= s2 && t <= e2) {
                t = e2 + 1; // skip deferred-closure bodies
                continue;
            }
            extract_at(
                &mut ir,
                &mut f,
                toks,
                mask,
                t,
                &block_close,
                &construct_end,
                rel_path,
            );
            t += 1;
        }
        ir.fns.push(f);
    }
    ir
}

fn next_unmasked(toks: &[Tok], mask: &[bool], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !mask[i] {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Matching `}` for the `{` at `open` (or end of stream).
fn block_close_of(toks: &[Tok], mask: &[bool], open: usize) -> usize {
    let mut d = 0i32;
    for j in open..toks.len() {
        if mask[j] {
            continue;
        }
        if toks[j].is_punct('{') {
            d += 1;
        } else if toks[j].is_punct('}') {
            d -= 1;
            if d == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Walks the receiver chain left from the token before `.method` at `dot`:
/// returns the chain of identifiers right-to-left (`self.a.b.lock()` →
/// `["b", "a", "self"]`). Call results (`self.shard(k).write()`) contribute
/// the method name.
fn receiver_chain(toks: &[Tok], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot as isize - 1;
    loop {
        if j < 0 {
            break;
        }
        let ju = j as usize;
        if toks[ju].is_punct(')') {
            // Skip the balanced parens of a call, then expect its name.
            let mut d = 0i32;
            let mut k = j;
            while k >= 0 {
                let ku = k as usize;
                if toks[ku].is_punct(')') {
                    d += 1;
                } else if toks[ku].is_punct('(') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            j = k - 1;
            continue;
        }
        if toks[ju].kind != TokKind::Ident {
            break;
        }
        chain.push(toks[ju].text.clone());
        // Continue only through `.` or `::` links.
        if ju >= 1 && toks[ju - 1].is_punct('.') {
            j = ju as isize - 2;
        } else if ju >= 2 && toks[ju - 1].is_punct(':') && toks[ju - 2].is_punct(':') {
            j = ju as isize - 3;
        } else {
            break;
        }
    }
    chain
}

/// Lock identity from a receiver chain (see module docs).
fn lock_identity(chain: &[String], file: &str, func: &str) -> String {
    match chain {
        [] => format!("{file}::{func}::<expr>"),
        [local] if !is_upper_ident(local) => format!("{file}::{func}::{local}"),
        chain => {
            let leftmost = chain.last().map(String::as_str).unwrap_or("");
            if leftmost == "self" || is_upper_ident(leftmost) || chain.len() >= 2 {
                chain[0].clone() // field / static name: global identity
            } else {
                format!("{file}::{func}::{}", chain[0])
            }
        }
    }
}

/// Guard live-range end for an acquisition whose callee identifier sits at
/// `i`: `let`-bound guards live to the enclosing block's `}` (minus an
/// explicit `drop(var)`); temporaries live to the end of their
/// statement-or-construct.
fn guard_live_end(
    toks: &[Tok],
    mask: &[bool],
    i: usize,
    block_close: &[usize],
    construct_end: &dyn Fn(usize) -> usize,
) -> (usize, bool) {
    // Find the close paren of the call at `i` (`i` is the method ident).
    let mut j = i + 1;
    let mut d = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('(') {
            d += 1;
        } else if toks[j].is_punct(')') {
            d -= 1;
            if d == 0 {
                break;
            }
        }
        j += 1;
    }
    // Walk through poison/err adapters chained onto the call.
    let mut k = j + 1;
    loop {
        let Some(n) = next_unmasked(toks, mask, k) else {
            break;
        };
        if toks[n].is_punct('?') {
            k = n + 1;
            continue;
        }
        if toks[n].is_punct('.')
            && n + 1 < toks.len()
            && matches!(
                toks[n + 1].text.as_str(),
                "unwrap" | "expect" | "unwrap_or_else" | "map_err"
            )
        {
            // Skip the adapter's balanced parens.
            let mut m = n + 2;
            let mut dd = 0i32;
            while m < toks.len() {
                if toks[m].is_punct('(') {
                    dd += 1;
                } else if toks[m].is_punct(')') {
                    dd -= 1;
                    if dd == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        break;
    }
    let after = next_unmasked(toks, mask, k);
    match after {
        Some(n) if toks[n].is_punct(';') => {
            // `let g = x.lock().unwrap();` — bound until block close.
            (block_close.get(i).copied().unwrap_or(toks.len()), true)
        }
        _ => (construct_end(i), false),
    }
}

/// Finds a `drop(<name>)` call in `[start, end)` and returns its index.
fn find_drop(toks: &[Tok], mask: &[bool], start: usize, end: usize, name: &str) -> Option<usize> {
    let mut j = start;
    while j + 3 < toks.len().min(end) {
        if !mask[j]
            && toks[j].is_ident("drop")
            && toks[j + 1].is_punct('(')
            && toks[j + 2].is_ident(name)
            && toks[j + 3].is_punct(')')
        {
            return Some(j);
        }
        j += 1;
    }
    None
}

/// First `self.<field>` or lone-identifier chain in the argument list of
/// the call whose name token is at `i`; used to attribute guard-returning
/// wrapper calls to a lock.
fn arg_lock_of(toks: &[Tok], i: usize, file: &str, func: &str) -> Option<String> {
    let open = i + 1;
    if open >= toks.len() || !toks[open].is_punct('(') {
        return None;
    }
    let mut d = 0i32;
    let mut j = open;
    let mut chain: Vec<String> = Vec::new();
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            d += 1;
        } else if t.is_punct(')') {
            d -= 1;
            if d == 0 {
                break;
            }
        } else if d == 1 && t.kind == TokKind::Ident {
            chain.push(t.text.clone());
            // Stop the chain at the first non-`.` link.
            let mut k = j + 1;
            while k + 1 < toks.len() && toks[k].is_punct('.') && toks[k + 1].kind == TokKind::Ident
            {
                chain.push(toks[k + 1].text.clone());
                k += 2;
            }
            if chain.first().map(String::as_str) == Some("self") && chain.len() >= 2 {
                return chain.last().cloned();
            }
            if chain.len() == 1 {
                let only = &chain[0];
                if is_upper_ident(only) {
                    return Some(only.clone());
                }
                return Some(format!("{file}::{func}::{only}"));
            }
            return chain.last().cloned();
        }
        j += 1;
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn extract_at(
    ir: &mut FileIr,
    f: &mut FnIr,
    toks: &[Tok],
    mask: &[bool],
    t: usize,
    block_close: &[usize],
    construct_end: &dyn Fn(usize) -> usize,
    file: &str,
) {
    let tok = &toks[t];
    if tok.kind != TokKind::Ident {
        return;
    }
    let prev_dot = t > 0 && toks[t - 1].is_punct('.');
    let next_open =
        t + 1 < toks.len() && toks[t + 1].is_punct('(');
    let next_noarg = next_open && t + 2 < toks.len() && toks[t + 2].is_punct(')');
    let line = tok.line;

    // --- lock acquisitions -------------------------------------------
    if prev_dot && next_noarg && matches!(tok.text.as_str(), "lock" | "read" | "write" | "value")
    {
        let chain = receiver_chain(toks, t - 1);
        let lock = if tok.text == "value" {
            AUTOGRAD_TAPE_LOCK.to_string()
        } else {
            lock_identity(&chain, file, &f.name)
        };
        let (mut until, bound) = guard_live_end(toks, mask, t, block_close, construct_end);
        if bound {
            // `let g = …` — honor an explicit drop(g).
            if let Some(name_at) = let_binding_name(toks, mask, t) {
                if let Some(d) = find_drop(toks, mask, t, until, &name_at) {
                    until = d;
                }
            }
        }
        f.events.push(Event {
            kind: EventKind::LockAcquire { lock, until, bound },
            tok: t,
            line,
        });
        return;
    }

    // --- blocking operations -----------------------------------------
    if prev_dot && next_noarg && tok.text == "recv" {
        f.events.push(Event {
            kind: EventKind::Recv,
            tok: t,
            line,
        });
        return;
    }
    if prev_dot && next_open && matches!(tok.text.as_str(), "recv_timeout" | "recv_deadline") {
        f.events.push(Event {
            kind: EventKind::RecvTimeout,
            tok: t,
            line,
        });
        return;
    }
    if prev_dot && next_noarg && tok.text == "join" {
        f.events.push(Event {
            kind: EventKind::Join,
            tok: t,
            line,
        });
        return;
    }
    if next_open && tok.text == "sleep" {
        f.events.push(Event {
            kind: EventKind::Sleep,
            tok: t,
            line,
        });
        return;
    }
    if prev_dot && next_open && tok.text == "send" {
        let sender = receiver_chain(toks, t - 1)
            .first()
            .cloned()
            .unwrap_or_default();
        f.events.push(Event {
            kind: EventKind::Send { sender },
            tok: t,
            line,
        });
        // fall through: `.send(` is also a call site (Transport::send).
    }

    // --- channel construction ----------------------------------------
    if next_open && tok.text == "unbounded" {
        f.events.push(Event {
            kind: EventKind::ChannelUnbounded,
            tok: t,
            line,
        });
        return;
    }
    // `get_or_init(channel::unbounded)` — constructor passed as a value.
    if tok.text == "unbounded" && t >= 2 && toks[t - 1].is_punct(':') && toks[t - 2].is_punct(':')
    {
        if !next_open {
            f.events.push(Event {
                kind: EventKind::ChannelUnbounded,
                tok: t,
                line,
            });
            return;
        }
    }
    if next_open
        && tok.text == "channel"
        && t >= 3
        && toks[t - 1].is_punct(':')
        && toks[t - 2].is_punct(':')
        && toks[t - 3].is_ident("mpsc")
    {
        // `mpsc::channel()` is unbounded.
        f.events.push(Event {
            kind: EventKind::ChannelUnbounded,
            tok: t,
            line,
        });
        return;
    }
    if next_open && matches!(tok.text.as_str(), "bounded" | "sync_channel") {
        f.events.push(Event {
            kind: EventKind::ChannelBounded,
            tok: t,
            line,
        });
        // Harvest `let (tx, rx) = bounded(n)` sender names.
        if let Some(tx) = tuple_first_binding(toks, mask, t) {
            ir.bounded_senders.insert(tx);
        }
        return;
    }

    // --- spawns -------------------------------------------------------
    if next_open && tok.text == "spawn" {
        f.events.push(Event {
            kind: EventKind::Spawn,
            tok: t,
            line,
        });
        return;
    }

    // --- allocations --------------------------------------------------
    if t >= 2
        && toks[t - 1].is_punct(':')
        && toks[t - 2].is_punct(':')
        && next_open
    {
        if let Some(head_at) = t.checked_sub(3) {
            if toks[head_at].kind == TokKind::Ident {
                let head = toks[head_at].text.as_str();
                let tail = tok.text.as_str();
                if ALLOC_PATHS.iter().any(|&(h, m)| h == head && m == tail) {
                    f.events.push(Event {
                        kind: EventKind::Alloc {
                            what: format!("{head}::{tail}"),
                        },
                        tok: t,
                        line,
                    });
                    return;
                }
            }
        }
    }
    if prev_dot && next_open && ALLOC_METHODS.contains(&tok.text.as_str()) {
        f.events.push(Event {
            kind: EventKind::Alloc {
                what: format!(".{}()", tok.text),
            },
            tok: t,
            line,
        });
        return;
    }
    if t + 1 < toks.len()
        && toks[t + 1].is_punct('!')
        && ALLOC_MACROS.contains(&tok.text.as_str())
    {
        f.events.push(Event {
            kind: EventKind::Alloc {
                what: format!("{}!", tok.text),
            },
            tok: t,
            line,
        });
        return;
    }

    // --- plain call sites --------------------------------------------
    if next_open
        && !NON_CALLEE_KEYWORDS.contains(&tok.text.as_str())
        && !is_upper_ident(&tok.text)
    {
        let (until, _) = guard_live_end(toks, mask, t, block_close, construct_end);
        f.calls.push(CallSite {
            callee: tok.text.clone(),
            method: prev_dot,
            tok: t,
            line,
            arg_lock: arg_lock_of(toks, t, file, &f.name),
            until,
        });
    }
}

/// Name bound by the `let` statement containing the token at `i`, scanning
/// backwards: `let [mut] <name> =`. Tuple patterns return `None`.
fn let_binding_name(toks: &[Tok], mask: &[bool], i: usize) -> Option<String> {
    let mut j = i as isize;
    let mut steps = 0;
    while j >= 0 && steps < 64 {
        let ju = j as usize;
        if !mask[ju] && (toks[ju].is_punct(';') || toks[ju].is_punct('{')) {
            return None;
        }
        if !mask[ju] && toks[ju].is_ident("let") {
            let mut k = ju + 1;
            if k < toks.len() && toks[k].is_ident("mut") {
                k += 1;
            }
            if k < toks.len() && toks[k].kind == TokKind::Ident {
                return Some(toks[k].text.clone());
            }
            return None;
        }
        j -= 1;
        steps += 1;
    }
    None
}

/// First identifier of a `let (a, b) =` tuple pattern containing token `i`.
fn tuple_first_binding(toks: &[Tok], mask: &[bool], i: usize) -> Option<String> {
    let mut j = i as isize;
    let mut steps = 0;
    while j >= 0 && steps < 64 {
        let ju = j as usize;
        if !mask[ju] && (toks[ju].is_punct(';') || toks[ju].is_punct('{')) {
            return None;
        }
        if !mask[ju] && toks[ju].is_ident("let") {
            let mut k = ju + 1;
            if k < toks.len() && toks[k].is_punct('(') {
                k += 1;
                if k < toks.len() && toks[k].kind == TokKind::Ident {
                    return Some(toks[k].text.clone());
                }
            }
            return None;
        }
        j -= 1;
        steps += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::{test_mask, FileScope};

    fn ir_of(path: &str, src: &str) -> FileIr {
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        extract(path, &FileScope::of(path), &lexed, &mask)
    }

    #[test]
    fn extracts_fns_and_calls() {
        let src = r#"
            fn alpha(&self) { beta(); self.gamma(1); }
            fn beta() {}
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        assert_eq!(ir.fns.len(), 2);
        let alpha = &ir.fns[0];
        assert_eq!(alpha.name, "alpha");
        let callees: Vec<&str> = alpha.calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(callees, vec!["beta", "gamma"]);
    }

    #[test]
    fn let_bound_guard_lives_to_block_close() {
        let src = r#"
            fn f(&self) {
                let g = self.cache.lock().unwrap();
                after();
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let f = &ir.fns[0];
        let ev = f
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::LockAcquire { .. }))
            .expect("lock event");
        let EventKind::LockAcquire { ref lock, until, bound } = ev.kind else {
            unreachable!()
        };
        assert_eq!(lock, "cache");
        assert!(bound);
        // The `after()` call is inside the live range.
        let call = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(call.tok < until);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = r#"
            fn f(&self) {
                self.cache.lock().unwrap().insert(k, v);
                after();
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let f = &ir.fns[0];
        let EventKind::LockAcquire { until, bound, .. } = f.events[0].kind else {
            panic!("expected lock event: {:?}", f.events)
        };
        assert!(!bound);
        let call = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(call.tok > until, "temporary guard must not cover after()");
    }

    #[test]
    fn drop_ends_bound_guard_early() {
        let src = r#"
            fn f(&self) {
                let g = self.cache.lock().unwrap();
                drop(g);
                after();
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let f = &ir.fns[0];
        let EventKind::LockAcquire { until, .. } = f.events[0].kind else {
            panic!("expected lock event")
        };
        let call = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(call.tok > until, "drop(g) must end the live range");
    }

    #[test]
    fn local_receivers_get_scoped_identity() {
        let src = "fn f(m: &Mutex<u8>) { let g = m.lock().unwrap(); }";
        let ir = ir_of("crates/core/src/x.rs", src);
        let EventKind::LockAcquire { ref lock, .. } = ir.fns[0].events[0].kind else {
            panic!()
        };
        assert_eq!(lock, "crates/core/src/x.rs::f::m");
    }

    #[test]
    fn value_guard_maps_to_autograd_tape() {
        let src = "fn f(n: &Var) { let v = n.value(); }";
        let ir = ir_of("crates/nn/src/x.rs", src);
        let EventKind::LockAcquire { ref lock, .. } = ir.fns[0].events[0].kind else {
            panic!()
        };
        assert_eq!(lock, AUTOGRAD_TAPE_LOCK);
    }

    #[test]
    fn channels_sends_and_spawns_are_recorded() {
        let src = r#"
            fn f() {
                let (tx, rx) = bounded(4);
                let (utx, urx) = unbounded();
                tx.send(1);
                let x = rx.recv();
                std::thread::spawn(move || {});
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let f = &ir.fns[0];
        assert!(ir.bounded_senders.contains("tx"));
        let kinds: Vec<&EventKind> = f.events.iter().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, EventKind::ChannelBounded)));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::ChannelUnbounded)));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, EventKind::Send { sender } if sender == "tx")));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Recv)));
        assert!(kinds.iter().any(|k| matches!(k, EventKind::Spawn)));
    }

    #[test]
    fn guard_returning_fn_and_wrapper_arg_lock() {
        let src = r#"
            fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
                m.lock().unwrap_or_else(PoisonError::into_inner)
            }
            fn f(&self) {
                let g = lock_unpoisoned(&self.inboxes);
                after();
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        assert!(ir.fns[0].returns_guard);
        let f = &ir.fns[1];
        let call = f.calls.iter().find(|c| c.callee == "lock_unpoisoned").unwrap();
        assert_eq!(call.arg_lock.as_deref(), Some("inboxes"));
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(after.tok < call.until, "wrapper guard covers after()");
    }

    #[test]
    fn allocations_are_catalogued() {
        let src = r#"
            fn f() {
                let v = Vec::new();
                let b = Box::new(1);
                let w = x.to_vec();
                let c = y.clone();
                let m = vec![1, 2];
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let allocs: Vec<String> = ir.fns[0]
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Alloc { what } => Some(what.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            allocs,
            vec!["Vec::new", "Box::new", ".to_vec()", ".clone()", "vec!"]
        );
    }

    #[test]
    fn hot_marker_covers_next_fn() {
        let src = "// lint: hot-path\nfn hot() {}\nfn cold() {}";
        let ir = ir_of("crates/nn/src/x.rs", src);
        assert!(ir.fns[0].hot);
        assert!(!ir.fns[1].hot);
    }

    #[test]
    fn match_header_guard_covers_match_body() {
        let src = r#"
            fn f(&self) {
                match self.m.lock() {
                    Ok(g) => inside(),
                    Err(_) => {}
                }
                after();
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        let f = &ir.fns[0];
        let EventKind::LockAcquire { until, .. } = f.events[0].kind else {
            panic!()
        };
        let inside = f.calls.iter().find(|c| c.callee == "inside").unwrap();
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert!(inside.tok < until);
        assert!(after.tok > until);
    }

    #[test]
    fn test_code_is_masked_out() {
        let src = r#"
            fn lib() {}
            #[cfg(test)]
            mod tests {
                fn helper(&self) { let g = self.cache.lock().unwrap(); }
            }
        "#;
        let ir = ir_of("crates/core/src/x.rs", src);
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].name, "lib");
    }
}

//! Seeded true-positive corpus for the concurrency passes.
//!
//! Each rule ships one deliberately-buggy fixture and one clean variant
//! (`crates/lint/fixtures/*.rs`). The buggy variant MUST be flagged by its
//! rule and the clean variant MUST NOT be — this pins the analyzer's
//! sensitivity and specificity so a refactor cannot silently lobotomize a
//! pass (everything-clean) or drown the tree in noise (everything-buggy).
//!
//! Fixtures are lexed and analyzed in memory under synthetic `crates/core/`
//! paths; they are never compiled into the workspace.
//!
//! A final property test feeds arbitrary (including invalid) UTF-8 through
//! the full lexer → IR → analysis pipeline: the analyzer must never panic
//! on weird input, because it runs over every file of every crate.

use mtmlf_lint::report::Report;
use mtmlf_lint::{analyze_sources, ir, lexer, SourceFile};
use proptest::prelude::*;

/// Analyzes one fixture as if it lived at `crates/core/src/<name>`.
fn analyze_fixture(name: &str, src: &str) -> Report {
    let mut rep = Report::default();
    analyze_sources(
        &[SourceFile {
            rel: format!("crates/core/src/{name}"),
            src: src.to_string(),
        }],
        &mut rep,
    );
    rep
}

fn rules_hit(rep: &Report) -> Vec<&str> {
    rep.violations.iter().map(|v| v.rule).collect()
}

/// (rule, buggy fixture, clean fixture) for every concurrency pass.
const CASES: &[(&str, &str, &str, &str, &str)] = &[
    (
        "G1",
        "g1_buggy.rs",
        include_str!("../fixtures/g1_buggy.rs"),
        "g1_clean.rs",
        include_str!("../fixtures/g1_clean.rs"),
    ),
    (
        "G2",
        "g2_buggy.rs",
        include_str!("../fixtures/g2_buggy.rs"),
        "g2_clean.rs",
        include_str!("../fixtures/g2_clean.rs"),
    ),
    (
        "L5",
        "l5_buggy.rs",
        include_str!("../fixtures/l5_buggy.rs"),
        "l5_clean.rs",
        include_str!("../fixtures/l5_clean.rs"),
    ),
    (
        "L6",
        "l6_buggy.rs",
        include_str!("../fixtures/l6_buggy.rs"),
        "l6_clean.rs",
        include_str!("../fixtures/l6_clean.rs"),
    ),
];

#[test]
fn buggy_fixtures_are_flagged_by_their_rule() {
    for (rule, buggy_name, buggy_src, _, _) in CASES {
        let rep = analyze_fixture(buggy_name, buggy_src);
        let hits = rules_hit(&rep);
        assert!(
            hits.contains(rule),
            "{buggy_name}: expected a {rule} violation, got {:?}",
            rep.violations
        );
    }
}

#[test]
fn clean_fixtures_are_not_flagged() {
    for (rule, _, _, clean_name, clean_src) in CASES {
        let rep = analyze_fixture(clean_name, clean_src);
        assert!(
            rep.violations.is_empty(),
            "{clean_name}: expected no violations (rule {rule}), got {:?}",
            rep.violations
        );
    }
}

#[test]
fn buggy_fixtures_raise_no_unrelated_noise() {
    // Precision guard: the buggy fixture for one rule must not trip the
    // other passes — each seeded bug is a single, isolated defect.
    for (rule, buggy_name, buggy_src, _, _) in CASES {
        let rep = analyze_fixture(buggy_name, buggy_src);
        for v in &rep.violations {
            assert_eq!(
                &v.rule, rule,
                "{buggy_name}: unrelated {} violation: {v:?}",
                v.rule
            );
        }
    }
}

#[test]
fn g1_violation_names_both_locks() {
    let rep = analyze_fixture("g1_buggy.rs", include_str!("../fixtures/g1_buggy.rs"));
    let g1 = rep
        .violations
        .iter()
        .find(|v| v.rule == "G1")
        .expect("G1 fires on the cycle fixture");
    assert!(
        g1.message.contains('a') && g1.message.contains('b'),
        "cycle message should name the locks: {}",
        g1.message
    );
}

#[test]
fn fixtures_in_bench_paths_are_advisory_only() {
    // The same buggy source under `crates/bench/` must be report-only.
    let mut rep = Report::default();
    analyze_sources(
        &[SourceFile {
            rel: "crates/bench/src/g2_buggy.rs".to_string(),
            src: include_str!("../fixtures/g2_buggy.rs").to_string(),
        }],
        &mut rep,
    );
    assert!(
        rep.violations.is_empty(),
        "bench findings must not be fatal: {:?}",
        rep.violations
    );
    assert!(
        rep.advisory.iter().any(|v| v.rule == "G2"),
        "bench findings must still be recorded: {:?}",
        rep.advisory
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer and IR extractor must never panic, whatever bytes they see.
    #[test]
    fn lexer_and_ir_survive_arbitrary_utf8(chunks in proptest::collection::vec(any::<u16>(), 0..200)) {
        // Decode arbitrary u16s lossily: exercises multi-byte chars,
        // unpaired-surrogate replacement chars, quotes, braces, NULs.
        let src = String::from_utf16_lossy(&chunks);
        let lexed = lexer::lex(&src);
        let mask = mtmlf_lint::rules::test_mask(&lexed.toks);
        let scope = mtmlf_lint::rules::FileScope::of("crates/core/src/fuzz.rs");
        let _ = ir::extract("crates/core/src/fuzz.rs", &scope, &lexed, &mask);
    }

    /// Full-pipeline robustness: analysis over hostile input returns a
    /// report (possibly with violations) instead of panicking.
    #[test]
    fn analysis_survives_arbitrary_source(chunks in proptest::collection::vec(any::<u16>(), 0..120)) {
        let src = String::from_utf16_lossy(&chunks);
        let mut rep = Report::default();
        analyze_sources(
            &[SourceFile { rel: "crates/core/src/fuzz.rs".to_string(), src }],
            &mut rep,
        );
    }
}

//! # mtmlf-query
//!
//! Query and plan intermediate representation for the MTMLF reproduction.
//!
//! The paper models a query as `Q = (T_Q, j_Q, f_Q)`: the touched tables,
//! the equi-join predicates, and the per-table filter predicates (Section
//! 3.2 I). Candidate plans are binary trees whose leaves are scans and whose
//! inner nodes are joins. This crate provides:
//!
//! - [`predicate`]: filter predicates (comparison, range, `LIKE`, `IN`) and
//!   equi-join predicates;
//! - [`query`]: the [`Query`] type with its invariants;
//! - [`graph`]: [`JoinGraph`] adjacency bitsets, connectivity, and the
//!   AND-accumulated legality frontier used by the beam search (Section 4.3);
//! - [`plan`]: [`PlanNode`] trees, scan/join physical operators, builders
//!   from left-deep orders and bushy [`JoinTree`]s;
//! - [`treecodec`]: the complete-binary-tree decoding embeddings of Section
//!   4.1 (tree ↔ sequence conversion, both directions);
//! - [`order`]: join orders as produced by optimizers and the decoder;
//! - [`fingerprint`]: canonical 128-bit query fingerprints (stable under
//!   table/predicate reordering) used to key the serving layer's plan cache.

#![forbid(unsafe_code)]

pub mod error;
pub mod fingerprint;
pub mod graph;
pub mod order;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod sql;
pub mod treecodec;

pub use error::QueryError;
pub use fingerprint::{fingerprint, QueryFingerprint};
pub use graph::JoinGraph;
pub use order::JoinOrder;
pub use plan::{JoinOp, JoinTree, PlanNode, ScanOp};
pub use predicate::{CmpOp, ColumnRef, FilterPredicate, JoinPredicate, LikePattern};
pub use query::Query;
pub use sql::SqlError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QueryError>;

//! Canonical query fingerprints for plan caching.
//!
//! A [`QueryFingerprint`] is a 128-bit hash of a query's *canonical* form:
//! two textually different constructions of the same query — tables listed
//! in another order, join predicates permuted or side-swapped, per-table
//! filters reordered, `IN`-list values shuffled — produce the same
//! fingerprint, while any semantic difference (another table, operator, or
//! literal) produces a different one. The serving layer keys its plan cache
//! on this value, so equal fingerprints must imply equal optimal plans:
//! literals are part of the hash, not just the predicate template.
//!
//! The canonical byte encoding is hashed with two independently seeded
//! FNV-1a passes; 128 bits keep accidental collisions out of reach for any
//! realistic cache population.

use crate::predicate::{CmpOp, FilterPredicate, LikePattern};
use crate::query::Query;
use mtmlf_storage::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-lane seed (golden-ratio constant) so the two 64-bit hashes are
/// independent functions of the same bytes.
const LANE2_SEED: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

/// A canonical 128-bit query fingerprint. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryFingerprint {
    hi: u64,
    lo: u64,
}

impl QueryFingerprint {
    /// Fingerprints a query.
    ///
    /// ```
    /// use mtmlf_query::{fingerprint, Query};
    /// use std::collections::BTreeMap;
    /// use mtmlf_storage::TableId;
    ///
    /// let q = Query::new(vec![TableId(0)], vec![], BTreeMap::new()).unwrap();
    /// assert_eq!(fingerprint(&q), fingerprint(&q.clone()));
    /// ```
    pub fn of(query: &Query) -> Self {
        let bytes = canonical_bytes(query);
        Self {
            hi: fnv1a(FNV_OFFSET, &bytes),
            lo: fnv1a(LANE2_SEED, &bytes),
        }
    }

    /// Reassembles a fingerprint from its raw halves. For replaying stored
    /// or transmitted fingerprints (cluster gossip, tests); fingerprints of
    /// live queries come from [`QueryFingerprint::of`].
    pub fn from_parts(hi: u64, lo: u64) -> Self {
        Self { hi, lo }
    }

    /// The fingerprint as a single 128-bit integer.
    pub fn as_u128(self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// A well-mixed 64-bit projection (used to pick cache shards).
    pub fn shard_hash(self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }
}

/// Fingerprints a query (free-function convenience for [`QueryFingerprint::of`]).
pub fn fingerprint(query: &Query) -> QueryFingerprint {
    QueryFingerprint::of(query)
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Serializes the query into its canonical byte form: sorted tables (the
/// `Query` invariant), join predicates side-ordered then sorted, per-table
/// filters sorted by their own encoding, `IN` lists sorted. Every variable-
/// length field is length-prefixed so distinct queries cannot collide by
/// concatenation.
fn canonical_bytes(query: &Query) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(b'T');
    push_len(&mut out, query.tables().len());
    for t in query.tables() {
        out.extend_from_slice(&t.0.to_le_bytes());
    }

    let mut joins: Vec<[u8; 16]> = query
        .joins()
        .iter()
        .map(|j| {
            let a = (j.left.table.0, j.left.column.0);
            let b = (j.right.table.0, j.right.column.0);
            let (first, second) = if a <= b { (a, b) } else { (b, a) };
            let mut buf = [0u8; 16];
            buf[0..4].copy_from_slice(&first.0.to_le_bytes());
            buf[4..8].copy_from_slice(&first.1.to_le_bytes());
            buf[8..12].copy_from_slice(&second.0.to_le_bytes());
            buf[12..16].copy_from_slice(&second.1.to_le_bytes());
            buf
        })
        .collect();
    joins.sort_unstable();
    out.push(b'J');
    push_len(&mut out, joins.len());
    for j in &joins {
        out.extend_from_slice(j);
    }

    out.push(b'F');
    for (t, preds) in query.filters() {
        // A table mapped to an empty filter list is the same query as one
        // with no entry for that table.
        if preds.is_empty() {
            continue;
        }
        out.push(b't');
        out.extend_from_slice(&t.0.to_le_bytes());
        let mut encoded: Vec<Vec<u8>> = preds.iter().map(encode_filter).collect();
        encoded.sort_unstable();
        push_len(&mut out, encoded.len());
        for e in &encoded {
            out.extend_from_slice(e);
        }
    }
    out
}

fn push_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u64).to_le_bytes());
}

fn encode_filter(p: &FilterPredicate) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    match p {
        FilterPredicate::Cmp { column, op, value } => {
            out.push(0x10);
            out.extend_from_slice(&column.0.to_le_bytes());
            out.push(op_tag(*op));
            encode_value(value, &mut out);
        }
        FilterPredicate::Between { column, lo, hi } => {
            out.push(0x11);
            out.extend_from_slice(&column.0.to_le_bytes());
            encode_value(lo, &mut out);
            encode_value(hi, &mut out);
        }
        FilterPredicate::Like { column, pattern } => {
            out.push(0x12);
            out.extend_from_slice(&column.0.to_le_bytes());
            let (tag, needle) = match pattern {
                LikePattern::Contains(s) => (0u8, s),
                LikePattern::Prefix(s) => (1, s),
                LikePattern::Suffix(s) => (2, s),
            };
            out.push(tag);
            push_len(&mut out, needle.len());
            out.extend_from_slice(needle.as_bytes());
        }
        FilterPredicate::InSet { column, values } => {
            out.push(0x13);
            out.extend_from_slice(&column.0.to_le_bytes());
            let mut encoded: Vec<Vec<u8>> = values
                .iter()
                .map(|v| {
                    let mut b = Vec::new();
                    encode_value(v, &mut b);
                    b
                })
                .collect();
            encoded.sort_unstable();
            push_len(&mut out, encoded.len());
            for e in &encoded {
                out.extend_from_slice(e);
            }
        }
    }
    out
}

fn op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Neq => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(0x03);
            push_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::{ColumnId, TableId};
    use std::collections::BTreeMap;

    fn jp(a: u32, ac: u32, b: u32, bc: u32) -> JoinPredicate {
        JoinPredicate::new(
            ColumnRef::new(TableId(a), ColumnId(ac)),
            ColumnRef::new(TableId(b), ColumnId(bc)),
        )
    }

    fn cmp(column: u32, op: CmpOp, value: Value) -> FilterPredicate {
        FilterPredicate::Cmp {
            column: ColumnId(column),
            op,
            value,
        }
    }

    #[test]
    fn invariant_under_construction_order() {
        let filters_a: BTreeMap<_, _> = [(
            TableId(1),
            vec![
                cmp(0, CmpOp::Lt, Value::Int(10)),
                cmp(2, CmpOp::Eq, Value::Int(3)),
            ],
        )]
        .into_iter()
        .collect();
        let filters_b: BTreeMap<_, _> = [(
            TableId(1),
            vec![
                cmp(2, CmpOp::Eq, Value::Int(3)),
                cmp(0, CmpOp::Lt, Value::Int(10)),
            ],
        )]
        .into_iter()
        .collect();
        let a = Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![jp(0, 1, 1, 0), jp(1, 1, 2, 0)],
            filters_a,
        )
        .unwrap();
        // Tables reordered, joins permuted and side-swapped, filters permuted.
        let b = Query::new(
            vec![TableId(2), TableId(1), TableId(0)],
            vec![jp(2, 0, 1, 1), jp(1, 0, 0, 1)],
            filters_b,
        )
        .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn distinguishes_literals_ops_and_structure() {
        let base = |value: i64, op: CmpOp| {
            let filters: BTreeMap<_, _> = [(TableId(0), vec![cmp(0, op, Value::Int(value))])]
                .into_iter()
                .collect();
            Query::new(vec![TableId(0), TableId(1)], vec![jp(0, 0, 1, 0)], filters).unwrap()
        };
        let q = base(5, CmpOp::Lt);
        assert_ne!(fingerprint(&q), fingerprint(&base(6, CmpOp::Lt)), "literal");
        assert_ne!(
            fingerprint(&q),
            fingerprint(&base(5, CmpOp::Le)),
            "operator"
        );
        let no_filter = Query::new(
            vec![TableId(0), TableId(1)],
            vec![jp(0, 0, 1, 0)],
            BTreeMap::new(),
        )
        .unwrap();
        assert_ne!(fingerprint(&q), fingerprint(&no_filter), "filter presence");
        let other_join = Query::new(
            vec![TableId(0), TableId(1)],
            vec![jp(0, 0, 1, 1)],
            BTreeMap::new(),
        )
        .unwrap();
        assert_ne!(
            fingerprint(&no_filter),
            fingerprint(&other_join),
            "join column"
        );
    }

    #[test]
    fn in_set_order_is_canonical() {
        let q = |vals: Vec<i64>| {
            let filters: BTreeMap<_, _> = [(
                TableId(0),
                vec![FilterPredicate::InSet {
                    column: ColumnId(0),
                    values: vals.into_iter().map(Value::Int).collect(),
                }],
            )]
            .into_iter()
            .collect();
            Query::new(vec![TableId(0)], vec![], filters).unwrap()
        };
        assert_eq!(
            fingerprint(&q(vec![1, 2, 3])),
            fingerprint(&q(vec![3, 1, 2]))
        );
        assert_ne!(
            fingerprint(&q(vec![1, 2, 3])),
            fingerprint(&q(vec![1, 2, 4]))
        );
    }

    #[test]
    fn empty_filter_list_equals_absent_entry() {
        let with_empty: BTreeMap<_, _> = [(TableId(0), Vec::<FilterPredicate>::new())]
            .into_iter()
            .collect();
        let a = Query::new(vec![TableId(0)], vec![], with_empty).unwrap();
        let b = Query::new(vec![TableId(0)], vec![], BTreeMap::new()).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::{ColumnId, TableId};
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// A random star query over `n` tables: T0 joined to each of T1..Tn,
    /// with random join columns and random comparison filters.
    fn arb_star_query() -> impl Strategy<Value = (Query, Vec<JoinPredicate>)> {
        (2usize..6, proptest::collection::vec(0u32..4, 10)).prop_map(|(n, cols)| {
            let tables: Vec<TableId> = (0..n as u32).map(TableId).collect();
            let joins: Vec<JoinPredicate> = (1..n as u32)
                .map(|i| {
                    JoinPredicate::new(
                        ColumnRef::new(TableId(0), ColumnId(cols[i as usize % cols.len()])),
                        ColumnRef::new(TableId(i), ColumnId(cols[(i as usize + 3) % cols.len()])),
                    )
                })
                .collect();
            let q = Query::new(tables, joins.clone(), BTreeMap::new()).unwrap();
            (q, joins)
        })
    }

    fn arb_filters(n_tables: u32) -> impl Strategy<Value = Vec<(u32, FilterPredicate)>> {
        proptest::collection::vec(
            (
                0..n_tables,
                0u32..4,
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Ge),
                    Just(CmpOp::Neq)
                ],
                -100i64..100,
            )
                .prop_map(|(t, c, op, v)| {
                    (
                        t,
                        FilterPredicate::Cmp {
                            column: ColumnId(c),
                            op,
                            value: Value::Int(v),
                        },
                    )
                }),
            0..6,
        )
    }

    fn build(
        tables: Vec<TableId>,
        joins: Vec<JoinPredicate>,
        filters: &[(u32, FilterPredicate)],
    ) -> Query {
        let mut map: BTreeMap<TableId, Vec<FilterPredicate>> = BTreeMap::new();
        for (t, p) in filters {
            map.entry(TableId(*t)).or_default().push(p.clone());
        }
        Query::new(tables, joins, map).unwrap()
    }

    fn swap_sides(j: &JoinPredicate) -> JoinPredicate {
        JoinPredicate::new(j.right, j.left)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Permuting tables, joins (including side swaps), and filters
        /// never changes the fingerprint.
        #[test]
        fn invariant_under_permutation(
            (q, joins) in arb_star_query(),
            filters in arb_filters(2),
            perm_seed in 0usize..24,
        ) {
            let original = build(q.tables().to_vec(), joins.clone(), &filters);

            // Rotate table order, reverse join order, swap every join's
            // sides, reverse the filter list: all semantically identical.
            let mut tables = q.tables().to_vec();
            let rot = perm_seed % tables.len();
            tables.rotate_left(rot);
            let mut shuffled_joins: Vec<JoinPredicate> =
                joins.iter().map(swap_sides).collect();
            shuffled_joins.reverse();
            let mut shuffled_filters = filters.clone();
            shuffled_filters.reverse();
            let permuted = build(tables, shuffled_joins, &shuffled_filters);

            prop_assert_eq!(fingerprint(&original), fingerprint(&permuted));
        }

        /// Changing any filter literal changes the fingerprint.
        #[test]
        fn distinguishes_changed_literal(
            (q, joins) in arb_star_query(),
            filters in arb_filters(2),
            bump in 1i64..50,
        ) {
            prop_assume!(!filters.is_empty());
            let original = build(q.tables().to_vec(), joins.clone(), &filters);
            let mut changed = filters.clone();
            if let (t, FilterPredicate::Cmp { column, op, value: Value::Int(v) }) =
                changed[0].clone()
            {
                changed[0] = (
                    t,
                    FilterPredicate::Cmp {
                        column,
                        op,
                        value: Value::Int(v + bump),
                    },
                );
            }
            let mutated = build(q.tables().to_vec(), joins, &changed);
            prop_assert_ne!(fingerprint(&original), fingerprint(&mutated));
        }
    }
}

//! Join orders: what optimizers emit and `Trans_JO` decodes.

use crate::error::QueryError;
use crate::graph::JoinGraph;
use crate::plan::{JoinTree, PlanNode};
use crate::query::Query;
use crate::Result;
use mtmlf_storage::TableId;
use std::fmt;

/// A join order for a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinOrder {
    /// A left-deep order: the table sequence `T'_1, T'_2, ...` (Section 3.2
    /// T.iii — left-deep orders flatten directly into a sequence).
    LeftDeep(Vec<TableId>),
    /// A bushy order, carried as its join tree (Section 4.1).
    Bushy(JoinTree),
}

impl JoinOrder {
    /// The underlying join tree.
    pub fn tree(&self) -> Result<JoinTree> {
        match self {
            JoinOrder::LeftDeep(order) => JoinTree::left_deep(order),
            JoinOrder::Bushy(tree) => Ok(tree.clone()),
        }
    }

    /// Converts to a physical plan with default operators.
    pub fn to_plan(&self) -> Result<PlanNode> {
        Ok(self.tree()?.to_plan())
    }

    /// The tables of the order, in join sequence (leaf order for bushy).
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            JoinOrder::LeftDeep(order) => order.clone(),
            JoinOrder::Bushy(tree) => tree.leaves(),
        }
    }

    /// Number of tables joined.
    pub fn len(&self) -> usize {
        match self {
            JoinOrder::LeftDeep(order) => order.len(),
            JoinOrder::Bushy(tree) => tree.leaf_count(),
        }
    }

    /// True for an empty order (never produced by valid constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the order against a query: it must be a permutation of the
    /// query's tables and executable under the query's join graph (for
    /// left-deep: every next table joins the prefix; for bushy: every join
    /// node connects its two sides).
    pub fn validate(&self, query: &Query) -> Result<()> {
        let mut tables = self.tables();
        tables.sort_unstable();
        tables.dedup();
        if tables != query.tables() {
            for t in &tables {
                if !query.tables().contains(t) {
                    return Err(QueryError::OrderTableNotInQuery(*t));
                }
            }
            return Err(QueryError::OrderNotAPermutation);
        }
        let graph = query.join_graph()?;
        match self {
            JoinOrder::LeftDeep(order) => {
                let mut local = Vec::with_capacity(order.len());
                for t in order {
                    match graph.vertex_of(*t) {
                        Some(v) => local.push(v),
                        None => return Err(QueryError::OrderNotAPermutation),
                    }
                }
                graph.check_left_deep(&local)
            }
            JoinOrder::Bushy(tree) => check_bushy(tree, &graph).map(|_| ()),
        }
    }
}

/// Checks a bushy tree: every join node must connect its two sides via at
/// least one join edge. Returns the subtree's vertex bitset.
fn check_bushy(tree: &JoinTree, graph: &JoinGraph) -> Result<u64> {
    match tree {
        JoinTree::Leaf(t) => {
            let v = graph
                .vertex_of(*t)
                .ok_or(QueryError::OrderTableNotInQuery(*t))?;
            Ok(1u64 << v)
        }
        JoinTree::Node(l, r) => {
            let lb = check_bushy(l, graph)?;
            let rb = check_bushy(r, graph)?;
            // Some vertex of the right side must be in the frontier of the
            // left side (or vice versa; frontier is symmetric here).
            if graph.frontier(lb) & rb == 0 {
                let t = graph.table(rb.trailing_zeros() as usize);
                return Err(QueryError::IllegalOrder {
                    position: lb.count_ones() as usize,
                    table: t,
                });
            }
            Ok(lb | rb)
        }
    }
}

impl fmt::Display for JoinOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinOrder::LeftDeep(order) => {
                for (i, t) in order.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⋈ ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            JoinOrder::Bushy(tree) => write!(f, "{}", tree.to_plan()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnRef, JoinPredicate};
    use mtmlf_storage::ColumnId;
    use std::collections::BTreeMap;

    fn jp(a: u32, b: u32) -> JoinPredicate {
        JoinPredicate::new(
            ColumnRef::new(TableId(a), ColumnId(0)),
            ColumnRef::new(TableId(b), ColumnId(0)),
        )
    }

    fn chain_query() -> Query {
        Query::new(
            vec![TableId(0), TableId(1), TableId(2), TableId(3)],
            vec![jp(0, 1), jp(1, 2), jp(2, 3)],
            BTreeMap::new(),
        )
        .unwrap()
    }

    #[test]
    fn left_deep_validation() {
        let q = chain_query();
        let good = JoinOrder::LeftDeep(vec![TableId(1), TableId(2), TableId(0), TableId(3)]);
        assert!(good.validate(&q).is_ok());
        let bad = JoinOrder::LeftDeep(vec![TableId(0), TableId(2), TableId(1), TableId(3)]);
        assert!(matches!(
            bad.validate(&q),
            Err(QueryError::IllegalOrder { position: 1, .. })
        ));
    }

    #[test]
    fn permutation_validation() {
        let q = chain_query();
        let dup = JoinOrder::LeftDeep(vec![TableId(0), TableId(0), TableId(1), TableId(2)]);
        assert!(dup.validate(&q).is_err());
        let foreign = JoinOrder::LeftDeep(vec![TableId(0), TableId(1), TableId(2), TableId(9)]);
        assert_eq!(
            foreign.validate(&q).unwrap_err(),
            QueryError::OrderTableNotInQuery(TableId(9))
        );
        let short = JoinOrder::LeftDeep(vec![TableId(0), TableId(1)]);
        assert!(short.validate(&q).is_err());
    }

    #[test]
    fn bushy_validation() {
        let q = chain_query();
        // (0 ⋈ 1) ⋈ (2 ⋈ 3): edge 1-2 connects the sides — legal.
        let good = JoinOrder::Bushy(JoinTree::join(
            JoinTree::join(JoinTree::Leaf(TableId(0)), JoinTree::Leaf(TableId(1))),
            JoinTree::join(JoinTree::Leaf(TableId(2)), JoinTree::Leaf(TableId(3))),
        ));
        assert!(good.validate(&q).is_ok());
        // (0 ⋈ 2) is not an edge in the chain — illegal.
        let bad = JoinOrder::Bushy(JoinTree::join(
            JoinTree::join(JoinTree::Leaf(TableId(0)), JoinTree::Leaf(TableId(2))),
            JoinTree::join(JoinTree::Leaf(TableId(1)), JoinTree::Leaf(TableId(3))),
        ));
        assert!(bad.validate(&q).is_err());
    }

    #[test]
    fn order_conversions() {
        let o = JoinOrder::LeftDeep(vec![TableId(2), TableId(0), TableId(1)]);
        assert_eq!(o.len(), 3);
        let plan = o.to_plan().unwrap();
        assert_eq!(plan.tables(), vec![TableId(2), TableId(0), TableId(1)]);
        assert!(plan.is_left_deep());
    }

    #[test]
    fn display() {
        let o = JoinOrder::LeftDeep(vec![TableId(0), TableId(1)]);
        assert_eq!(o.to_string(), "T0 ⋈ T1");
    }
}

//! Physical plan trees.
//!
//! A plan is a binary tree: leaves are scans, inner nodes are joins
//! (Section 3.1 of the paper; other physical operators are omitted,
//! following Neo \[21\]).

use crate::error::QueryError;
use crate::Result;
use mtmlf_storage::TableId;
use std::fmt;

/// Physical scan operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanOp {
    /// Sequential scan of the full table.
    #[default]
    SeqScan,
    /// Index scan (modeled as a cheaper scan when selectivity is high).
    IndexScan,
}

/// Physical join operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinOp {
    /// Hash join (build on one side, probe with the other).
    #[default]
    HashJoin,
    /// Sort-merge join.
    MergeJoin,
    /// Nested-loop join.
    NestedLoopJoin,
}

impl ScanOp {
    /// All scan operators.
    pub const ALL: [ScanOp; 2] = [ScanOp::SeqScan, ScanOp::IndexScan];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScanOp::SeqScan => "SeqScan",
            ScanOp::IndexScan => "IndexScan",
        }
    }
}

impl JoinOp {
    /// All join operators.
    pub const ALL: [JoinOp; 3] = [JoinOp::HashJoin, JoinOp::MergeJoin, JoinOp::NestedLoopJoin];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinOp::HashJoin => "HashJoin",
            JoinOp::MergeJoin => "MergeJoin",
            JoinOp::NestedLoopJoin => "NestedLoopJoin",
        }
    }
}

/// A *logical* join tree: the shape of the join order without physical
/// operator annotations. Left-deep trees are a special case.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// A base table.
    Leaf(TableId),
    /// A join of two subtrees.
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Builds a left-deep tree joining tables in the given order
    /// (`((t0 ⋈ t1) ⋈ t2) ⋈ ...`). Requires at least one table.
    pub fn left_deep(order: &[TableId]) -> Result<Self> {
        let (&first, rest) = order.split_first().ok_or(QueryError::EmptyQuery)?;
        let mut tree = JoinTree::Leaf(first);
        for &t in rest {
            tree = JoinTree::Node(Box::new(tree), Box::new(JoinTree::Leaf(t)));
        }
        Ok(tree)
    }

    /// Joins two subtrees.
    pub fn join(left: JoinTree, right: JoinTree) -> Self {
        JoinTree::Node(Box::new(left), Box::new(right))
    }

    /// Tables in leaf order (left to right).
    pub fn leaves(&self) -> Vec<TableId> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<TableId>) {
        match self {
            JoinTree::Leaf(t) => out.push(*t),
            JoinTree::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 1,
            JoinTree::Node(l, r) => l.leaf_count() + r.leaf_count(),
        }
    }

    /// Tree height: 0 for a leaf.
    pub fn height(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Node(l, r) => 1 + l.height().max(r.height()),
        }
    }

    /// True when every right child is a leaf (left-deep shape).
    pub fn is_left_deep(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => true,
            JoinTree::Node(l, r) => matches!(**r, JoinTree::Leaf(_)) && l.is_left_deep(),
        }
    }

    /// Converts to a physical plan with default operators.
    pub fn to_plan(&self) -> PlanNode {
        match self {
            JoinTree::Leaf(t) => PlanNode::scan(*t),
            JoinTree::Node(l, r) => PlanNode::join_default(l.to_plan(), r.to_plan()),
        }
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Leaf: a scan of one base table.
    Scan {
        /// Scanned table.
        table: TableId,
        /// Physical scan operator.
        op: ScanOp,
    },
    /// Inner node: a join of two sub-plans.
    Join {
        /// Physical join operator.
        op: JoinOp,
        /// Left (outer / build-side) input.
        left: Box<PlanNode>,
        /// Right (inner / probe-side) input.
        right: Box<PlanNode>,
    },
}

impl PlanNode {
    /// A sequential scan leaf.
    pub fn scan(table: TableId) -> Self {
        PlanNode::Scan {
            table,
            op: ScanOp::SeqScan,
        }
    }

    /// A scan leaf with an explicit operator.
    pub fn scan_with(table: TableId, op: ScanOp) -> Self {
        PlanNode::Scan { table, op }
    }

    /// A hash join of two sub-plans.
    pub fn join_default(left: PlanNode, right: PlanNode) -> Self {
        PlanNode::Join {
            op: JoinOp::HashJoin,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// A join with an explicit operator.
    pub fn join_with(op: JoinOp, left: PlanNode, right: PlanNode) -> Self {
        PlanNode::Join {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Builds a left-deep plan with default operators from a table order.
    pub fn left_deep(order: &[TableId]) -> Result<Self> {
        Ok(JoinTree::left_deep(order)?.to_plan())
    }

    /// Tables covered by this (sub-)plan, in leaf order.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            PlanNode::Scan { table, .. } => vec![*table],
            PlanNode::Join { left, right, .. } => {
                let mut t = left.tables();
                t.extend(right.tables());
                t
            }
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => left.leaf_count() + right.leaf_count(),
        }
    }

    /// Total node count (leaves + inner).
    pub fn node_count(&self) -> usize {
        match self {
            PlanNode::Scan { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    /// Post-order traversal: children before parents, root last. This is the
    /// serialization order used by the featurization module (F.iii in the
    /// paper's Figure 2) — every sub-plan's nodes precede its root, matching
    /// how per-node cardinality/cost labels are attached.
    pub fn post_order(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.node_count());
        self.post_order_into(&mut out);
        out
    }

    fn post_order_into<'a>(&'a self, out: &mut Vec<&'a PlanNode>) {
        if let PlanNode::Join { left, right, .. } = self {
            left.post_order_into(out);
            right.post_order_into(out);
        }
        out.push(self);
    }

    /// The logical join tree underlying this plan.
    pub fn join_tree(&self) -> JoinTree {
        match self {
            PlanNode::Scan { table, .. } => JoinTree::Leaf(*table),
            PlanNode::Join { left, right, .. } => {
                JoinTree::join(left.join_tree(), right.join_tree())
            }
        }
    }

    /// True when the plan is left-deep.
    pub fn is_left_deep(&self) -> bool {
        self.join_tree().is_left_deep()
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanNode::Scan { table, op } => write!(f, "{}({table})", op.name()),
            PlanNode::Join { op, left, right } => {
                write!(f, "{}({left}, {right})", op.name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> TableId {
        TableId(i)
    }

    #[test]
    fn left_deep_construction() {
        let tree = JoinTree::left_deep(&[tid(0), tid(1), tid(2)]).unwrap();
        assert!(tree.is_left_deep());
        assert_eq!(tree.leaves(), vec![tid(0), tid(1), tid(2)]);
        assert_eq!(tree.height(), 2);
        assert!(JoinTree::left_deep(&[]).is_err());
    }

    #[test]
    fn bushy_tree_shape() {
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::Leaf(tid(0)), JoinTree::Leaf(tid(1))),
            JoinTree::join(JoinTree::Leaf(tid(2)), JoinTree::Leaf(tid(3))),
        );
        assert!(!tree.is_left_deep());
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.leaf_count(), 4);
    }

    #[test]
    fn plan_counts_and_tables() {
        let plan = PlanNode::left_deep(&[tid(0), tid(1), tid(2), tid(3)]).unwrap();
        assert_eq!(plan.leaf_count(), 4);
        assert_eq!(plan.node_count(), 7);
        assert_eq!(plan.tables(), vec![tid(0), tid(1), tid(2), tid(3)]);
        assert!(plan.is_left_deep());
    }

    #[test]
    fn post_order_children_first() {
        let plan = PlanNode::left_deep(&[tid(0), tid(1), tid(2)]).unwrap();
        let nodes = plan.post_order();
        assert_eq!(nodes.len(), 5);
        // Leaves of the deepest join come first, root last.
        assert!(matches!(nodes[0], PlanNode::Scan { table, .. } if *table == tid(0)));
        assert!(matches!(nodes[1], PlanNode::Scan { table, .. } if *table == tid(1)));
        assert!(matches!(nodes[2], PlanNode::Join { .. }));
        assert!(matches!(nodes[3], PlanNode::Scan { table, .. } if *table == tid(2)));
        assert!(std::ptr::eq(nodes[4], &plan));
    }

    #[test]
    fn join_tree_roundtrip() {
        let tree = JoinTree::join(
            JoinTree::Leaf(tid(5)),
            JoinTree::join(JoinTree::Leaf(tid(1)), JoinTree::Leaf(tid(2))),
        );
        let plan = tree.to_plan();
        assert_eq!(plan.join_tree(), tree);
    }

    #[test]
    fn display_plan() {
        let plan = PlanNode::join_with(
            JoinOp::MergeJoin,
            PlanNode::scan(tid(0)),
            PlanNode::scan_with(tid(1), ScanOp::IndexScan),
        );
        assert_eq!(plan.to_string(), "MergeJoin(SeqScan(T0), IndexScan(T1))");
    }
}

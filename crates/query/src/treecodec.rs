//! Tree ↔ sequence conversion of query plans (paper Section 4.1).
//!
//! The join tree is embedded into a *complete* binary tree: each subtree of
//! the original tree is assigned a contiguous, power-of-two-aligned block of
//! the complete tree's leaves (a node's left child takes the first half of
//! its block, the right child the second half), and a base table occupies
//! every leaf of its block. A table's *decoding embedding* is the 0/1
//! occupancy vector over the complete tree's leaves, padded to a fixed
//! dimension.
//!
//! For the paper's Figure 3(a) left-deep tree `((T1 ⋈ T2) ⋈ T3) ⋈ T4` the
//! embeddings are `[1,0,0,0,0,0,0,0]`, `[0,1,0,0,0,0,0,0]`,
//! `[0,0,1,1,0,0,0,0]`, `[0,0,0,0,1,1,1,1]`; for the bushy tree (b)
//! `(T1 ⋈ T2) ⋈ (T3 ⋈ T4)` they are the first four unit vectors padded to
//! width 8. Both are reproduced in this module's tests.
//!
//! Decoding reverts embeddings to a *unique* tree: leaves of the complete
//! tree are labeled by their occupying table; recursively, two sibling
//! blocks with the same single label merge into that label, and differing
//! blocks become a join node.
//!
//! The module also provides the tree positional encodings (Shiv & Quirk
//! \[30\]) used by the serializer (F.iii) to linearize a plan.

use crate::error::QueryError;
use crate::plan::{JoinTree, PlanNode};
use crate::Result;
use mtmlf_storage::TableId;

/// Per-table decoding embedding: occupancy over complete-binary-tree leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodingEmbedding {
    /// The base table this embedding positions.
    pub table: TableId,
    /// 0/1 occupancy vector, length = codec dimension.
    pub positions: Vec<f32>,
}

/// Encodes a join tree into per-table decoding embeddings of width `dim`.
///
/// `dim` must be a power of two and at least `2^height(tree)`. Tables are
/// returned in leaf order (left to right).
pub fn encode(tree: &JoinTree, dim: usize) -> Result<Vec<DecodingEmbedding>> {
    if !dim.is_power_of_two() {
        return Err(QueryError::InvalidTreeEmbedding(format!(
            "dimension {dim} is not a power of two"
        )));
    }
    let width = 1usize << tree.height();
    if width > dim {
        return Err(QueryError::InvalidTreeEmbedding(format!(
            "tree of height {} needs width {width} > dim {dim}",
            tree.height()
        )));
    }
    let mut out = Vec::with_capacity(tree.leaf_count());
    assign_blocks(tree, 0, width, dim, &mut out);
    Ok(out)
}

fn assign_blocks(
    tree: &JoinTree,
    lo: usize,
    hi: usize,
    dim: usize,
    out: &mut Vec<DecodingEmbedding>,
) {
    match tree {
        JoinTree::Leaf(table) => {
            let mut positions = vec![0.0f32; dim];
            for p in positions.iter_mut().take(hi).skip(lo) {
                *p = 1.0;
            }
            out.push(DecodingEmbedding {
                table: *table,
                positions,
            });
        }
        JoinTree::Node(l, r) => {
            let mid = lo + (hi - lo) / 2;
            assign_blocks(l, lo, mid, dim, out);
            assign_blocks(r, mid, hi, dim, out);
        }
    }
}

/// Decodes per-table embeddings back into the unique join tree they encode.
///
/// Values are thresholded at 0.5, so the decoder also accepts the soft
/// predictions `P̂_t` produced by `Trans_JO`.
pub fn decode(embeddings: &[DecodingEmbedding]) -> Result<JoinTree> {
    if embeddings.is_empty() {
        return Err(QueryError::InvalidTreeEmbedding("no embeddings".into()));
    }
    let dim = embeddings[0].positions.len();
    if embeddings.iter().any(|e| e.positions.len() != dim) {
        return Err(QueryError::InvalidTreeEmbedding(
            "inconsistent embedding dimensions".into(),
        ));
    }
    // Label each complete-tree leaf with its occupying table.
    let mut labels: Vec<Option<TableId>> = vec![None; dim];
    for e in embeddings {
        for (i, &v) in e.positions.iter().enumerate() {
            if v >= 0.5 {
                if labels[i].is_some() {
                    return Err(QueryError::InvalidTreeEmbedding(format!(
                        "leaf {i} claimed by two tables"
                    )));
                }
                labels[i] = Some(e.table);
            }
        }
    }
    // Active width: smallest power of two covering all occupied leaves.
    let last = labels
        .iter()
        .rposition(Option::is_some)
        .ok_or_else(|| QueryError::InvalidTreeEmbedding("all embeddings empty".into()))?;
    let width = (last + 1).next_power_of_two();
    let occupied = labels[..width].iter().filter(|l| l.is_some()).count();
    if occupied != width {
        return Err(QueryError::InvalidTreeEmbedding(format!(
            "{} of {width} active leaves unoccupied",
            width - occupied
        )));
    }
    let tree = build(&labels[..width])?;
    // Each table must appear exactly once as a decoded leaf.
    let leaves = tree.leaves();
    if leaves.len() != embeddings.len() {
        return Err(QueryError::InvalidTreeEmbedding(format!(
            "decoded {} leaves from {} embeddings (misaligned blocks)",
            leaves.len(),
            embeddings.len()
        )));
    }
    Ok(tree)
}

fn build(labels: &[Option<TableId>]) -> Result<JoinTree> {
    debug_assert!(!labels.is_empty());
    let Some(Some(first)) = labels.first().copied() else {
        return Err(QueryError::InvalidTreeEmbedding(
            "empty or unoccupied label block".into(),
        ));
    };
    if labels.iter().all(|&l| l == Some(first)) {
        return Ok(JoinTree::Leaf(first));
    }
    if labels.len() == 1 {
        return Err(QueryError::InvalidTreeEmbedding(
            "single leaf with conflicting labels".into(),
        ));
    }
    let mid = labels.len() / 2;
    Ok(JoinTree::join(
        build(&labels[..mid])?,
        build(&labels[mid..])?,
    ))
}

/// The codec dimension the paper uses for a database of `n` tables: a query
/// over `m ≤ n` tables in a left-deep plan has height `m − 1`, so width
/// `2^(m−1)`; the fixed dimension covers the worst case.
pub fn codec_dim(max_tables: usize) -> usize {
    1usize << max_tables.saturating_sub(1).min(16)
}

/// Tree positional encoding for each node of a plan in post-order.
///
/// Each node's position is its root-to-node path; level `ℓ` of the path
/// occupies two slots (`[1,0]` = left child, `[0,1]` = right child), zero
/// beyond the node's depth. Output vectors have length `2 * max_depth`.
pub fn node_positions(plan: &PlanNode, max_depth: usize) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(plan.node_count());
    let mut path = Vec::new();
    walk_positions(plan, &mut path, max_depth, &mut out);
    out
}

fn walk_positions(
    node: &PlanNode,
    path: &mut Vec<bool>, // false = left, true = right
    max_depth: usize,
    out: &mut Vec<Vec<f32>>,
) {
    if let PlanNode::Join { left, right, .. } = node {
        path.push(false);
        walk_positions(left, path, max_depth, out);
        path.pop();
        path.push(true);
        walk_positions(right, path, max_depth, out);
        path.pop();
    }
    let mut v = vec![0.0f32; 2 * max_depth];
    for (level, &turn) in path.iter().take(max_depth).enumerate() {
        v[2 * level + usize::from(turn)] = 1.0;
    }
    out.push(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> TableId {
        TableId(i)
    }

    /// Paper Figure 3(a)/Figure 4: left-deep `((T1 ⋈ T2) ⋈ T3) ⋈ T4`.
    #[test]
    fn paper_left_deep_example() {
        let tree = JoinTree::left_deep(&[tid(1), tid(2), tid(3), tid(4)]).unwrap();
        let e = encode(&tree, 8).unwrap();
        let rows: Vec<Vec<f32>> = e.iter().map(|d| d.positions.clone()).collect();
        assert_eq!(rows[0], vec![1., 0., 0., 0., 0., 0., 0., 0.]);
        assert_eq!(rows[1], vec![0., 1., 0., 0., 0., 0., 0., 0.]);
        assert_eq!(rows[2], vec![0., 0., 1., 1., 0., 0., 0., 0.]);
        assert_eq!(rows[3], vec![0., 0., 0., 0., 1., 1., 1., 1.]);
        assert_eq!(decode(&e).unwrap(), tree);
    }

    /// Paper Figure 3(b): bushy `(T1 ⋈ T2) ⋈ (T3 ⋈ T4)`.
    #[test]
    fn paper_bushy_example() {
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::Leaf(tid(1)), JoinTree::Leaf(tid(2))),
            JoinTree::join(JoinTree::Leaf(tid(3)), JoinTree::Leaf(tid(4))),
        );
        let e = encode(&tree, 8).unwrap();
        let rows: Vec<Vec<f32>> = e.iter().map(|d| d.positions.clone()).collect();
        assert_eq!(rows[0], vec![1., 0., 0., 0., 0., 0., 0., 0.]);
        assert_eq!(rows[1], vec![0., 1., 0., 0., 0., 0., 0., 0.]);
        assert_eq!(rows[2], vec![0., 0., 1., 0., 0., 0., 0., 0.]);
        assert_eq!(rows[3], vec![0., 0., 0., 1., 0., 0., 0., 0.]);
        assert_eq!(decode(&e).unwrap(), tree);
    }

    #[test]
    fn single_table() {
        let tree = JoinTree::Leaf(tid(9));
        let e = encode(&tree, 4).unwrap();
        assert_eq!(e[0].positions, vec![1., 0., 0., 0.]);
        assert_eq!(decode(&e).unwrap(), tree);
    }

    #[test]
    fn dim_validation() {
        let tree = JoinTree::left_deep(&[tid(0), tid(1), tid(2), tid(3)]).unwrap();
        assert!(encode(&tree, 4).is_err(), "height 3 needs width 8");
        assert!(encode(&tree, 6).is_err(), "non power of two");
        assert!(encode(&tree, 16).is_ok(), "padding allowed");
    }

    #[test]
    fn decode_rejects_conflicts() {
        let e = vec![
            DecodingEmbedding {
                table: tid(0),
                positions: vec![1., 0.],
            },
            DecodingEmbedding {
                table: tid(1),
                positions: vec![1., 0.],
            },
        ];
        assert!(decode(&e).is_err());
    }

    #[test]
    fn decode_rejects_gaps() {
        let e = vec![
            DecodingEmbedding {
                table: tid(0),
                positions: vec![1., 0., 0., 0.],
            },
            DecodingEmbedding {
                table: tid(1),
                positions: vec![0., 0., 0., 1.],
            },
        ];
        assert!(decode(&e).is_err(), "leaves 1,2 unoccupied within width 4");
    }

    #[test]
    fn decode_thresholds_soft_values() {
        let e = vec![
            DecodingEmbedding {
                table: tid(0),
                positions: vec![0.9, 0.1],
            },
            DecodingEmbedding {
                table: tid(1),
                positions: vec![0.2, 0.8],
            },
        ];
        let tree = decode(&e).unwrap();
        assert_eq!(
            tree,
            JoinTree::join(JoinTree::Leaf(tid(0)), JoinTree::Leaf(tid(1)))
        );
    }

    #[test]
    fn codec_dim_bounds() {
        assert_eq!(codec_dim(1), 1);
        assert_eq!(codec_dim(4), 8);
        assert_eq!(codec_dim(8), 128);
    }

    #[test]
    fn positions_shape_and_root() {
        let plan = PlanNode::left_deep(&[tid(0), tid(1), tid(2)]).unwrap();
        let pos = node_positions(&plan, 4);
        assert_eq!(pos.len(), plan.node_count());
        // Root is last in post-order and has the zero path.
        assert!(pos.last().unwrap().iter().all(|&x| x == 0.0));
        // First node is the deepest-left leaf: path LL -> [1,0,1,0,0,0,0,0].
        assert_eq!(pos[0], vec![1., 0., 1., 0., 0., 0., 0., 0.]);
        // Third node (the inner join, path L) -> [1,0,0,...].
        assert_eq!(pos[2], vec![1., 0., 0., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn positions_distinguish_siblings() {
        let plan = PlanNode::left_deep(&[tid(0), tid(1)]).unwrap();
        let pos = node_positions(&plan, 2);
        assert_eq!(pos[0], vec![1., 0., 0., 0.]); // left leaf
        assert_eq!(pos[1], vec![0., 1., 0., 0.]); // right leaf
        assert_eq!(pos[2], vec![0., 0., 0., 0.]); // root
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: random join trees over distinct tables with ≤ `max` leaves.
    fn arb_tree(max: usize) -> impl Strategy<Value = JoinTree> {
        // Generate a shape via random split points over a permutation.
        (2..=max).prop_flat_map(|n| {
            let perm = Just((0..n as u32).map(TableId).collect::<Vec<_>>());
            (perm, proptest::collection::vec(any::<bool>(), n * 2))
                .prop_map(|(tables, bits)| build_random(&tables, &bits, &mut 0))
        })
    }

    fn build_random(tables: &[TableId], bits: &[bool], cursor: &mut usize) -> JoinTree {
        if tables.len() == 1 {
            return JoinTree::Leaf(tables[0]);
        }
        let b = bits.get(*cursor).copied().unwrap_or(false);
        *cursor += 1;
        // Split point: either 1 (left-deep-ish) or half (bushy-ish).
        let split = if b {
            tables.len() / 2
        } else {
            tables.len() - 1
        };
        let split = split.clamp(1, tables.len() - 1);
        JoinTree::join(
            build_random(&tables[..split], bits, cursor),
            build_random(&tables[split..], bits, cursor),
        )
    }

    proptest! {
        /// Any tree round-trips through the codec (paper: "revert a unique
        /// tree from the decoding embeddings").
        #[test]
        fn roundtrip(tree in arb_tree(7)) {
            let dim = (1usize << tree.height()).max(1);
            let embeddings = encode(&tree, dim).unwrap();
            let back = decode(&embeddings).unwrap();
            prop_assert_eq!(back, tree);
        }

        /// Padding to a larger dimension does not change the decoded tree.
        #[test]
        fn roundtrip_padded(tree in arb_tree(6)) {
            let dim = (1usize << tree.height()).max(1) * 4;
            let embeddings = encode(&tree, dim).unwrap();
            let back = decode(&embeddings).unwrap();
            prop_assert_eq!(back, tree);
        }

        /// Embeddings partition the active width: disjoint and covering.
        #[test]
        fn embeddings_partition(tree in arb_tree(6)) {
            let width = 1usize << tree.height();
            let embeddings = encode(&tree, width).unwrap();
            let mut sum = vec![0.0f32; width];
            for e in &embeddings {
                for (s, v) in sum.iter_mut().zip(&e.positions) {
                    *s += v;
                }
            }
            prop_assert!(sum.iter().all(|&s| s == 1.0));
        }
    }
}

//! Error type for query/plan construction.

use mtmlf_storage::TableId;
use std::fmt;

/// Errors produced when constructing or validating queries and plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A query must touch at least one table.
    EmptyQuery,
    /// A join predicate references a table outside the query's table set.
    JoinTableNotInQuery(TableId),
    /// A filter references a table outside the query's table set.
    FilterTableNotInQuery(TableId),
    /// The query's join graph is disconnected (cross products unsupported).
    DisconnectedJoinGraph,
    /// A join order listed a table that is not part of the query.
    OrderTableNotInQuery(TableId),
    /// A join order did not cover all query tables exactly once.
    OrderNotAPermutation,
    /// A join order is not executable: no join predicate connects the next
    /// table to the already-joined prefix.
    IllegalOrder {
        /// Position in the order where legality broke.
        position: usize,
        /// The offending table.
        table: TableId,
    },
    /// Too many tables for the bitset representation (max 64).
    TooManyTables(usize),
    /// A decoding embedding set could not be reverted to a tree.
    InvalidTreeEmbedding(String),
    /// A LIKE pattern was not of a supported shape.
    UnsupportedLikePattern(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyQuery => write!(f, "query touches no tables"),
            Self::JoinTableNotInQuery(t) => {
                write!(f, "join predicate references table {t} outside the query")
            }
            Self::FilterTableNotInQuery(t) => {
                write!(f, "filter references table {t} outside the query")
            }
            Self::DisconnectedJoinGraph => write!(f, "join graph is disconnected"),
            Self::OrderTableNotInQuery(t) => {
                write!(f, "join order references table {t} outside the query")
            }
            Self::OrderNotAPermutation => {
                write!(f, "join order is not a permutation of the query tables")
            }
            Self::IllegalOrder { position, table } => write!(
                f,
                "illegal join order: table {table} at position {position} has no join \
                 predicate with the joined prefix"
            ),
            Self::TooManyTables(n) => write!(f, "too many tables for bitset join graph: {n} > 64"),
            Self::InvalidTreeEmbedding(msg) => write!(f, "invalid tree embedding: {msg}"),
            Self::UnsupportedLikePattern(p) => write!(f, "unsupported LIKE pattern `{p}`"),
        }
    }
}

impl std::error::Error for QueryError {}

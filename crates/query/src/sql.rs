//! A SQL parser for the JOB-shaped query class.
//!
//! Parses `SELECT COUNT(*) FROM t1 [a1], t2 [a2], ... WHERE <cond> AND ...`
//! against a database catalog, resolving table/column names (and aliases)
//! to ids and typing literals by column type. Supported conditions:
//!
//! - equi-joins: `a.col = b.col`;
//! - comparisons: `a.col {=, <>, <, <=, >, >=} literal`;
//! - ranges: `a.col BETWEEN lo AND hi`;
//! - patterns: `a.col LIKE '%...%'` (the JOB predicate shapes);
//! - sets: `a.col IN (v1, v2, ...)`.
//!
//! This is the textual front door of the reproduction: the JOB benchmark's
//! queries (restricted to the join/filter class the paper models) parse
//! directly.

use crate::predicate::{CmpOp, ColumnRef, FilterPredicate, JoinPredicate, LikePattern};
use crate::query::Query;
use mtmlf_storage::{ColumnType, Database, TableId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// SQL parsing errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error.
    Lex {
        /// Byte offset.
        position: usize,
        /// Message.
        message: String,
    },
    /// Grammar error.
    Parse {
        /// Byte offset of the offending token.
        position: usize,
        /// Message.
        message: String,
    },
    /// Name-resolution error.
    Resolve(String),
    /// The assembled query failed validation.
    Semantic(crate::QueryError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lex { position, message } => write!(f, "lex error at byte {position}: {message}"),
            Self::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Self::Resolve(m) => write!(f, "name resolution: {m}"),
            Self::Semantic(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Token, usize)>, SqlError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b',' => {
                    out.push((Token::Comma, start));
                    self.pos += 1;
                }
                b'.' => {
                    out.push((Token::Dot, start));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Token::LParen, start));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Token::RParen, start));
                    self.pos += 1;
                }
                b'*' => {
                    out.push((Token::Star, start));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((Token::Eq, start));
                    self.pos += 1;
                }
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => {
                            out.push((Token::Le, start));
                            self.pos += 1;
                        }
                        Some(b'>') => {
                            out.push((Token::Neq, start));
                            self.pos += 1;
                        }
                        _ => out.push((Token::Lt, start)),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        out.push((Token::Ge, start));
                        self.pos += 1;
                    } else {
                        out.push((Token::Gt, start));
                    }
                }
                b'!' => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        out.push((Token::Neq, start));
                        self.pos += 1;
                    } else {
                        return Err(SqlError::Lex {
                            position: start,
                            message: "expected `!=`".into(),
                        });
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.bytes.get(self.pos) {
                            Some(b'\'') => {
                                // Doubled quote escapes a quote.
                                if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                                    s.push('\'');
                                    self.pos += 2;
                                } else {
                                    self.pos += 1;
                                    break;
                                }
                            }
                            Some(_) => {
                                let ch_start = self.pos;
                                match self.src[ch_start..].chars().next() {
                                    Some(ch) => {
                                        s.push(ch);
                                        self.pos += ch.len_utf8();
                                    }
                                    // Unreachable: `bytes.get(pos)` was `Some`,
                                    // so a char starts here; bail defensively.
                                    None => break,
                                }
                            }
                            None => {
                                return Err(SqlError::Lex {
                                    position: start,
                                    message: "unterminated string literal".into(),
                                })
                            }
                        }
                    }
                    out.push((Token::Str(s), start));
                }
                b'0'..=b'9' | b'-' => {
                    let mut end = self.pos + 1;
                    let mut is_float = false;
                    while end < self.bytes.len() {
                        match self.bytes[end] {
                            b'0'..=b'9' => end += 1,
                            b'.' if !is_float
                                && end + 1 < self.bytes.len()
                                && self.bytes[end + 1].is_ascii_digit() =>
                            {
                                is_float = true;
                                end += 1;
                            }
                            _ => break,
                        }
                    }
                    let text = &self.src[self.pos..end];
                    let token = if is_float {
                        Token::Float(text.parse().map_err(|_| SqlError::Lex {
                            position: start,
                            message: format!("bad float `{text}`"),
                        })?)
                    } else {
                        Token::Int(text.parse().map_err(|_| SqlError::Lex {
                            position: start,
                            message: format!("bad integer `{text}`"),
                        })?)
                    };
                    out.push((token, start));
                    self.pos = end;
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    let mut end = self.pos + 1;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    out.push((Token::Ident(self.src[self.pos..end].to_string()), start));
                    self.pos = end;
                }
                other => {
                    return Err(SqlError::Lex {
                        position: start,
                        message: format!("unexpected byte `{}`", other as char),
                    })
                }
            }
        }
        Ok(out)
    }
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    cursor: usize,
    db: &'a Database,
    /// alias (lowercased) -> table id.
    scope: BTreeMap<String, TableId>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(t, _)| t)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.cursor)
            .or_else(|| self.tokens.last())
            .map_or(0, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(t, _)| t.clone());
        self.cursor += 1;
        t
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            position: self.position(),
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.bump() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            _ => Err(self.error(format!("expected `{kw}`"))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_token(&mut self, token: Token, what: &str) -> Result<(), SqlError> {
        match self.bump() {
            Some(t) if t == token => Ok(()),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn parse_query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        self.expect_keyword("COUNT")?;
        self.expect_token(Token::LParen, "`(`")?;
        self.expect_token(Token::Star, "`*`")?;
        self.expect_token(Token::RParen, "`)`")?;
        self.expect_keyword("FROM")?;
        self.parse_table_list()?;

        let mut joins: Vec<JoinPredicate> = Vec::new();
        let mut filters: BTreeMap<TableId, Vec<FilterPredicate>> = BTreeMap::new();
        if self.keyword_is("WHERE") {
            self.bump();
            loop {
                self.parse_condition(&mut joins, &mut filters)?;
                if self.keyword_is("AND") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if self.peek().is_some() {
            return Err(self.error("trailing tokens after query"));
        }
        let tables: Vec<TableId> = self.scope.values().copied().collect();
        Query::new(tables, joins, filters).map_err(SqlError::Semantic)
    }

    fn parse_table_list(&mut self) -> Result<(), SqlError> {
        loop {
            let name = match self.bump() {
                Some(Token::Ident(s)) => s,
                _ => return Err(self.error("expected table name")),
            };
            // Exact match first, then case-insensitive (catalog names are
            // conventionally lower-case).
            let id = self
                .db
                .table_id(&name)
                .or_else(|_| self.db.table_id(&name.to_ascii_lowercase()))
                .map_err(|_| SqlError::Resolve(format!("unknown table `{name}`")))?;
            // Optional alias: a bare identifier that is not a keyword.
            let alias = match self.peek() {
                Some(Token::Ident(s))
                    if !s.eq_ignore_ascii_case("WHERE") && !s.eq_ignore_ascii_case("AND") =>
                {
                    let a = s.clone();
                    self.bump();
                    a
                }
                _ => name.clone(),
            };
            // Self-joins are outside the modeled query class: the same
            // table under two aliases would otherwise be silently merged by
            // the query validator and fail confusingly at execution time.
            if self.scope.values().any(|&t| t == id) {
                return Err(SqlError::Resolve(format!(
                    "table `{name}` appears twice in FROM — self-joins are not supported"
                )));
            }
            let key = alias.to_ascii_lowercase();
            if self.scope.insert(key, id).is_some() {
                return Err(SqlError::Resolve(format!(
                    "duplicate table or alias `{alias}`"
                )));
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.bump();
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_column(&mut self) -> Result<(ColumnRef, ColumnType), SqlError> {
        let table_alias = match self.bump() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.error("expected qualified column `table.column`")),
        };
        self.expect_token(Token::Dot, "`.` in qualified column")?;
        let column_name = match self.bump() {
            Some(Token::Ident(s)) => s,
            _ => return Err(self.error("expected column name")),
        };
        let table = *self
            .scope
            .get(&table_alias.to_ascii_lowercase())
            .ok_or_else(|| SqlError::Resolve(format!("unknown table alias `{table_alias}`")))?;
        let schema = self
            .db
            .table(table)
            .map_err(|e| SqlError::Resolve(e.to_string()))?
            .schema();
        let column = schema.column_id(&column_name).ok_or_else(|| {
            SqlError::Resolve(format!(
                "unknown column `{column_name}` on table `{}`",
                schema.name
            ))
        })?;
        let ctype = schema
            .column(column)
            .ok_or_else(|| {
                SqlError::Resolve(format!(
                    "column id {column} missing on table `{}`",
                    schema.name
                ))
            })?
            .ctype;
        Ok((ColumnRef::new(table, column), ctype))
    }

    fn parse_literal(&mut self, ctype: ColumnType) -> Result<Value, SqlError> {
        match (self.bump(), ctype) {
            (Some(Token::Int(v)), ColumnType::Int) => Ok(Value::Int(v)),
            (Some(Token::Int(v)), ColumnType::Float) => Ok(Value::Float(v as f64)),
            (Some(Token::Float(v)), ColumnType::Float) => Ok(Value::Float(v)),
            (Some(Token::Str(s)), ColumnType::Str) => Ok(Value::str(s)),
            (Some(t), _) => Err(self.error(format!(
                "literal {t:?} does not match column type {}",
                ctype.name()
            ))),
            (None, _) => Err(self.error("expected literal")),
        }
    }

    fn parse_condition(
        &mut self,
        joins: &mut Vec<JoinPredicate>,
        filters: &mut BTreeMap<TableId, Vec<FilterPredicate>>,
    ) -> Result<(), SqlError> {
        let (left, ctype) = self.parse_column()?;
        if self.keyword_is("BETWEEN") {
            self.bump();
            let lo = self.parse_literal(ctype)?;
            self.expect_keyword("AND")?;
            let hi = self.parse_literal(ctype)?;
            filters
                .entry(left.table)
                .or_default()
                .push(FilterPredicate::Between {
                    column: left.column,
                    lo,
                    hi,
                });
            return Ok(());
        }
        if self.keyword_is("LIKE") {
            self.bump();
            let pattern = match self.bump() {
                Some(Token::Str(s)) => LikePattern::parse(&s).map_err(SqlError::Semantic)?,
                _ => return Err(self.error("expected string pattern after LIKE")),
            };
            filters
                .entry(left.table)
                .or_default()
                .push(FilterPredicate::Like {
                    column: left.column,
                    pattern,
                });
            return Ok(());
        }
        if self.keyword_is("IN") {
            self.bump();
            self.expect_token(Token::LParen, "`(` after IN")?;
            let mut values = Vec::new();
            loop {
                values.push(self.parse_literal(ctype)?);
                match self.bump() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    _ => return Err(self.error("expected `,` or `)` in IN list")),
                }
            }
            filters
                .entry(left.table)
                .or_default()
                .push(FilterPredicate::InSet {
                    column: left.column,
                    values,
                });
            return Ok(());
        }
        let op = match self.bump() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Neq) => CmpOp::Neq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.error("expected comparison operator")),
        };
        // `a.x = b.y` (another qualified column) is a join predicate.
        let is_column = matches!(
            (
                self.peek(),
                self.tokens.get(self.cursor + 1).map(|(t, _)| t)
            ),
            (Some(Token::Ident(_)), Some(Token::Dot))
        );
        if is_column {
            if op != CmpOp::Eq {
                return Err(self.error("only equi-joins are supported between columns"));
            }
            let (right, _) = self.parse_column()?;
            if left.table == right.table {
                return Err(SqlError::Resolve(
                    "self-joins are not supported".to_string(),
                ));
            }
            joins.push(JoinPredicate::new(left, right));
        } else {
            let value = self.parse_literal(ctype)?;
            filters
                .entry(left.table)
                .or_default()
                .push(FilterPredicate::Cmp {
                    column: left.column,
                    op,
                    value,
                });
        }
        Ok(())
    }
}

/// Renders a query back to SQL text using the catalog's real table and
/// column names — the inverse of [`parse_sql`] (round-trip safe for every
/// query this module can parse). Useful for exporting generated workloads
/// to other systems.
pub fn to_sql(db: &Database, query: &Query) -> Result<String, SqlError> {
    let table_name = |t: TableId| -> Result<&str, SqlError> {
        Ok(db
            .table(t)
            .map_err(|e| SqlError::Resolve(e.to_string()))?
            .name())
    };
    let column_name = |t: TableId, c: crate::predicate::ColumnRef| -> Result<String, SqlError> {
        debug_assert_eq!(t, c.table);
        let schema = db
            .table(t)
            .map_err(|e| SqlError::Resolve(e.to_string()))?
            .schema();
        let def = schema
            .column(c.column)
            .ok_or_else(|| SqlError::Resolve(format!("column {} out of range", c.column)))?;
        Ok(format!("{}.{}", schema.name, def.name))
    };
    let lit = |v: &Value| -> String {
        match v {
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            other => other.to_string(),
        }
    };
    let mut sql = String::from("SELECT COUNT(*) FROM ");
    for (i, &t) in query.tables().iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(table_name(t)?);
    }
    let mut conds: Vec<String> = Vec::new();
    for j in query.joins() {
        conds.push(format!(
            "{} = {}",
            column_name(j.left.table, j.left)?,
            column_name(j.right.table, j.right)?
        ));
    }
    for (t, preds) in query.filters() {
        let schema = db
            .table(t)
            .map_err(|e| SqlError::Resolve(e.to_string()))?
            .schema();
        for p in preds {
            let col = schema
                .column(p.column())
                .ok_or_else(|| SqlError::Resolve(format!("column {} out of range", p.column())))?;
            let qualified = format!("{}.{}", schema.name, col.name);
            conds.push(match p {
                FilterPredicate::Cmp { op, value, .. } => {
                    format!("{qualified} {} {}", op.symbol(), lit(value))
                }
                FilterPredicate::Between { lo, hi, .. } => {
                    format!("{qualified} BETWEEN {} AND {}", lit(lo), lit(hi))
                }
                FilterPredicate::Like { pattern, .. } => {
                    format!("{qualified} LIKE '{}'", pattern.sql())
                }
                FilterPredicate::InSet { values, .. } => {
                    let vs: Vec<String> = values.iter().map(&lit).collect();
                    format!("{qualified} IN ({})", vs.join(", "))
                }
            });
        }
    }
    if !conds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    Ok(sql)
}

/// Parses a SQL string against a database catalog.
pub fn parse_sql(db: &Database, sql: &str) -> Result<Query, SqlError> {
    let tokens = Lexer::new(sql).tokens()?;
    let mut parser = Parser {
        tokens,
        cursor: 0,
        db,
        scope: BTreeMap::new(),
    };
    parser.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf_storage::{Column, ColumnDef, TableSchema};

    pub(super) fn make_db() -> Database {
        let mut db = Database::new("sql");
        let title = mtmlf_storage::Table::from_columns(
            TableSchema::new(
                "title",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("production_year", ColumnType::Int),
                    ColumnDef::attr("name", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int(vec![0, 1, 2]),
                Column::Int(vec![1990, 2000, 2010]),
                Column::str_from_strings(&["alpha", "beta", "gamma"]),
            ],
        )
        .unwrap();
        db.add_table(title).unwrap();
        let cast = mtmlf_storage::Table::from_columns(
            TableSchema::new(
                "cast_info",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", TableId(0)),
                    ColumnDef::attr("role", ColumnType::Int),
                ],
            ),
            vec![
                Column::Int(vec![0, 1]),
                Column::Int(vec![0, 2]),
                Column::Int(vec![1, 2]),
            ],
        )
        .unwrap();
        db.add_table(cast).unwrap();
        db
    }

    #[test]
    fn parses_join_and_filters() {
        let db = make_db();
        let q = parse_sql(
            &db,
            "SELECT COUNT(*) FROM title t, cast_info ci \
             WHERE ci.movie_id = t.id AND t.production_year >= 2000 \
             AND t.name LIKE '%alp%' AND ci.role IN (1, 2)",
        )
        .unwrap();
        assert_eq!(q.table_count(), 2);
        assert_eq!(q.joins().len(), 1);
        assert_eq!(q.filters_on(TableId(0)).len(), 2);
        assert_eq!(q.filters_on(TableId(1)).len(), 1);
    }

    #[test]
    fn between_and_string_equality() {
        let db = make_db();
        let q = parse_sql(
            &db,
            "SELECT COUNT(*) FROM title \
             WHERE title.production_year BETWEEN 1995 AND 2005 AND title.name = 'beta'",
        )
        .unwrap();
        assert_eq!(q.filters_on(TableId(0)).len(), 2);
        assert!(matches!(
            q.filters_on(TableId(0))[0],
            FilterPredicate::Between { .. }
        ));
    }

    #[test]
    fn case_insensitive_keywords_and_aliases() {
        let db = make_db();
        let q = parse_sql(
            &db,
            "select count(*) from Title T, cast_info C where C.movie_id = T.id",
        )
        .unwrap();
        assert_eq!(q.joins().len(), 1);
    }

    #[test]
    fn resolution_errors() {
        let db = make_db();
        assert!(matches!(
            parse_sql(&db, "SELECT COUNT(*) FROM nope"),
            Err(SqlError::Resolve(_))
        ));
        assert!(matches!(
            parse_sql(&db, "SELECT COUNT(*) FROM title WHERE title.zzz = 1"),
            Err(SqlError::Resolve(_))
        ));
        assert!(matches!(
            parse_sql(&db, "SELECT COUNT(*) FROM title WHERE x.id = 1"),
            Err(SqlError::Resolve(_))
        ));
    }

    #[test]
    fn type_checked_literals() {
        let db = make_db();
        assert!(parse_sql(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year = 'nineteen'"
        )
        .is_err());
        assert!(parse_sql(&db, "SELECT COUNT(*) FROM title WHERE title.name = 42").is_err());
    }

    #[test]
    fn grammar_errors_have_positions() {
        let db = make_db();
        let err = parse_sql(&db, "SELECT COUNT(*) FORM title").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }), "{err}");
        let err = parse_sql(&db, "SELECT COUNT(*) FROM title WHERE").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }), "{err}");
    }

    #[test]
    fn disconnected_join_graph_rejected_semantically() {
        let db = make_db();
        let err = parse_sql(&db, "SELECT COUNT(*) FROM title, cast_info").unwrap_err();
        assert!(matches!(err, SqlError::Semantic(_)), "{err}");
    }

    #[test]
    fn string_escapes_and_unterminated() {
        let db = make_db();
        let q = parse_sql(&db, "SELECT COUNT(*) FROM title WHERE title.name = 'it''s'").unwrap();
        match &q.filters_on(TableId(0))[0] {
            FilterPredicate::Cmp { value, .. } => assert_eq!(value.as_str(), Some("it's")),
            other => panic!("unexpected predicate {other:?}"),
        }
        assert!(matches!(
            parse_sql(&db, "SELECT COUNT(*) FROM title WHERE title.name = 'oops"),
            Err(SqlError::Lex { .. })
        ));
    }
}

#[cfg(test)]
mod to_sql_tests {
    use super::tests::make_db;
    use super::*;

    #[test]
    fn roundtrips_through_text() {
        let db = make_db();
        let original = parse_sql(
            &db,
            "SELECT COUNT(*) FROM title, cast_info \
             WHERE cast_info.movie_id = title.id AND title.production_year BETWEEN 1995 AND 2005 \
             AND title.name LIKE '%alp%' AND cast_info.role IN (1, 2)",
        )
        .unwrap();
        let text = to_sql(&db, &original).unwrap();
        let reparsed = parse_sql(&db, &text).unwrap();
        assert_eq!(original, reparsed, "round trip through SQL text:\n{text}");
    }

    #[test]
    fn escapes_quotes() {
        let db = make_db();
        let mut filters = std::collections::BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: mtmlf_storage::ColumnId(2),
                op: CmpOp::Eq,
                value: Value::str("it's"),
            }],
        );
        let q = Query::new(vec![TableId(0)], vec![], filters).unwrap();
        let text = to_sql(&db, &q).unwrap();
        assert!(text.contains("'it''s'"), "{text}");
        let reparsed = parse_sql(&db, &text).unwrap();
        assert_eq!(q, reparsed);
    }
}

#[cfg(test)]
mod self_join_tests {
    use super::tests::make_db;
    use super::*;

    #[test]
    fn self_joins_rejected_at_parse_time() {
        let db = make_db();
        let err = parse_sql(
            &db,
            "SELECT COUNT(*) FROM title t1, title t2 WHERE t1.id = t2.id",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Resolve(_)), "{err}");
        assert!(err.to_string().contains("self-join"), "{err}");
    }
}

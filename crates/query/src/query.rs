//! The query type `Q = (T_Q, j_Q, f_Q)`.

use crate::error::QueryError;
use crate::graph::JoinGraph;
use crate::predicate::{FilterPredicate, JoinPredicate};
use crate::Result;
use mtmlf_storage::TableId;
use std::collections::BTreeMap;
use std::fmt;

/// A select-project-join query in the paper's form: a set of touched tables,
/// equi-join predicates between them, and conjunctive per-table filters.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    tables: Vec<TableId>,
    joins: Vec<JoinPredicate>,
    filters: BTreeMap<TableId, Vec<FilterPredicate>>,
}

impl Query {
    /// Builds and validates a query.
    ///
    /// Invariants enforced:
    /// - at least one table, no duplicates;
    /// - every join predicate connects two tables in the set;
    /// - every filter's table is in the set;
    /// - the join graph is connected (no cross products).
    pub fn new(
        mut tables: Vec<TableId>,
        joins: Vec<JoinPredicate>,
        filters: BTreeMap<TableId, Vec<FilterPredicate>>,
    ) -> Result<Self> {
        if tables.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        tables.sort_unstable();
        tables.dedup();
        for j in &joins {
            for side in [j.left.table, j.right.table] {
                if !tables.contains(&side) {
                    return Err(QueryError::JoinTableNotInQuery(side));
                }
            }
        }
        for t in filters.keys() {
            if !tables.contains(t) {
                return Err(QueryError::FilterTableNotInQuery(*t));
            }
        }
        let q = Self {
            tables,
            joins,
            filters,
        };
        if q.tables.len() > 1 {
            let graph = q.join_graph()?;
            if !graph.is_connected() {
                return Err(QueryError::DisconnectedJoinGraph);
            }
        }
        Ok(q)
    }

    /// Touched tables, sorted ascending.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Number of touched tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Join predicates.
    pub fn joins(&self) -> &[JoinPredicate] {
        &self.joins
    }

    /// Filters on `table` (empty slice if none).
    pub fn filters_on(&self, table: TableId) -> &[FilterPredicate] {
        self.filters.get(&table).map_or(&[], Vec::as_slice)
    }

    /// All `(table, filters)` pairs with at least one filter.
    pub fn filters(&self) -> impl Iterator<Item = (TableId, &[FilterPredicate])> {
        self.filters.iter().map(|(t, f)| (*t, f.as_slice()))
    }

    /// Join predicates connecting tables `a` and `b`.
    pub fn joins_between(&self, a: TableId, b: TableId) -> Vec<&JoinPredicate> {
        self.joins.iter().filter(|j| j.connects(a, b)).collect()
    }

    /// The query-local join graph (vertices = touched tables).
    pub fn join_graph(&self) -> Result<JoinGraph> {
        JoinGraph::from_query(self)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT COUNT(*) FROM ")?;
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        let mut first = true;
        for j in &self.joins {
            write!(f, "{} {j}", if first { " WHERE" } else { " AND" })?;
            first = false;
        }
        for (t, preds) in &self.filters {
            for p in preds {
                write!(f, "{} {t}.{p}", if first { " WHERE" } else { " AND" })?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, ColumnRef};
    use mtmlf_storage::{ColumnId, Value};

    fn jp(a: u32, ac: u32, b: u32, bc: u32) -> JoinPredicate {
        JoinPredicate::new(
            ColumnRef::new(TableId(a), ColumnId(ac)),
            ColumnRef::new(TableId(b), ColumnId(bc)),
        )
    }

    #[test]
    fn valid_chain_query() {
        let q = Query::new(
            vec![TableId(0), TableId(1), TableId(2)],
            vec![jp(0, 1, 1, 0), jp(1, 1, 2, 0)],
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(q.table_count(), 3);
        assert_eq!(q.joins_between(TableId(0), TableId(1)).len(), 1);
        assert_eq!(q.joins_between(TableId(0), TableId(2)).len(), 0);
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(
            Query::new(vec![], vec![], BTreeMap::new()).unwrap_err(),
            QueryError::EmptyQuery
        );
    }

    #[test]
    fn join_outside_tables_rejected() {
        let err = Query::new(
            vec![TableId(0), TableId(1)],
            vec![jp(0, 0, 5, 0)],
            BTreeMap::new(),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::JoinTableNotInQuery(TableId(5)));
    }

    #[test]
    fn filter_outside_tables_rejected() {
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(7),
            vec![FilterPredicate::Cmp {
                column: ColumnId(0),
                op: CmpOp::Eq,
                value: Value::Int(1),
            }],
        );
        let err = Query::new(vec![TableId(0)], vec![], filters).unwrap_err();
        assert_eq!(err, QueryError::FilterTableNotInQuery(TableId(7)));
    }

    #[test]
    fn disconnected_rejected() {
        let err = Query::new(
            vec![TableId(0), TableId(1), TableId(2), TableId(3)],
            vec![jp(0, 0, 1, 0), jp(2, 0, 3, 0)],
            BTreeMap::new(),
        )
        .unwrap_err();
        assert_eq!(err, QueryError::DisconnectedJoinGraph);
    }

    #[test]
    fn tables_deduped_and_sorted() {
        let q = Query::new(
            vec![TableId(2), TableId(0), TableId(2)],
            vec![jp(0, 0, 2, 0)],
            BTreeMap::new(),
        )
        .unwrap();
        assert_eq!(q.tables(), &[TableId(0), TableId(2)]);
    }

    #[test]
    fn display_sqlish() {
        let mut filters = BTreeMap::new();
        filters.insert(
            TableId(0),
            vec![FilterPredicate::Cmp {
                column: ColumnId(1),
                op: CmpOp::Lt,
                value: Value::Int(5),
            }],
        );
        let q = Query::new(vec![TableId(0), TableId(1)], vec![jp(0, 0, 1, 0)], filters).unwrap();
        let s = q.to_string();
        assert!(s.contains("FROM T0, T1"), "{s}");
        assert!(s.contains("WHERE"), "{s}");
        assert!(s.contains("T0.c1 < 5"), "{s}");
    }
}

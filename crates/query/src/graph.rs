//! Join-graph adjacency bitsets and the beam-search legality frontier.
//!
//! Section 4.3 of the paper: "we utilize this relationship to construct a
//! corresponding adjacency matrix for each query ... we only choose
//! candidates from tables having join key with current joined table ...
//! After selection, we perform AND operation on the adjacency vector of the
//! selected table and current joined table" — the "AND" in the paper
//! accumulates reachability; here the frontier is the OR of adjacency rows
//! of the joined prefix minus the prefix itself, which is the executable-next
//! set the pruning strategy needs.

use crate::error::QueryError;
use crate::query::Query;
use crate::Result;
use mtmlf_storage::TableId;
use std::collections::HashMap;

/// Adjacency structure over the tables of one query, in *local* vertex ids
/// `0..n` (dense), with a mapping back to global [`TableId`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGraph {
    /// Global table id of each local vertex, ascending.
    vertices: Vec<TableId>,
    /// `adj[i]` has bit `j` set iff a join predicate connects vertices i, j.
    adj: Vec<u64>,
}

impl JoinGraph {
    /// Builds the join graph of a query.
    pub fn from_query(query: &Query) -> Result<Self> {
        let vertices: Vec<TableId> = query.tables().to_vec();
        if vertices.len() > 64 {
            return Err(QueryError::TooManyTables(vertices.len()));
        }
        let index: HashMap<TableId, usize> =
            vertices.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut adj = vec![0u64; vertices.len()];
        for j in query.joins() {
            let a = index[&j.left.table];
            let b = index[&j.right.table];
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
        Ok(Self { vertices, adj })
    }

    /// Builds a graph directly from vertices and undirected edges in local
    /// ids (used by generators and tests).
    pub fn from_edges(vertices: Vec<TableId>, edges: &[(usize, usize)]) -> Result<Self> {
        if vertices.len() > 64 {
            return Err(QueryError::TooManyTables(vertices.len()));
        }
        let mut adj = vec![0u64; vertices.len()];
        for &(a, b) in edges {
            adj[a] |= 1 << b;
            adj[b] |= 1 << a;
        }
        Ok(Self { vertices, adj })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Global table id of local vertex `i`.
    pub fn table(&self, i: usize) -> TableId {
        self.vertices[i]
    }

    /// Local vertex of a global table id, if present.
    pub fn vertex_of(&self, t: TableId) -> Option<usize> {
        self.vertices.binary_search(&t).ok()
    }

    /// Adjacency bitset of vertex `i`.
    pub fn adjacency(&self, i: usize) -> u64 {
        self.adj[i]
    }

    /// True when vertices `a` and `b` are directly joinable.
    pub fn joinable(&self, a: usize, b: usize) -> bool {
        self.adj[a] & (1 << b) != 0
    }

    /// True when the graph is connected (single vertex counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.vertices.is_empty() {
            return false;
        }
        let full: u64 = if self.vertices.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.vertices.len()) - 1
        };
        self.reachable_from(0) == full
    }

    /// Bitset of vertices reachable from `start`.
    pub fn reachable_from(&self, start: usize) -> u64 {
        let mut seen = 1u64 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v];
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen
    }

    /// The legality frontier: vertices (as a bitset) that can legally join
    /// *next* given the already-joined `prefix` bitset. Empty prefix means
    /// every vertex is a legal start.
    pub fn frontier(&self, prefix: u64) -> u64 {
        if prefix == 0 {
            return if self.vertices.len() == 64 {
                u64::MAX
            } else {
                (1u64 << self.vertices.len()) - 1
            };
        }
        let mut reach = 0u64;
        let mut p = prefix;
        while p != 0 {
            let v = p.trailing_zeros() as usize;
            p &= p - 1;
            reach |= self.adj[v];
        }
        reach & !prefix
    }

    /// True when a bitset of vertices induces a connected subgraph.
    pub fn subset_connected(&self, subset: u64) -> bool {
        if subset == 0 {
            return false;
        }
        let start = subset.trailing_zeros() as usize;
        let mut seen = 1u64 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u64;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v] & subset;
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen == subset
    }

    /// Checks a left-deep order (local vertex ids) for legality: each next
    /// vertex must join with the prefix.
    pub fn check_left_deep(&self, order: &[usize]) -> Result<()> {
        if order.len() != self.vertices.len() {
            return Err(QueryError::OrderNotAPermutation);
        }
        let mut seen = 0u64;
        for (pos, &v) in order.iter().enumerate() {
            if v >= self.vertices.len() || seen & (1 << v) != 0 {
                return Err(QueryError::OrderNotAPermutation);
            }
            if pos > 0 && self.frontier(seen) & (1 << v) == 0 {
                return Err(QueryError::IllegalOrder {
                    position: pos,
                    table: self.vertices[v],
                });
            }
            seen |= 1 << v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> JoinGraph {
        let vertices = (0..n as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    fn star(n: usize) -> JoinGraph {
        let vertices = (0..n as u32).map(TableId).collect();
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        JoinGraph::from_edges(vertices, &edges).unwrap()
    }

    #[test]
    fn connectivity() {
        assert!(chain(5).is_connected());
        assert!(star(6).is_connected());
        let disconnected =
            JoinGraph::from_edges(vec![TableId(0), TableId(1), TableId(2)], &[(0, 1)]).unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn frontier_on_chain() {
        let g = chain(4);
        assert_eq!(g.frontier(0), 0b1111);
        assert_eq!(g.frontier(0b0001), 0b0010);
        assert_eq!(g.frontier(0b0011), 0b0100);
        assert_eq!(g.frontier(0b0110), 0b1001);
    }

    #[test]
    fn frontier_on_star() {
        let g = star(4);
        // Joined only a leaf: next must be the hub.
        assert_eq!(g.frontier(0b0010), 0b0001);
        // Joined the hub: all leaves legal.
        assert_eq!(g.frontier(0b0001), 0b1110);
    }

    #[test]
    fn subset_connectivity() {
        let g = chain(5);
        assert!(g.subset_connected(0b00111));
        assert!(!g.subset_connected(0b00101));
        assert!(g.subset_connected(0b00001));
        assert!(!g.subset_connected(0));
    }

    #[test]
    fn legality_check() {
        let g = chain(4);
        assert!(g.check_left_deep(&[0, 1, 2, 3]).is_ok());
        assert!(g.check_left_deep(&[1, 2, 0, 3]).is_ok());
        assert!(matches!(
            g.check_left_deep(&[0, 2, 1, 3]),
            Err(QueryError::IllegalOrder { position: 1, .. })
        ));
        assert!(matches!(
            g.check_left_deep(&[0, 1, 2]),
            Err(QueryError::OrderNotAPermutation)
        ));
        assert!(matches!(
            g.check_left_deep(&[0, 0, 1, 2]),
            Err(QueryError::OrderNotAPermutation)
        ));
    }

    #[test]
    fn vertex_mapping() {
        let g = JoinGraph::from_edges(vec![TableId(3), TableId(7)], &[(0, 1)]).unwrap();
        assert_eq!(g.vertex_of(TableId(7)), Some(1));
        assert_eq!(g.vertex_of(TableId(4)), None);
        assert_eq!(g.table(0), TableId(3));
        assert!(g.joinable(0, 1));
    }
}

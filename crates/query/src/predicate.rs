//! Filter and join predicates.

use crate::error::QueryError;
use crate::Result;
use mtmlf_storage::{ColumnId, TableId, Value};
use std::fmt;

/// A fully-qualified column reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Column within the table.
    pub column: ColumnId,
}

impl ColumnRef {
    /// Creates a column reference.
    pub fn new(table: TableId, column: ColumnId) -> Self {
        Self { table, column }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Comparison operators for scalar filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Applies the operator to an ordering between lhs and rhs.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Neq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// All operators, for generators and exhaustive tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

/// A supported `LIKE` pattern shape. The JOB benchmark's complex `LIKE`
/// predicates are dominated by substring (`%x%`), prefix (`x%`), and suffix
/// (`%x`) matches, which is what the paper's workload exercises.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LikePattern {
    /// `%needle%`
    Contains(String),
    /// `needle%`
    Prefix(String),
    /// `%needle`
    Suffix(String),
}

impl LikePattern {
    /// Parses a SQL LIKE pattern with `%` wildcards at the ends only.
    pub fn parse(pattern: &str) -> Result<Self> {
        let starts = pattern.starts_with('%');
        let ends = pattern.ends_with('%') && pattern.len() >= 2;
        let inner = match (starts, ends) {
            (true, true) => &pattern[1..pattern.len() - 1],
            (true, false) => &pattern[1..],
            (false, true) => &pattern[..pattern.len() - 1],
            (false, false) => pattern,
        };
        if inner.is_empty() || inner.contains('%') || inner.contains('_') {
            return Err(QueryError::UnsupportedLikePattern(pattern.to_string()));
        }
        Ok(match (starts, ends) {
            (true, true) => LikePattern::Contains(inner.to_string()),
            (false, true) => LikePattern::Prefix(inner.to_string()),
            (true, false) => LikePattern::Suffix(inner.to_string()),
            // Treat a bare pattern as an exact-substring match, which is how
            // the workload generator uses it.
            (false, false) => LikePattern::Contains(inner.to_string()),
        })
    }

    /// Tests a string against the pattern.
    pub fn matches(&self, s: &str) -> bool {
        match self {
            LikePattern::Contains(needle) => s.contains(needle.as_str()),
            LikePattern::Prefix(needle) => s.starts_with(needle.as_str()),
            LikePattern::Suffix(needle) => s.ends_with(needle.as_str()),
        }
    }

    /// The literal part of the pattern.
    pub fn needle(&self) -> &str {
        match self {
            LikePattern::Contains(s) | LikePattern::Prefix(s) | LikePattern::Suffix(s) => s,
        }
    }

    /// SQL spelling of the full pattern.
    pub fn sql(&self) -> String {
        match self {
            LikePattern::Contains(s) => format!("%{s}%"),
            LikePattern::Prefix(s) => format!("{s}%"),
            LikePattern::Suffix(s) => format!("%{s}"),
        }
    }
}

/// A single-table filter predicate. Per-table filters compose conjunctively.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterPredicate {
    /// `col <op> literal`
    Cmp {
        /// Filtered column (within the predicate's table).
        column: ColumnId,
        /// Comparison operator.
        op: CmpOp,
        /// Literal operand.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Filtered column.
        column: ColumnId,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
    /// `col LIKE pattern`.
    Like {
        /// Filtered string column.
        column: ColumnId,
        /// Pattern.
        pattern: LikePattern,
    },
    /// `col IN (v1, v2, ...)`.
    InSet {
        /// Filtered column.
        column: ColumnId,
        /// Allowed values.
        values: Vec<Value>,
    },
}

impl FilterPredicate {
    /// The column the predicate constrains.
    pub fn column(&self) -> ColumnId {
        match self {
            FilterPredicate::Cmp { column, .. }
            | FilterPredicate::Between { column, .. }
            | FilterPredicate::Like { column, .. }
            | FilterPredicate::InSet { column, .. } => *column,
        }
    }
}

impl fmt::Display for FilterPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterPredicate::Cmp { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            FilterPredicate::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            FilterPredicate::Like { column, pattern } => {
                write!(f, "{column} LIKE '{}'", pattern.sql())
            }
            FilterPredicate::InSet { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An equi-join predicate `left = right` between two tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinPredicate {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

impl JoinPredicate {
    /// Creates a join predicate; the two sides must be on different tables
    /// (self-joins are not modeled — constructing one is a programming
    /// error, and a silently-invalid predicate would surface as a baffling
    /// `NoJoinPredicate` at execution time).
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        assert_ne!(left.table, right.table, "self-joins are not modeled");
        Self { left, right }
    }

    /// True if the predicate connects tables `a` and `b` (either direction).
    pub fn connects(&self, a: TableId, b: TableId) -> bool {
        (self.left.table == a && self.right.table == b)
            || (self.left.table == b && self.right.table == a)
    }

    /// True if the predicate touches table `t` on either side.
    pub fn touches(&self, t: TableId) -> bool {
        self.left.table == t || self.right.table == t
    }

    /// The side of the predicate on table `t`, if any.
    pub fn side_on(&self, t: TableId) -> Option<ColumnRef> {
        if self.left.table == t {
            Some(self.left)
        } else if self.right.table == t {
            Some(self.right)
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Le.eval(Less));
        assert!(!CmpOp::Le.eval(Greater));
        assert!(CmpOp::Neq.eval(Greater));
    }

    #[test]
    fn like_parse_shapes() {
        assert_eq!(
            LikePattern::parse("%abc%").unwrap(),
            LikePattern::Contains("abc".into())
        );
        assert_eq!(
            LikePattern::parse("abc%").unwrap(),
            LikePattern::Prefix("abc".into())
        );
        assert_eq!(
            LikePattern::parse("%abc").unwrap(),
            LikePattern::Suffix("abc".into())
        );
        assert!(LikePattern::parse("%a%b%").is_err());
        assert!(LikePattern::parse("a_c").is_err());
        assert!(LikePattern::parse("%%").is_err());
    }

    #[test]
    fn like_matching() {
        assert!(LikePattern::Contains("mid".into()).matches("a mid b"));
        assert!(!LikePattern::Contains("mid".into()).matches("a mXd b"));
        assert!(LikePattern::Prefix("ab".into()).matches("abc"));
        assert!(!LikePattern::Prefix("ab".into()).matches("xab"));
        assert!(LikePattern::Suffix("yz".into()).matches("xyz"));
        assert!(!LikePattern::Suffix("yz".into()).matches("yzx"));
    }

    #[test]
    fn like_sql_roundtrip() {
        for p in ["%a%", "a%", "%a"] {
            let parsed = LikePattern::parse(p).unwrap();
            assert_eq!(parsed.sql(), p);
        }
    }

    #[test]
    fn join_predicate_connectivity() {
        let j = JoinPredicate::new(
            ColumnRef::new(TableId(0), ColumnId(1)),
            ColumnRef::new(TableId(2), ColumnId(0)),
        );
        assert!(j.connects(TableId(0), TableId(2)));
        assert!(j.connects(TableId(2), TableId(0)));
        assert!(!j.connects(TableId(0), TableId(1)));
        assert!(j.touches(TableId(2)));
        assert_eq!(
            j.side_on(TableId(2)),
            Some(ColumnRef::new(TableId(2), ColumnId(0)))
        );
        assert_eq!(j.side_on(TableId(9)), None);
    }

    #[test]
    fn filter_display() {
        let p = FilterPredicate::Cmp {
            column: ColumnId(3),
            op: CmpOp::Ge,
            value: Value::Int(10),
        };
        assert_eq!(p.to_string(), "c3 >= 10");
        let l = FilterPredicate::Like {
            column: ColumnId(0),
            pattern: LikePattern::Contains("x".into()),
        };
        assert_eq!(l.to_string(), "c0 LIKE '%x%'");
    }
}

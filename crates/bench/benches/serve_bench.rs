//! Criterion micro-benchmarks for the serving layer: the sequential
//! per-query baseline vs batched planning vs a warm-cache hit.
//!
//! ```text
//! cargo bench -p mtmlf-bench --bench serve_bench
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mtmlf::plan_batch;
use mtmlf::serve::{PlannerService, ServiceConfig};
use mtmlf_bench::serve::{build, drive_clients};
use mtmlf_nn::no_grad;
use std::sync::Arc;

fn bench_serve(c: &mut Criterion) {
    let exp = build(0.02, 8, 1).expect("serve experiment builds");

    c.bench_function("serve/sequential_direct", |b| {
        b.iter(|| {
            for q in &exp.queries {
                exp.model.plan_with_estimates(q).expect("plan");
            }
        })
    });

    c.bench_function("serve/plan_batch", |b| {
        b.iter(|| {
            let outcomes = no_grad(|| plan_batch(&exp.model, &exp.queries));
            outcomes.into_iter().map(|r| r.expect("plan")).count()
        })
    });

    let pooled = PlannerService::start(
        Arc::clone(&exp.model),
        ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    )
    .expect("service starts");
    c.bench_function("serve/pooled_batched", |b| {
        b.iter(|| drive_clients(&pooled, &exp.queries, 1, 4).expect("drive").1)
    });

    let cached = PlannerService::start(Arc::clone(&exp.model), ServiceConfig::default())
        .expect("service starts");
    for q in &exp.queries {
        cached.plan(q.clone()).expect("warm-up plan");
    }
    let warm = exp.queries[0].clone();
    c.bench_function("serve/warm_cache_hit", |b| {
        b.iter(|| cached.plan(warm.clone()).expect("cached plan").est_cost)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);

//! Criterion micro-benchmarks for the serving layer: the sequential
//! per-query baseline vs batched planning vs a warm-cache hit.
//!
//! ```text
//! cargo bench -p mtmlf-bench --bench serve_bench
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use mtmlf::plan_batch;
use mtmlf::serve::{PlannerService, ServiceConfig};
use mtmlf::trace::TraceConfig;
use mtmlf_bench::serve::{build, drive_clients};
use mtmlf_nn::no_grad;
use std::sync::Arc;

fn bench_serve(c: &mut Criterion) {
    let exp = build(0.02, 8, 1).expect("serve experiment builds");

    c.bench_function("serve/sequential_direct", |b| {
        b.iter(|| {
            for q in &exp.queries {
                exp.model.plan_with_estimates(q).expect("plan");
            }
        })
    });

    c.bench_function("serve/plan_batch", |b| {
        b.iter(|| {
            let outcomes = no_grad(|| plan_batch(&exp.model, &exp.queries));
            outcomes.into_iter().map(|r| r.expect("plan")).count()
        })
    });

    let pooled = PlannerService::builder(Arc::clone(&exp.model))
        .config(ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()
        .expect("service starts");
    c.bench_function("serve/pooled_batched", |b| {
        b.iter(|| drive_clients(&pooled, &exp.queries, 1, 4).expect("drive").1)
    });

    let cached = PlannerService::builder(Arc::clone(&exp.model))
        .start()
        .expect("service starts");
    for q in &exp.queries {
        cached.plan(q.clone()).expect("warm-up plan");
    }
    let warm = exp.queries[0].clone();
    c.bench_function("serve/warm_cache_hit", |b| {
        b.iter(|| cached.plan(warm.clone()).expect("cached plan").est_cost)
    });

    // Tracing on the warm-cache path — the overhead the /metrics pipeline
    // adds to the cheapest request.
    let traced = PlannerService::builder(Arc::clone(&exp.model))
        .tracing(TraceConfig::default())
        .start()
        .expect("service starts");
    for q in &exp.queries {
        traced.plan(q.clone()).expect("warm-up plan");
    }
    c.bench_function("serve/warm_cache_hit_traced", |b| {
        b.iter(|| traced.plan(warm.clone()).expect("cached plan").est_cost)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(benches);

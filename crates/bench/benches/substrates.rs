//! Criterion micro-benchmarks for every substrate the reproduction builds:
//! executor joins, true-cardinality oracles, classical DP planning,
//! transformer training steps, beam-search decoding, and the tree codec.

use criterion::{criterion_group, criterion_main, Criterion};
use mtmlf::{FeaturizationModule, MtmlfConfig};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_exec::Executor;
use mtmlf_nn::layers::Module;
use mtmlf_nn::{Adam, Matrix, TransformerEncoder, Var};
use mtmlf_optd::{exact_optimal_order, PgOptimizer};
use mtmlf_query::treecodec::{decode, encode};
use mtmlf_query::{JoinTree, PlanNode, Query};
use mtmlf_storage::{Database, TableId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup_db() -> (Database, Vec<Query>) {
    let mut db = imdb_lite(1, ImdbScale { scale: 0.05 }).unwrap();
    db.analyze_all(16, 8);
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: 10,
            min_tables: 4,
            max_tables: 5,
            ..WorkloadConfig::default()
        },
        7,
    );
    (db, queries)
}

fn bench_executor(c: &mut Criterion) {
    let (db, queries) = setup_db();
    let exec = Executor::new(&db);
    let q = &queries[0];
    let order = mtmlf_exec::executor::greedy_legal_order(q).unwrap();
    let plan = PlanNode::left_deep(&order).unwrap();
    c.bench_function("executor/multiway_hash_join", |b| {
        b.iter(|| exec.execute_plan(q, &plan).unwrap().output_cardinality)
    });
    c.bench_function("executor/subset_cardinalities", |b| {
        b.iter(|| exec.subset_cardinalities(q).unwrap().len())
    });
}

fn bench_planners(c: &mut Criterion) {
    let (db, queries) = setup_db();
    let q = &queries[0];
    let pg = PgOptimizer::new(&db);
    c.bench_function("optd/pg_left_deep_dp", |b| {
        b.iter(|| pg.plan(q).unwrap().estimated_cost)
    });
    c.bench_function("optd/exact_optimal_order", |b| {
        b.iter(|| exact_optimal_order(&db, q).unwrap().estimated_cost)
    });
}

fn bench_transformer(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let enc = TransformerEncoder::new(32, 4, 3, &mut rng);
    let x = Matrix::xavier(11, 32, &mut rng);
    c.bench_function("nn/transformer_forward_11x32", |b| {
        b.iter(|| enc.forward(&Var::constant(x.clone())).to_matrix().sum())
    });
    let mut opt = Adam::new(enc.parameters(), 1e-3);
    c.bench_function("nn/transformer_train_step_11x32", |b| {
        b.iter(|| {
            let loss = enc.forward(&Var::constant(x.clone())).mean();
            opt.zero_grad();
            loss.backward();
            opt.step();
            loss.item()
        })
    });
}

fn bench_beam_and_codec(c: &mut Criterion) {
    let (db, queries) = setup_db();
    let config = MtmlfConfig::tiny();
    let featurizer = FeaturizationModule::untrained(&db, &config).unwrap();
    let shared = mtmlf::shared::SharedModule::new(&config);
    let jo = mtmlf::transjo::TransJo::new(&config);
    let q = &queries[0];
    let order = mtmlf_exec::executor::greedy_legal_order(q).unwrap();
    let plan = PlanNode::left_deep(&order).unwrap();
    let serialized = mtmlf::serialize::serialize_plan(&featurizer, q, &plan, &config).unwrap();
    let s = shared.forward(&serialized.features);
    let reps = mtmlf::train::table_representations(&s, &serialized.scan_node_of_slot);
    c.bench_function("mtmlf/beam_search_k4", |b| {
        b.iter(|| {
            mtmlf::beam::beam_search(&jo, &s, &reps, &serialized.graph, &mtmlf::BeamConfig::new(4))
                .len()
        })
    });

    let tree = JoinTree::left_deep(&(0..7).map(TableId).collect::<Vec<_>>()).unwrap();
    c.bench_function("query/treecodec_roundtrip_7", |b| {
        b.iter(|| {
            let e = encode(&tree, 64).unwrap();
            decode(&e).unwrap().leaf_count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_executor, bench_planners, bench_transformer, bench_beam_and_codec
}
criterion_main!(benches);

//! Shared single-DB experiment setup (Tables 1 and 2, Section 6.1).
//!
//! Builds the IMDB-shaped database, generates the JOB-like training
//! workload and a held-out test workload (the stand-in for the 113 JOB
//! queries), labels both with true per-node cardinalities/costs and
//! exact-optimal join orders, and trains the MTMLF variants.

use mtmlf::{FeaturizationModule, LossWeights, MtmlfConfig, MtmlfQo};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, LabeledQuery,
    WorkloadConfig,
};
use mtmlf_storage::Database;

/// Experiment sizing.
#[derive(Debug, Clone)]
pub struct SingleDbSetup {
    /// IMDB scale factor.
    pub scale: f64,
    /// Training queries (paper: 150K scaled down).
    pub train_queries: usize,
    /// Held-out test queries (paper: the JOB queries / a 5% JoinSel split).
    pub test_queries: usize,
    /// Minimum tables per query (JOB queries join several tables).
    pub min_tables: usize,
    /// Maximum tables per query (paper caps optimal labelling at 8).
    pub max_tables: usize,
    /// Joint-training epochs for the MTMLF variants.
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for SingleDbSetup {
    fn default() -> Self {
        Self {
            scale: 0.08,
            train_queries: 300,
            test_queries: 80,
            min_tables: 3,
            max_tables: 6,
            epochs: 12,
            seed: 1,
        }
    }
}

/// The prepared single-DB experiment.
pub struct SingleDbExperiment {
    /// The analyzed database.
    pub db: Database,
    /// Labelled training workload.
    pub train: Vec<LabeledQuery>,
    /// Labelled held-out test workload.
    pub test: Vec<LabeledQuery>,
    /// The setup used.
    pub setup: SingleDbSetup,
}

impl SingleDbExperiment {
    /// Builds the database, both workloads, and all labels.
    pub fn build(setup: SingleDbSetup) -> mtmlf::Result<Self> {
        let mut db = imdb_lite(setup.seed, ImdbScale { scale: setup.scale }).expect("imdb_lite schema is static");
        db.analyze_all(24, 12);
        let wl = |count: usize, seed: u64| {
            WorkloadConfig {
                count,
                min_tables: setup.min_tables,
                max_tables: setup.max_tables,
                ..WorkloadConfig::default()
            }
            .pipe(|cfg| generate_queries(&db, &cfg, seed))
        };
        let train_q = wl(setup.train_queries, setup.seed ^ 0x71A1);
        let test_q = wl(setup.test_queries, setup.seed ^ 0x7E57);
        let label_cfg = LabelConfig::default();
        let train = label_workload(&db, &train_q, &label_cfg)?;
        let test = label_workload(&db, &test_q, &label_cfg)?;
        Ok(Self {
            db,
            train,
            test,
            setup,
        })
    }

    /// The model configuration used by the single-DB experiments.
    pub fn model_config(&self, weights: LossWeights) -> MtmlfConfig {
        MtmlfConfig {
            weights,
            max_query_tables: self.setup.max_tables.max(8),
            epochs: self.setup.epochs,
            seed: self.setup.seed,
            ..MtmlfConfig::default()
        }
    }

    /// Fits the featurization module once (shared by all model variants —
    /// its encoders are frozen after fitting).
    pub fn fit_featurizer(&self) -> mtmlf::Result<FeaturizationModule> {
        FeaturizationModule::fit(&self.db, &self.model_config(LossWeights::default()))
    }

    /// Trains one MTMLF variant on the training workload, reusing a fitted
    /// featurizer.
    pub fn train_variant(
        &self,
        featurizer: &FeaturizationModule,
        weights: LossWeights,
    ) -> mtmlf::Result<MtmlfQo> {
        let config = self.model_config(weights);
        let mut model = MtmlfQo::from_modules(
            featurizer.clone(),
            mtmlf::shared::SharedModule::new(&config),
            mtmlf::tasks::TaskHeads::new(&config),
            mtmlf::transjo::TransJo::new(&config),
            config,
        );
        model.train(&self.train)?;
        Ok(model)
    }
}

/// Tiny pipe helper to keep the workload construction readable.
trait Pipe: Sized {
    fn pipe<T>(self, f: impl FnOnce(Self) -> T) -> T {
        f(self)
    }
}
impl<T: Sized> Pipe for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_tiny_experiment() {
        let exp = SingleDbExperiment::build(SingleDbSetup {
            scale: 0.02,
            train_queries: 6,
            test_queries: 3,
            min_tables: 2,
            max_tables: 4,
            epochs: 2,
            seed: 2,
        })
        .expect("tiny experiment builds");
        assert_eq!(exp.train.len(), 6);
        assert_eq!(exp.test.len(), 3);
        for l in exp.train.iter().chain(&exp.test) {
            assert!(l.optimal_order.is_some());
        }
    }
}

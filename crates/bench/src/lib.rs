//! # mtmlf-bench
//!
//! The reproduction harness for the paper's evaluation (Section 6):
//!
//! - [`table1`] — Q-errors of CardEst/CostEst on the JOB-like workload
//!   (PostgreSQL, Tree-LSTM, MTMLF-QO, and the single-task ablations);
//! - [`table2`] — total simulated execution time of the join orders chosen
//!   by PostgreSQL, the exact optimum, MTMLF-QO, and MTMLF-JoinSel;
//! - [`table3`] — cross-DB transferability: MLA-pre-trained MTMLF-QO on an
//!   unseen generated database vs from-scratch training vs PostgreSQL.
//!
//! Each table has a binary regenerator (`cargo run -p mtmlf-bench --release
//! --bin table1|table2|table3`) plus ablation binaries (`ablation_beam`,
//! `ablation_seqloss`) and criterion micro-benchmarks for the substrates
//! (`cargo bench -p mtmlf-bench`).
//!
//! All experiments are deterministic in their `--seed` and scale down the
//! paper's data sizes (see DESIGN.md §1); the *relative* results — who
//! wins, by roughly what factor — are the reproduction target recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod args;
pub mod http;
pub mod report;
pub mod serve;
pub mod single_db;
pub mod table1;
pub mod table2;
pub mod table3;

pub use args::Args;

//! Table 1 — Q-errors on the JOB-like workload.
//!
//! Paper rows: PostgreSQL, Tree-LSTM, MTMLF-QO, MTMLF-CardEst,
//! MTMLF-CostEst. Every method predicts the cardinality and cost of the
//! sub-plan rooted at each node of the test queries' initial plans; the
//! table reports median/max/mean q-error over the *multi-table (join)*
//! sub-plans. Single-table scans are excluded identically for all methods:
//! they are the per-table encoders' own training task and every method
//! estimates them well, so they would only dilute the comparison.

use crate::single_db::SingleDbExperiment;
use mtmlf::LossWeights;
use mtmlf_optd::{PgEstimator, PlanCoster, QErrorSummary};
use mtmlf_treelstm::{TreeLstm, TreeLstmConfig};

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Method name.
    pub method: String,
    /// Cardinality q-error summary (absent for cost-only methods).
    pub card: Option<QErrorSummary>,
    /// Cost q-error summary (absent for card-only methods).
    pub cost: Option<QErrorSummary>,
}

/// The full Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Rows in paper order.
    pub rows: Vec<Table1Row>,
}

/// Runs the Table 1 experiment.
pub fn run(exp: &SingleDbExperiment) -> mtmlf::Result<Table1Result> {
    let mut rows = Vec::new();

    // --- PostgreSQL baseline: statistics estimator + shared cost model.
    let (pg_card, pg_cost) = pg_errors(exp)?;
    rows.push(Table1Row {
        method: "PostgreSQL".into(),
        card: QErrorSummary::from_errors(&pg_card),
        cost: QErrorSummary::from_errors(&pg_cost),
    });

    // --- Tree-LSTM baseline.
    let (tl_card, tl_cost) = treelstm_errors(exp);
    rows.push(Table1Row {
        method: "Tree-LSTM".into(),
        card: QErrorSummary::from_errors(&tl_card),
        cost: QErrorSummary::from_errors(&tl_cost),
    });

    // --- MTMLF variants (shared featurizer).
    let featurizer = exp.fit_featurizer()?;
    let joint = exp.train_variant(&featurizer, LossWeights::default())?;
    let (card, cost) = mtmlf_errors(exp, &joint)?;
    rows.push(Table1Row {
        method: "MTMLF-QO".into(),
        card: QErrorSummary::from_errors(&card),
        cost: QErrorSummary::from_errors(&cost),
    });

    let card_only = exp.train_variant(&featurizer, LossWeights::card_only())?;
    let (card, _) = mtmlf_errors(exp, &card_only)?;
    rows.push(Table1Row {
        method: "MTMLF-CardEst".into(),
        card: QErrorSummary::from_errors(&card),
        cost: None,
    });

    let cost_only = exp.train_variant(&featurizer, LossWeights::cost_only())?;
    let (_, cost) = mtmlf_errors(exp, &cost_only)?;
    rows.push(Table1Row {
        method: "MTMLF-CostEst".into(),
        card: None,
        cost: QErrorSummary::from_errors(&cost),
    });

    Ok(Table1Result { rows })
}

/// Per-node q-errors of the PostgreSQL-style estimator on the test set.
pub fn pg_errors(exp: &SingleDbExperiment) -> mtmlf::Result<(Vec<f64>, Vec<f64>)> {
    let estimator = PgEstimator::new(&exp.db);
    let coster = PlanCoster::new(&estimator, &exp.db);
    let mut card_errors = Vec::new();
    let mut cost_errors = Vec::new();
    for l in &exp.test {
        let graph = l.query.join_graph()?;
        let per_node = coster.per_node(&l.query, &graph, &l.plan)?;
        for (i, node) in l.plan.post_order().iter().enumerate() {
            if node.leaf_count() < 2 {
                continue; // Table 1 scores multi-table (join) sub-plans
            }
            let (card_est, cost_est) = per_node[i];
            card_errors.push(mtmlf_optd::q_error(card_est, l.node_cards[i] as f64));
            cost_errors.push(mtmlf_optd::q_error(cost_est, l.node_costs[i]));
        }
    }
    Ok((card_errors, cost_errors))
}

/// Per-node q-errors of a trained Tree-LSTM on the test set.
pub fn treelstm_errors(exp: &SingleDbExperiment) -> (Vec<f64>, Vec<f64>) {
    let mut model = TreeLstm::new(
        exp.db.table_count(),
        TreeLstmConfig {
            seed: exp.setup.seed,
            ..TreeLstmConfig::default()
        },
    );
    model.train(&exp.db, &exp.train);
    let mut card_errors = Vec::new();
    let mut cost_errors = Vec::new();
    for l in &exp.test {
        let preds = model.predict(&exp.db, &l.query, &l.plan);
        for (i, node) in l.plan.post_order().iter().enumerate() {
            if node.leaf_count() < 2 {
                continue;
            }
            let (card_est, cost_est) = preds[i];
            card_errors.push(mtmlf_optd::q_error(card_est, l.node_cards[i] as f64));
            cost_errors.push(mtmlf_optd::q_error(cost_est, l.node_costs[i]));
        }
    }
    (card_errors, cost_errors)
}

/// Per-node q-errors of a trained MTMLF variant on the test set.
pub fn mtmlf_errors(
    exp: &SingleDbExperiment,
    model: &mtmlf::MtmlfQo,
) -> mtmlf::Result<(Vec<f64>, Vec<f64>)> {
    let mut card_errors = Vec::new();
    let mut cost_errors = Vec::new();
    for l in &exp.test {
        let preds = model.predict_nodes(&l.query, &l.plan)?;
        for (i, node) in l.plan.post_order().iter().enumerate() {
            if node.leaf_count() < 2 {
                continue;
            }
            let (card_est, cost_est) = preds[i];
            card_errors.push(mtmlf_optd::q_error(card_est, l.node_cards[i] as f64));
            cost_errors.push(mtmlf_optd::q_error(cost_est, l.node_costs[i]));
        }
    }
    Ok((card_errors, cost_errors))
}

/// Renders the result in the paper's layout.
pub fn render(result: &Table1Result) -> String {
    let headers = [
        "Method",
        "Card median",
        "Card max",
        "Card mean",
        "Cost median",
        "Cost max",
        "Cost mean",
    ];
    let fmt_summary = |s: &Option<QErrorSummary>| -> [String; 3] {
        match s {
            Some(s) => [
                crate::report::fmt(s.median),
                crate::report::fmt(s.max),
                crate::report::fmt(s.mean),
            ],
            None => ["\\".into(), "\\".into(), "\\".into()],
        }
    };
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            let c = fmt_summary(&r.card);
            let k = fmt_summary(&r.cost);
            vec![
                r.method.clone(),
                c[0].clone(),
                c[1].clone(),
                c[2].clone(),
                k[0].clone(),
                k[1].clone(),
                k[2].clone(),
            ]
        })
        .collect();
    crate::report::render_table(&headers, &rows)
}

//! Table 2 — total execution time of different join orders (single DB).
//!
//! Paper rows: PostgreSQL, Optimal, MTMLF-QO, MTMLF-JoinSel (single-task),
//! with total time over the test queries and the improvement ratio over
//! PostgreSQL. Every order executes under identical default physical
//! operators so only *order quality* is measured (the paper's isolation).

use crate::single_db::SingleDbExperiment;
use mtmlf::{LossWeights, MtmlfQo};
use mtmlf_exec::Executor;
use mtmlf_optd::PgOptimizer;
use mtmlf_query::JoinOrder;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Planner name.
    pub planner: String,
    /// Total simulated execution time over the test workload (sim-minutes).
    pub total_minutes: f64,
    /// Improvement over the PostgreSQL row (absent for PostgreSQL itself).
    pub improvement: Option<f64>,
    /// Fraction of test queries whose order matches the optimal order.
    pub optimal_match: f64,
}

/// The full Table 2 result.
#[derive(Debug, Clone)]
pub struct Table2Result {
    /// Rows in paper order.
    pub rows: Vec<Table2Row>,
}

/// Per-query detail (for diagnosis with `--verbose`).
#[derive(Debug, Clone)]
pub struct QueryDetail {
    /// The query, printed SQL-ish.
    pub query: String,
    /// sim-minutes for [pg, optimal, mtmlf, joinsel].
    pub minutes: [f64; 4],
}

/// Runs the Table 2 experiment with externally trained models (so Table 1
/// and Table 2 can share the expensive training).
pub fn run_with_models(
    exp: &SingleDbExperiment,
    joint: &MtmlfQo,
    jo_only: &MtmlfQo,
) -> mtmlf::Result<(Table2Result, Vec<QueryDetail>)> {
    let exec = Executor::new(&exp.db);
    let pg = PgOptimizer::new(&exp.db);

    let mut totals = [0.0f64; 4]; // pg, optimal, mtmlf, mtmlf-joinsel
    let mut matches = [0usize; 4];
    let mut counted = 0usize;
    let mut details: Vec<QueryDetail> = Vec::new();

    for l in &exp.test {
        let Some(optimal) = &l.optimal_order else {
            continue;
        };
        counted += 1;
        let pg_order = JoinOrder::LeftDeep(pg.plan(&l.query)?.plan.tables());
        // MTMLF-QO uses multi-task consistent inference: the jointly
        // trained cost head re-ranks the beam's candidates.
        let mtmlf_order = joint.predict_join_order_costed(&l.query, &l.plan)?;
        let joinsel_order = jo_only.predict_join_order(&l.query, &l.plan)?;
        let orders = [&pg_order, optimal, &mtmlf_order, &joinsel_order];
        let mut minutes = [0.0f64; 4];
        for (i, order) in orders.iter().enumerate() {
            let outcome = exec.execute_order(&l.query, order)?;
            minutes[i] = outcome.sim_minutes;
            totals[i] += outcome.sim_minutes;
            if order.tables() == optimal.tables() {
                matches[i] += 1;
            }
        }
        details.push(QueryDetail {
            query: l.query.to_string(),
            minutes,
        });
    }

    let names = ["PostgreSQL", "Optimal", "MTMLF-QO", "MTMLF-JoinSel"];
    let rows = names
        .iter()
        .enumerate()
        .map(|(i, name)| Table2Row {
            planner: name.to_string(),
            total_minutes: totals[i],
            improvement: (i > 0).then(|| (totals[0] - totals[i]) / totals[0]),
            optimal_match: matches[i] as f64 / counted.max(1) as f64,
        })
        .collect();
    Ok((Table2Result { rows }, details))
}

/// Trains the models and runs the experiment (standalone entry point).
pub fn run(exp: &SingleDbExperiment) -> mtmlf::Result<(Table2Result, Vec<QueryDetail>)> {
    let featurizer = exp.fit_featurizer()?;
    let joint = exp.train_variant(&featurizer, LossWeights::default())?;
    let jo_only = exp.train_variant(&featurizer, LossWeights::jo_only())?;
    run_with_models(exp, &joint, &jo_only)
}

/// Renders the result in the paper's layout.
pub fn render(result: &Table2Result) -> String {
    let headers = [
        "JoinOrder",
        "Total Time",
        "Overall Improvement Ratio",
        "Optimal-order match",
    ];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.planner.clone(),
                format!("{:.1} min", r.total_minutes),
                match r.improvement {
                    Some(i) => format!("{:.1}%", i * 100.0),
                    None => "\\".into(),
                },
                format!("{:.0}%", r.optimal_match * 100.0),
            ]
        })
        .collect();
    crate::report::render_table(&headers, &rows)
}

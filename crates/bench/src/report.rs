//! Plain-text table rendering for the regenerator binaries.

/// Renders an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Formats a float with two decimals, using thousands grouping for large
/// magnitudes (matches the paper's table style, e.g. `670,000`).
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    if v.abs() >= 10_000.0 {
        let n = v.round() as i64;
        group_thousands(n)
    } else {
        format!("{v:.2}")
    }
}

fn group_thousands(n: i64) -> String {
    let digits = n.abs().to_string();
    let mut out = String::new();
    let bytes = digits.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(*b as char);
    }
    if n < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["Method", "median"],
            &[
                vec!["PostgreSQL".into(), "184.00".into()],
                vec!["MTMLF-QO".into(), "4.48".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[2].contains("PostgreSQL"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt(4.479), "4.48");
        assert_eq!(fmt(670_000.0), "670,000");
        assert_eq!(fmt(10_416.4), "10,416");
        assert_eq!(fmt(-12_345.0), "-12,345");
    }
}

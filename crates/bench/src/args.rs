//! Minimal command-line flag parsing for the regenerator binaries
//! (`--key value` pairs and bare `--flag`s; no external dependency).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    values.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                    continue;
                }
                flags.push(key.to_string());
            }
            i += 1;
        }
        Self { values, flags }
    }

    /// A floating-point flag with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An integer flag with a default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A `u64` flag with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::from_args(["--scale", "0.25", "--queries", "100", "--bushy"]);
        assert_eq!(a.f64("scale", 1.0), 0.25);
        assert_eq!(a.usize("queries", 5), 100);
        assert!(a.flag("bushy"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::from_args(Vec::<String>::new());
        assert_eq!(a.f64("scale", 0.5), 0.5);
        assert_eq!(a.u64("seed", 7), 7);
    }

    #[test]
    fn malformed_values_fall_back() {
        let a = Args::from_args(["--queries", "not-a-number"]);
        assert_eq!(a.usize("queries", 42), 42);
    }
}

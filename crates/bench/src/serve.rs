//! Shared setup and client driver for the serving benchmarks
//! (`serve_bench` and the `table_serve` binary).
//!
//! The model is deliberately *untrained* (fresh modules, untrained
//! featurizer): serving throughput and latency depend on tensor shapes,
//! not on learned weights, and skipping encoder pre-training keeps the
//! benchmark setup to a few seconds.

use mtmlf::client::{PlanClient, PlanPayload, PlanRequest, PlanResponse, PlanSource};
use mtmlf::cluster::{ClusterConfig, ClusterService, DirectTransport, ReplicaNode};
use mtmlf::serve::PlannerService;
use mtmlf::{FeaturizationModule, MtmlfConfig, MtmlfError, MtmlfQo};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_query::{fingerprint, JoinOrder, Query, QueryFingerprint};
use mtmlf_storage::{Database, TableId};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A model plus a query workload for serving experiments.
pub struct ServeExperiment {
    /// The model, ready to share across a service's workers.
    pub model: Arc<MtmlfQo>,
    /// The database the model was built over — kept so serving experiments
    /// can attach a classical `FallbackPlanner` to the same data.
    pub db: Arc<Database>,
    /// The query workload.
    pub queries: Vec<Query>,
}

/// Builds the serving workload: an IMDB-shaped database at `scale`, a
/// join workload of `query_count` queries, and an untrained model over it.
pub fn build(scale: f64, query_count: usize, seed: u64) -> mtmlf::Result<ServeExperiment> {
    build_with(scale, query_count, seed, 8)
}

/// [`build`] with an explicit `max_query_tables` for the model. Passing a
/// bound *below* the workload's table counts yields a model that rejects
/// every query — the degraded-serving benchmark, where the classical
/// fallback carries the whole load.
pub fn build_with(
    scale: f64,
    query_count: usize,
    seed: u64,
    max_query_tables: usize,
) -> mtmlf::Result<ServeExperiment> {
    let mut db = imdb_lite(seed, ImdbScale { scale }).expect("imdb_lite schema is static");
    db.analyze_all(8, 4);
    let config = MtmlfConfig {
        max_query_tables,
        seed,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: query_count,
            min_tables: 3,
            max_tables: 5,
            ..WorkloadConfig::default()
        },
        seed ^ 0x5E,
    );
    let featurizer = FeaturizationModule::untrained(&db, &config)?;
    let model = MtmlfQo::from_modules(
        featurizer,
        mtmlf::shared::SharedModule::new(&config),
        mtmlf::tasks::TaskHeads::new(&config),
        mtmlf::transjo::TransJo::new(&config),
        config,
    );
    Ok(ServeExperiment {
        model: Arc::new(model),
        db: Arc::new(db),
        queries,
    })
}

/// Drives `clients` concurrent threads through `service`, planning the
/// workload `repeats` times in total (round-robin partition). Returns
/// `(elapsed_seconds, requests_served)`.
pub fn drive_clients(
    service: &PlannerService,
    queries: &[Query],
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<(f64, usize)> {
    drive_plan_clients(service, queries, repeats, clients)
}

/// [`drive_clients`] over any [`PlanClient`] — the same driver works for a
/// single [`PlannerService`] and a [`ClusterService`], so single-node and
/// cluster numbers are measured identically.
pub fn drive_plan_clients<C: PlanClient + ?Sized>(
    client: &C,
    queries: &[Query],
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<(f64, usize)> {
    let work: Vec<&Query> = (0..repeats).flat_map(|_| queries.iter()).collect();
    let clients = clients.max(1);
    let t0 = Instant::now();
    let results: Vec<mtmlf::Result<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let work = &work;
                scope.spawn(move || -> mtmlf::Result<usize> {
                    let mut served = 0;
                    for q in work.iter().skip(c).step_by(clients) {
                        client.plan(PlanRequest::new((*q).clone()))?;
                        served += 1;
                    }
                    Ok(served)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(MtmlfError::Service("client thread panicked".into())))
            })
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut served = 0;
    for r in results {
        served += r?;
    }
    Ok((elapsed, served))
}

/// A simulated cluster replica for router-scaling benchmarks: one "CPU"
/// (a mutex serializing the model path), a fixed model-path service time,
/// and a private plan cache.
///
/// Real replicas differ only in *what* the model path costs, not in how
/// requests contend for it, so a fixed service time isolates exactly the
/// quantity the scaling benchmark is after: how much of one replica's
/// serialized model path the router can spread across N replicas.
pub struct SimReplica {
    cache: Mutex<HashMap<QueryFingerprint, PlanPayload>>,
    /// When the simulated CPU next comes free. Serialization is modeled by
    /// *reserving* a service slot under the lock and sleeping until the
    /// reserved deadline after releasing it, so no thread ever sleeps while
    /// holding the mutex (waiters would otherwise serialize on the lock
    /// itself rather than on the modeled CPU).
    cpu: Mutex<Instant>,
    service_time: Duration,
    requests: AtomicU64,
    cache_hits: AtomicU64,
}

impl SimReplica {
    /// A healthy replica whose model path takes `service_time` per plan.
    pub fn new(service_time: Duration) -> Self {
        Self {
            cache: Mutex::new(HashMap::new()),
            cpu: Mutex::new(Instant::now()),
            service_time,
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Requests this replica has planned.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered from this replica's cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// A deterministic payload derived from the fingerprint, so replicas
    /// agree on answers without sharing state.
    fn payload_for(fp: &QueryFingerprint) -> PlanPayload {
        let x = fp.as_u128() as u64;
        let card = (x % 9973) as f64 + 1.0;
        PlanPayload::new(
            JoinOrder::LeftDeep(vec![TableId((x % 16) as u32)]),
            card,
            card * 3.0,
        )
    }
}

impl ReplicaNode for SimReplica {
    fn plan(&self, request: PlanRequest) -> mtmlf::Result<PlanResponse> {
        let fp = fingerprint(&request.query);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let cached = self
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fp)
            .cloned();
        if let Some(p) = cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PlanResponse::from_payload(p, PlanSource::Cache, Duration::ZERO));
        }
        // The model path: serialized per replica, fixed cost per plan.
        // Reserve a slot on the simulated CPU, then sleep outside the lock.
        let deadline = {
            let mut next_free = self.cpu.lock().unwrap_or_else(PoisonError::into_inner);
            let start = (*next_free).max(Instant::now());
            *next_free = start + self.service_time;
            *next_free
        };
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        let payload = Self::payload_for(&fp);
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp, payload.clone());
        Ok(PlanResponse::from_payload(
            payload,
            PlanSource::Model,
            self.service_time,
        ))
    }

    fn warm(&self, fp: QueryFingerprint, payload: PlanPayload) {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(fp, payload);
    }

    fn invalidate(&self, fp: &QueryFingerprint) -> bool {
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(fp)
            .is_some()
    }
}

/// A [`ClusterService`] over `replicas` [`SimReplica`]s, plus handles to
/// the replicas for inspection. 512 vnodes keeps the key split close to
/// even at small replica counts, and warm gossip is off — the scaling
/// benchmark measures cold-cache routing, where warming a peer's cache
/// for keys it will never be asked about is pure overhead.
pub fn sim_cluster(
    replicas: usize,
    service_time: Duration,
) -> mtmlf::Result<(ClusterService, Vec<Arc<SimReplica>>)> {
    let sims: Vec<Arc<SimReplica>> = (0..replicas)
        .map(|_| Arc::new(SimReplica::new(service_time)))
        .collect();
    let nodes: Vec<Arc<dyn ReplicaNode>> = sims
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn ReplicaNode>)
        .collect();
    let cluster = ClusterService::from_replicas(
        nodes,
        ClusterConfig {
            vnodes: 512,
            warm_gossip: false,
            ..ClusterConfig::default()
        },
        Arc::new(DirectTransport::new()),
    )?;
    Ok((cluster, sims))
}

/// `n` structurally distinct single-table queries: every fingerprint is
/// unique, so one pass over the workload is all cache misses — the
/// worst case for a plan cache and the best case for replica scaling.
pub fn cluster_workload(n: usize) -> mtmlf::Result<Vec<Query>> {
    (0..n)
        .map(|i| {
            Query::new(vec![TableId(i as u32)], Vec::new(), BTreeMap::new()).map_err(Into::into)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf::serve::ServiceConfig;

    #[test]
    fn builds_and_drives_a_tiny_workload() {
        let exp = build(0.02, 3, 5).expect("setup");
        assert_eq!(exp.queries.len(), 3);
        let service = PlannerService::builder(Arc::clone(&exp.model))
            .config(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .start()
            .expect("service starts");
        let (elapsed, served) = drive_clients(&service, &exp.queries, 2, 2).expect("drive");
        assert_eq!(served, 6);
        assert!(elapsed > 0.0);
        assert_eq!(service.metrics().requests, 6);
    }

    #[test]
    fn sim_cluster_routes_a_distinct_key_workload_across_replicas() {
        let (cluster, sims) = sim_cluster(2, Duration::from_micros(50)).expect("cluster");
        let queries = cluster_workload(24).expect("workload");
        let (_, served) = drive_plan_clients(&cluster, &queries, 1, 4).expect("drive");
        assert_eq!(served, 24);
        let snapshot = cluster.metrics();
        let routed: u64 = snapshot.replicas.iter().map(|r| r.routed).sum();
        assert_eq!(routed, 24, "every request routed to exactly one replica");
        assert!(
            snapshot.replicas.iter().all(|r| r.routed > 0),
            "both replicas took a share of 24 distinct keys"
        );
        // Distinct fingerprints, single pass: pure cache misses.
        assert_eq!(sims.iter().map(|s| s.cache_hits()).sum::<u64>(), 0);
        // A second pass is all warm hits on the owning replica.
        let (_, served2) = drive_plan_clients(&cluster, &queries, 1, 4).expect("drive");
        assert_eq!(served2, 24);
        assert_eq!(sims.iter().map(|s| s.cache_hits()).sum::<u64>(), 24);
    }
}

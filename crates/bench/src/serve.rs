//! Shared setup and client driver for the serving benchmarks
//! (`serve_bench` and the `table_serve` binary).
//!
//! The model is deliberately *untrained* (fresh modules, untrained
//! featurizer): serving throughput and latency depend on tensor shapes,
//! not on learned weights, and skipping encoder pre-training keeps the
//! benchmark setup to a few seconds.

use mtmlf::serve::PlannerService;
use mtmlf::{FeaturizationModule, MtmlfConfig, MtmlfError, MtmlfQo};
use mtmlf_datagen::{generate_queries, imdb::ImdbScale, imdb_lite, WorkloadConfig};
use mtmlf_query::Query;
use mtmlf_storage::Database;
use std::sync::Arc;
use std::time::Instant;

/// A model plus a query workload for serving experiments.
pub struct ServeExperiment {
    /// The model, ready to share across a service's workers.
    pub model: Arc<MtmlfQo>,
    /// The database the model was built over — kept so serving experiments
    /// can attach a classical `FallbackPlanner` to the same data.
    pub db: Arc<Database>,
    /// The query workload.
    pub queries: Vec<Query>,
}

/// Builds the serving workload: an IMDB-shaped database at `scale`, a
/// join workload of `query_count` queries, and an untrained model over it.
pub fn build(scale: f64, query_count: usize, seed: u64) -> mtmlf::Result<ServeExperiment> {
    build_with(scale, query_count, seed, 8)
}

/// [`build`] with an explicit `max_query_tables` for the model. Passing a
/// bound *below* the workload's table counts yields a model that rejects
/// every query — the degraded-serving benchmark, where the classical
/// fallback carries the whole load.
pub fn build_with(
    scale: f64,
    query_count: usize,
    seed: u64,
    max_query_tables: usize,
) -> mtmlf::Result<ServeExperiment> {
    let mut db = imdb_lite(seed, ImdbScale { scale });
    db.analyze_all(8, 4);
    let config = MtmlfConfig {
        max_query_tables,
        seed,
        ..MtmlfConfig::tiny()
    };
    let queries = generate_queries(
        &db,
        &WorkloadConfig {
            count: query_count,
            min_tables: 3,
            max_tables: 5,
            ..WorkloadConfig::default()
        },
        seed ^ 0x5E,
    );
    let featurizer = FeaturizationModule::untrained(&db, &config)?;
    let model = MtmlfQo::from_modules(
        featurizer,
        mtmlf::shared::SharedModule::new(&config),
        mtmlf::tasks::TaskHeads::new(&config),
        mtmlf::transjo::TransJo::new(&config),
        config,
    );
    Ok(ServeExperiment {
        model: Arc::new(model),
        db: Arc::new(db),
        queries,
    })
}

/// Drives `clients` concurrent threads through `service`, planning the
/// workload `repeats` times in total (round-robin partition). Returns
/// `(elapsed_seconds, requests_served)`.
pub fn drive_clients(
    service: &PlannerService,
    queries: &[Query],
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<(f64, usize)> {
    let work: Vec<&Query> = (0..repeats).flat_map(|_| queries.iter()).collect();
    let clients = clients.max(1);
    let t0 = Instant::now();
    let results: Vec<mtmlf::Result<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let work = &work;
                scope.spawn(move || -> mtmlf::Result<usize> {
                    let mut served = 0;
                    for q in work.iter().skip(c).step_by(clients) {
                        service.plan((*q).clone())?;
                        served += 1;
                    }
                    Ok(served)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(MtmlfError::Service("client thread panicked".into())))
            })
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut served = 0;
    for r in results {
        served += r?;
    }
    Ok((elapsed, served))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtmlf::serve::ServiceConfig;

    #[test]
    fn builds_and_drives_a_tiny_workload() {
        let exp = build(0.02, 3, 5).expect("setup");
        assert_eq!(exp.queries.len(), 3);
        let service = PlannerService::builder(Arc::clone(&exp.model))
            .config(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .start()
            .expect("service starts");
        let (elapsed, served) = drive_clients(&service, &exp.queries, 2, 2).expect("drive");
        assert_eq!(served, 6);
        assert!(elapsed > 0.0);
        assert_eq!(service.metrics().requests, 6);
    }
}

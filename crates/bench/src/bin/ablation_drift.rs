//! Ablation: data-distribution drift and featurization refresh (paper
//! Section 2.3: after a shift, "only the featurization and encoding module
//! of MTMLF needs to be updated without affecting the other two modules").
//!
//! Trains on one version of the database, then evaluates per-node
//! cardinality q-error on a *drifted* version (same schema, regenerated
//! data) under three regimes: the stale model, the model with only (F)
//! refreshed, and a fully retrained model.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin ablation_drift -- \
//!     [--scale 0.05] [--train 200] [--test 50]
//! ```

use mtmlf::{MtmlfConfig, MtmlfQo};
use mtmlf_bench::{report, Args};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, LabeledQuery,
    WorkloadConfig,
};
use mtmlf_optd::{q_error, QErrorSummary};
use mtmlf_storage::Database;

fn workload(db: &Database, count: usize, seed: u64) -> mtmlf::Result<Vec<LabeledQuery>> {
    let queries = generate_queries(
        db,
        &WorkloadConfig {
            count,
            min_tables: 3,
            max_tables: 6,
            ..WorkloadConfig::default()
        },
        seed,
    );
    Ok(label_workload(db, &queries, &LabelConfig::default())?)
}

fn card_summary(db_queries: &[LabeledQuery], model: &MtmlfQo) -> mtmlf::Result<QErrorSummary> {
    let mut errors = Vec::new();
    for l in db_queries {
        let preds = model.predict_nodes(&l.query, &l.plan)?;
        for (i, node) in l.plan.post_order().iter().enumerate() {
            if node.leaf_count() < 2 {
                continue;
            }
            errors.push(q_error(preds[i].0, l.node_cards[i] as f64));
        }
    }
    QErrorSummary::from_errors(&errors)
        .ok_or_else(|| mtmlf::MtmlfError::Opt("no multi-table sub-plans to score".into()))
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.05);
    let train_n = args.usize("train", 200);
    let test_n = args.usize("test", 50);
    let seed = args.u64("seed", 1);
    println!("# Ablation — data drift and featurization refresh");

    // Version 1 of the database and the model trained on it.
    let mut db_v1 = imdb_lite(seed, ImdbScale { scale }).expect("imdb_lite schema is static");
    db_v1.analyze_all(24, 12);
    let train = workload(&db_v1, train_n, seed ^ 0xD1)?;
    let config = MtmlfConfig {
        epochs: args.usize("epochs", 12),
        seed,
        ..MtmlfConfig::default()
    };
    let mut model = MtmlfQo::new(&db_v1, config.clone())?;
    model.train(&train)?;

    // Drift: regenerate the database with a different seed — same schema,
    // different value distributions, popularity ranks, and string pools.
    let mut db_v2 = imdb_lite(seed ^ 0xD21F7, ImdbScale { scale }).expect("imdb_lite schema is static");
    db_v2.analyze_all(24, 12);
    let test_v2 = workload(&db_v2, test_n, seed ^ 0xD2)?;

    // Regime 1: stale — featurizer still encodes v1 distributions.
    let stale = card_summary(&test_v2, &model)?;

    // Regime 2: refresh (F) only — the paper's cheap evolution path.
    model.refresh_featurization(&db_v2)?;
    let refreshed = card_summary(&test_v2, &model)?;

    // Regime 3: full retrain on v2.
    let train_v2 = workload(&db_v2, train_n, seed ^ 0xD3)?;
    let mut retrained = MtmlfQo::new(&db_v2, config)?;
    retrained.train(&train_v2)?;
    let full = card_summary(&test_v2, &retrained)?;

    println!();
    let row = |name: &str, s: &QErrorSummary| {
        vec![
            name.to_string(),
            format!("{:.2}", s.median),
            format!("{:.2}", s.mean),
            report::fmt(s.max),
        ]
    };
    print!(
        "{}",
        report::render_table(
            &["Regime", "Card median", "Card mean", "Card max"],
            &[
                row("stale (trained on v1)", &stale),
                row("featurizer refreshed only", &refreshed),
                row("fully retrained on v2", &full),
            ],
        )
    );
    Ok(())
}

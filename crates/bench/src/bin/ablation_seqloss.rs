//! Ablation: token-level cross-entropy vs the sequence-level JOEU loss
//! (paper Section 5, Eq. 3).
//!
//! Trains two JoinSel-only models — one with the standard token-level loss,
//! one with the sequence-level loss — and compares join-order quality on
//! the test set.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin ablation_seqloss -- \
//!     [--scale 0.06] [--train 150] [--test 50] [--seed 1]
//! ```

use mtmlf::{joeu, LossWeights, MtmlfConfig, MtmlfQo};
use mtmlf_bench::single_db::{SingleDbExperiment, SingleDbSetup};
use mtmlf_bench::{report, Args};
use mtmlf_exec::Executor;

fn evaluate(exp: &SingleDbExperiment, model: &MtmlfQo) -> mtmlf::Result<(f64, f64, f64)> {
    let exec = Executor::new(&exp.db);
    let mut total = 0.0;
    let mut matched = 0usize;
    let mut joeu_sum = 0.0;
    let mut n = 0usize;
    for l in &exp.test {
        let Some(optimal) = &l.optimal_order else {
            continue;
        };
        let order = model.predict_join_order(&l.query, &l.plan)?;
        total += exec.execute_order(&l.query, &order)?.sim_minutes;
        let to_usize = |ts: &[mtmlf_storage::TableId]| -> Vec<usize> {
            ts.iter().map(|t| t.index()).collect()
        };
        if order.tables() == optimal.tables() {
            matched += 1;
        }
        joeu_sum += joeu(&to_usize(&order.tables()), &to_usize(&optimal.tables()));
        n += 1;
    }
    Ok((
        total,
        matched as f64 / n.max(1) as f64,
        joeu_sum / n.max(1) as f64,
    ))
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = SingleDbSetup {
        scale: args.f64("scale", 0.06),
        train_queries: args.usize("train", 150),
        test_queries: args.usize("test", 50),
        min_tables: args.usize("min-tables", 3),
        max_tables: args.usize("max-tables", 6),
        epochs: args.usize("epochs", 12),
        seed: args.u64("seed", 1),
    };
    println!("# Ablation — token-level CE vs sequence-level JOEU loss");
    println!("# setup: {setup:?}");
    let exp = SingleDbExperiment::build(setup)?;
    let featurizer = exp.fit_featurizer()?;

    let train_with = |sequence_loss: bool| -> mtmlf::Result<MtmlfQo> {
        let config = MtmlfConfig {
            sequence_loss,
            weights: LossWeights::jo_only(),
            ..exp.model_config(LossWeights::jo_only())
        };
        let mut model = MtmlfQo::from_modules(
            featurizer.clone(),
            mtmlf::shared::SharedModule::new(&config),
            mtmlf::tasks::TaskHeads::new(&config),
            mtmlf::transjo::TransJo::new(&config),
            config,
        );
        model.train(&exp.train)?;
        Ok(model)
    };

    let token = train_with(false)?;
    let sequence = train_with(true)?;
    let (t_total, t_match, t_joeu) = evaluate(&exp, &token)?;
    let (s_total, s_match, s_joeu) = evaluate(&exp, &sequence)?;
    println!();
    print!(
        "{}",
        report::render_table(
            &["Loss", "Total Time", "Optimal match", "Mean JOEU"],
            &[
                vec![
                    "token-level CE".into(),
                    format!("{t_total:.2} min"),
                    format!("{:.0}%", t_match * 100.0),
                    format!("{t_joeu:.2}"),
                ],
                vec![
                    "sequence-level (Eq. 3)".into(),
                    format!("{s_total:.2} min"),
                    format!("{:.0}%", s_match * 100.0),
                    format!("{s_joeu:.2}"),
                ],
            ],
        )
    );
    Ok(())
}

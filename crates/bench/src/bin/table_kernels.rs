//! Kernel throughput: the naive reference matmul vs the cache-blocked
//! kernel vs the blocked + thread-pool kernel, at transformer-sized
//! shapes, plus per-stage forward latency (matmul / fused attention /
//! encoder block / full encoder) before and after tuning and the
//! steady-state arena counters. Every tuned result is differentially
//! checked against the reference *in this binary too* — a throughput
//! number from a wrong kernel is worse than no number.
//!
//! Raw numbers go to `BENCH_kernels.json`.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table_kernels -- \
//!     [--repeats 5] [--threads 4] [--block 64] [--out BENCH_kernels.json]
//! ```

use mtmlf_bench::{report, Args};
use mtmlf_nn::kernel::{self, KernelConfig};
use mtmlf_nn::{no_grad, Matrix, MultiHeadAttention, ProfileGuard, TransformerEncoder, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Which kernel family a row exercises. `Nn` is the row-major product the
/// projection layers run; `Nt` is the transposed-B product behind attention
/// scores (`Q·Kᵀ`) and weight-gradient accumulation. The distinction
/// matters for the numbers: the naive `Nn` loop is already the
/// auto-vectorizable i-k-j form, so blocking only repays its packing cost
/// once `B` outgrows cache — while the naive `Nt` loop is a strict-order
/// scalar dot product the compiler cannot vectorize, and packing it back
/// into row-major panels is worth 2-3x at every transformer-sized shape.
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Nn,
    Nt,
}

/// GEMM shapes a transformer forward actually runs: `(seq, d_model)`
/// activations against `(d_model, d_model)` projections, score matrices
/// (`Nt`), and the batched-planning packed shapes (many plans' rows at
/// once).
const GEMM_SHAPES: [(usize, usize, usize, Kind, &str); 7] = [
    (32, 64, 64, Kind::Nn, "per-query proj (32x64x64)"),
    (64, 128, 128, Kind::Nn, "wide proj (64x128x128)"),
    (128, 96, 96, Kind::Nn, "packed batch (128x96x96)"),
    (256, 128, 128, Kind::Nn, "packed batch (256x128x128)"),
    (64, 64, 64, Kind::Nt, "scores QK^T (64x64x64)"),
    (128, 96, 96, Kind::Nt, "scores QK^T (128x96x96)"),
    (256, 128, 256, Kind::Nt, "grad accum (256x128x256)"),
];

/// Best-of-N wall time for `f`, in seconds per call. Fast calls are batched
/// so every sample spans at least ~200µs of wall time — a single µs-scale
/// matmul timed alone is mostly timer and scheduler noise, and the shortest
/// shapes here run in single-digit µs. The calibration pass's output is
/// also returned so callers can differentially check it.
fn best_secs<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    const MIN_SAMPLE_SECS: f64 = 200e-6;
    let t0 = Instant::now();
    let out = f();
    let est = t0.elapsed().as_secs_f64();
    let iters = ((MIN_SAMPLE_SECS / est.max(1e-9)).ceil() as usize).clamp(1, 1024);
    let mut best = est;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    (best, out)
}

fn gflops(m: usize, k: usize, n: usize, secs: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / secs / 1e9
}

struct GemmRow {
    label: &'static str,
    kind: Kind,
    m: usize,
    k: usize,
    n: usize,
    reference: f64,
    blocked: f64,
    parallel: f64,
}

struct StageRow {
    stage: &'static str,
    reference_us: f64,
    tuned_us: f64,
}

fn measure_gemms(repeats: usize, blocked: KernelConfig, parallel: KernelConfig) -> Vec<GemmRow> {
    let mut rng = StdRng::seed_from_u64(17);
    GEMM_SHAPES
        .into_iter()
        .map(|(m, k, n, kind, label)| {
            let a = Matrix::xavier(m, k, &mut rng);
            // NT multiplies by B's rows: allocate it as `(n, k)`.
            let b = match kind {
                Kind::Nn => Matrix::xavier(k, n, &mut rng),
                Kind::Nt => Matrix::xavier(n, k, &mut rng),
            };
            let run_ref = |a: &Matrix, b: &Matrix| match kind {
                Kind::Nn => a.matmul_reference(b),
                Kind::Nt => a.matmul_nt_reference(b),
            };
            let run = |a: &Matrix, b: &Matrix| match kind {
                Kind::Nn => a.matmul(b),
                Kind::Nt => a.matmul_nt(b),
            };
            let (ref_s, ref_out) = best_secs(repeats, || run_ref(&a, &b));
            let (blk_s, blk_out) = best_secs(repeats, || kernel::scoped(blocked, || run(&a, &b)));
            let (par_s, par_out) = best_secs(repeats, || kernel::scoped(parallel, || run(&a, &b)));
            // Differential check inline: equal bits or the numbers are void.
            assert_eq!(ref_out.data(), blk_out.data(), "blocked drifted at {label}");
            assert_eq!(
                ref_out.data(),
                par_out.data(),
                "parallel drifted at {label}"
            );
            GemmRow {
                label,
                kind,
                m,
                k,
                n,
                reference: gflops(m, k, n, ref_s),
                blocked: gflops(m, k, n, blk_s),
                parallel: gflops(m, k, n, par_s),
            }
        })
        .collect()
}

/// One GEMM shape's throughput at each measured worker count.
struct CurveRow {
    label: &'static str,
    kind: Kind,
    m: usize,
    k: usize,
    n: usize,
    /// `(threads, GFLOP/s)` per measured point.
    points: Vec<(usize, f64)>,
}

/// Throughput of every GEMM shape across worker counts, so a serving host
/// can read the scaling curve (and its saturation point) straight from the
/// bench instead of re-tuning blind. Every point is differentially checked
/// against the reference output before its number counts.
fn measure_thread_curves(repeats: usize, block: usize, thread_counts: &[usize]) -> Vec<CurveRow> {
    let mut rng = StdRng::seed_from_u64(41);
    GEMM_SHAPES
        .into_iter()
        .map(|(m, k, n, kind, label)| {
            let a = Matrix::xavier(m, k, &mut rng);
            let b = match kind {
                Kind::Nn => Matrix::xavier(k, n, &mut rng),
                Kind::Nt => Matrix::xavier(n, k, &mut rng),
            };
            let reference = match kind {
                Kind::Nn => a.matmul_reference(&b),
                Kind::Nt => a.matmul_nt_reference(&b),
            };
            let points = thread_counts
                .iter()
                .map(|&threads| {
                    let cfg = KernelConfig {
                        threads,
                        block_size: block,
                    };
                    let (secs, out) = best_secs(repeats, || {
                        kernel::scoped(cfg, || match kind {
                            Kind::Nn => a.matmul(&b),
                            Kind::Nt => a.matmul_nt(&b),
                        })
                    });
                    assert_eq!(
                        reference.data(),
                        out.data(),
                        "thread-curve drifted at {label} with {threads} threads"
                    );
                    (threads, gflops(m, k, n, secs))
                })
                .collect();
            CurveRow {
                label,
                kind,
                m,
                k,
                n,
                points,
            }
        })
        .collect()
}

fn measure_stages(repeats: usize, tuned: KernelConfig) -> Vec<StageRow> {
    let mut rng = StdRng::seed_from_u64(23);
    let d = 128;
    let seq = 64;
    let enc = TransformerEncoder::new(d, 4, 2, &mut rng);
    let attn = MultiHeadAttention::new(d, 4, &mut rng);
    let a = Matrix::xavier(seq, d, &mut rng);
    let w = Matrix::xavier(d, d, &mut rng);
    let x = Var::constant(a.clone());
    let scale = 1.0 / (d as f32).sqrt();

    let mut rows = Vec::new();
    let mut stage = |name: &'static str, f: &dyn Fn()| {
        let (ref_s, ()) = best_secs(repeats, f);
        let (tuned_s, ()) = best_secs(repeats, || kernel::scoped(tuned, f));
        rows.push(StageRow {
            stage: name,
            reference_us: ref_s * 1e6,
            tuned_us: tuned_s * 1e6,
        });
    };
    stage("matmul", &|| {
        let _ = a.matmul(&w);
    });
    stage("attention_scores", &|| {
        let _ = a.attention_scores(&w, scale, None);
    });
    stage("multi_head_attention", &|| {
        no_grad(|| {
            let _ = attn.forward(&x, &x, None);
        });
    });
    stage("encoder_forward", &|| {
        no_grad(|| {
            let _ = enc.forward(&x);
        });
    });
    rows
}

/// Steady-state allocation behaviour of a warm tuned forward.
fn steady_state(tuned: KernelConfig) -> (u64, u64, u64) {
    let mut rng = StdRng::seed_from_u64(29);
    let enc = TransformerEncoder::new(64, 4, 2, &mut rng);
    let x = Var::constant(Matrix::xavier(16, 64, &mut rng));
    kernel::scoped(tuned, || {
        no_grad(|| {
            for _ in 0..2 {
                let _ = enc.forward(&x);
            }
            let guard = ProfileGuard::begin();
            let _ = enc.forward(&x);
            let s = guard.stats();
            (s.allocations, s.allocated_floats, s.arena_reuses)
        })
    })
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn render_json(
    gemms: &[GemmRow],
    curves: &[CurveRow],
    stages: &[StageRow],
    steady: (u64, u64, u64),
    blocked: KernelConfig,
    parallel: KernelConfig,
    repeats: usize,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"blocked\": {{\"threads\": {}, \"block_size\": {}}}, \"parallel\": {{\"threads\": {}, \"block_size\": {}}}, \"repeats\": {}, \"host_parallelism\": {}}},\n",
        blocked.threads,
        blocked.block_size,
        parallel.threads,
        parallel.block_size,
        repeats,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    ));
    out.push_str("  \"gemm_gflops\": [\n");
    for (i, r) in gemms.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}x{}x{}\", \"kind\": \"{}\", \"label\": \"{}\", \"reference\": {}, \"blocked\": {}, \"parallel\": {}, \"blocked_speedup\": {}}}{}\n",
            r.m,
            r.k,
            r.n,
            if r.kind == Kind::Nt { "nt" } else { "nn" },
            r.label,
            json_num(r.reference),
            json_num(r.blocked),
            json_num(r.parallel),
            json_num(r.blocked / r.reference),
            if i + 1 < gemms.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"gemm_thread_curves\": [\n");
    for (i, r) in curves.iter().enumerate() {
        let points: Vec<String> = r
            .points
            .iter()
            .map(|&(t, gf)| format!("\"{}\": {}", t, json_num(gf)))
            .collect();
        out.push_str(&format!(
            "    {{\"shape\": \"{}x{}x{}\", \"kind\": \"{}\", \"label\": \"{}\", \"gflops_by_threads\": {{{}}}}}{}\n",
            r.m,
            r.k,
            r.n,
            if r.kind == Kind::Nt { "nt" } else { "nn" },
            r.label,
            points.join(", "),
            if i + 1 < curves.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"stage_latency_us\": [\n");
    for (i, r) in stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"reference\": {}, \"tuned\": {}}}{}\n",
            r.stage,
            json_num(r.reference_us),
            json_num(r.tuned_us),
            if i + 1 < stages.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"steady_state\": {{\"allocations\": {}, \"allocated_floats\": {}, \"arena_reuses\": {}}}\n}}\n",
        steady.0, steady.1, steady.2,
    ));
    out
}

fn main() {
    let args = Args::parse();
    let repeats = args.usize("repeats", 5);
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = args.usize("threads", host.min(kernel::MAX_THREADS));
    let block = args.usize("block", 64);
    let out_path = args.str("out", "BENCH_kernels.json");

    let blocked = KernelConfig::single_threaded(block);
    let parallel = KernelConfig {
        threads,
        block_size: block,
    };
    if let Err(why) = parallel.validate() {
        eprintln!("invalid kernel config: {why}");
        std::process::exit(2);
    }

    let gemms = measure_gemms(repeats, blocked, parallel);
    let curves = measure_thread_curves(repeats, block, &[1, 2, 4]);
    let stages = measure_stages(repeats, parallel);
    let steady = steady_state(parallel);

    let rows: Vec<Vec<String>> = gemms
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                report::fmt(r.reference),
                report::fmt(r.blocked),
                report::fmt(r.parallel),
                format!("{:.2}x", r.blocked / r.reference),
            ]
        })
        .collect();
    println!("GEMM throughput (GFLOP/s, best of {repeats}):\n");
    println!(
        "{}",
        report::render_table(
            &["shape", "reference", "blocked", "parallel", "blocked/ref"],
            &rows,
        )
    );
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|r| {
            let mut row = vec![r.label.to_string()];
            row.extend(r.points.iter().map(|&(_, gf)| report::fmt(gf)));
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("shape".to_string())
        .chain(
            curves
                .first()
                .map(|c| c.points.as_slice())
                .unwrap_or_default()
                .iter()
                .map(|&(t, _)| format!("{t} thr")),
        )
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("GEMM scaling by worker count (GFLOP/s, block={block}):\n");
    println!("{}", report::render_table(&headers, &rows));
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|r| {
            vec![
                r.stage.to_string(),
                report::fmt(r.reference_us),
                report::fmt(r.tuned_us),
            ]
        })
        .collect();
    println!("Per-stage forward latency (µs, best of {repeats}):\n");
    println!(
        "{}",
        report::render_table(&["stage", "reference", "tuned"], &rows)
    );
    println!(
        "Steady-state tuned forward: allocations={} allocated_floats={} arena_reuses={}",
        steady.0, steady.1, steady.2
    );

    let json = render_json(&gemms, &curves, &stages, steady, blocked, parallel, repeats);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");
}

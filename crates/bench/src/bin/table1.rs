//! Regenerates **Table 1** of the paper: Q-errors on the JOB-like workload.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table1 -- \
//!     [--scale 0.08] [--train 300] [--test 80] [--max-tables 6] [--seed 1]
//! ```

use mtmlf_bench::single_db::{SingleDbExperiment, SingleDbSetup};
use mtmlf_bench::{table1, Args};
use std::time::Instant;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = SingleDbSetup {
        scale: args.f64("scale", 0.08),
        train_queries: args.usize("train", 300),
        test_queries: args.usize("test", 80),
        min_tables: args.usize("min-tables", 3),
        max_tables: args.usize("max-tables", 6),
        epochs: args.usize("epochs", 12),
        seed: args.u64("seed", 1),
    };
    println!("# Table 1 — Q-errors on the JOB-like workload");
    println!("# setup: {setup:?}");
    let t0 = Instant::now();
    let exp = SingleDbExperiment::build(setup)?;
    println!(
        "# data ready in {:.1}s ({} train / {} test labelled queries)",
        t0.elapsed().as_secs_f64(),
        exp.train.len(),
        exp.test.len()
    );
    let t1 = Instant::now();
    let result = table1::run(&exp)?;
    println!(
        "# methods trained + evaluated in {:.1}s\n",
        t1.elapsed().as_secs_f64()
    );
    print!("{}", table1::render(&result));
    println!("\n# Paper reference (absolute numbers differ; ordering is the target):");
    println!("#   PostgreSQL  card median 184.00, cost median 4.90");
    println!("#   Tree-LSTM   card median 8.78,   cost median 4.00");
    println!("#   MTMLF-QO    card median 4.48,   cost median 2.10");
    Ok(())
}

//! Ablation: two-phase join-order training (the paper's Section 3.2
//! "research opportunities").
//!
//! Optimal join orders are exponential to label, so only a small "precious"
//! set exists; classical-optimizer orders are free. Compare:
//!
//! 1. training only on the small optimal set;
//! 2. phase 1 on the full workload with classical-optimizer orders, then
//!    phase 2 on the same small optimal set.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin ablation_twophase -- \
//!     [--scale 0.06] [--train 300] [--precious 60] [--test 50]
//! ```

use mtmlf::{LossWeights, MtmlfQo};
use mtmlf_bench::single_db::{SingleDbExperiment, SingleDbSetup};
use mtmlf_bench::{report, Args};
use mtmlf_exec::Executor;

fn evaluate(exp: &SingleDbExperiment, model: &MtmlfQo) -> mtmlf::Result<(f64, f64)> {
    let exec = Executor::new(&exp.db);
    let mut total = 0.0;
    let mut matched = 0usize;
    let mut n = 0usize;
    for l in &exp.test {
        let Some(optimal) = &l.optimal_order else {
            continue;
        };
        let order = model.predict_join_order(&l.query, &l.plan)?;
        total += exec.execute_order(&l.query, &order)?.sim_minutes;
        if order.tables() == optimal.tables() {
            matched += 1;
        }
        n += 1;
    }
    Ok((total, matched as f64 / n.max(1) as f64))
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = SingleDbSetup {
        scale: args.f64("scale", 0.06),
        train_queries: args.usize("train", 300),
        test_queries: args.usize("test", 50),
        min_tables: args.usize("min-tables", 3),
        max_tables: args.usize("max-tables", 6),
        epochs: args.usize("epochs", 12),
        seed: args.u64("seed", 1),
    };
    let precious = args.usize("precious", 60).min(setup.train_queries);
    println!("# Ablation — two-phase join-order training");
    println!("# setup: {setup:?}, precious optimal labels: {precious}");
    let exp = SingleDbExperiment::build(setup)?;
    let featurizer = exp.fit_featurizer()?;
    let precious_set = &exp.train[..precious];

    // Variant 1: optimal-only training on the small precious set.
    let config = exp.model_config(LossWeights::default());
    let mut optimal_only = MtmlfQo::from_modules(
        featurizer.clone(),
        mtmlf::shared::SharedModule::new(&config),
        mtmlf::tasks::TaskHeads::new(&config),
        mtmlf::transjo::TransJo::new(&config),
        config.clone(),
    );
    optimal_only.train(precious_set)?;

    // Variant 2: two-phase — cheap classical orders first, then precious.
    let mut two_phase = MtmlfQo::from_modules(
        featurizer.clone(),
        mtmlf::shared::SharedModule::new(&config),
        mtmlf::tasks::TaskHeads::new(&config),
        mtmlf::transjo::TransJo::new(&config),
        config.clone(),
    );
    two_phase.train_two_phase(&exp.train, precious_set, config.epochs)?;

    let (t1, m1) = evaluate(&exp, &optimal_only)?;
    let (t2, m2) = evaluate(&exp, &two_phase)?;
    println!();
    print!(
        "{}",
        report::render_table(
            &["Training", "Total Time", "Optimal match"],
            &[
                vec![
                    format!("optimal-only ({precious} labels)"),
                    format!("{t1:.2} min"),
                    format!("{:.0}%", m1 * 100.0),
                ],
                vec![
                    format!("two-phase ({} cheap + {precious} optimal)", exp.train.len()),
                    format!("{t2:.2} min"),
                    format!("{:.0}%", m2 * 100.0),
                ],
            ],
        )
    );
    Ok(())
}

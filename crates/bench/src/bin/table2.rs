//! Regenerates **Table 2** of the paper: execution time of different join
//! orders on the single (IMDB-shaped) database.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table2 -- \
//!     [--scale 0.08] [--train 300] [--test 80] [--max-tables 6] [--seed 1]
//! ```

use mtmlf_bench::single_db::{SingleDbExperiment, SingleDbSetup};
use mtmlf_bench::{table2, Args};
use std::time::Instant;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = SingleDbSetup {
        scale: args.f64("scale", 0.08),
        train_queries: args.usize("train", 300),
        test_queries: args.usize("test", 80),
        min_tables: args.usize("min-tables", 3),
        max_tables: args.usize("max-tables", 6),
        epochs: args.usize("epochs", 12),
        seed: args.u64("seed", 1),
    };
    println!("# Table 2 — Execution time with different join orders");
    println!("# setup: {setup:?}");
    let t0 = Instant::now();
    let exp = SingleDbExperiment::build(setup)?;
    println!(
        "# data ready in {:.1}s ({} train / {} test labelled queries)",
        t0.elapsed().as_secs_f64(),
        exp.train.len(),
        exp.test.len()
    );
    let t1 = Instant::now();
    let (result, mut details) = table2::run(&exp)?;
    println!(
        "# trained + executed in {:.1}s\n",
        t1.elapsed().as_secs_f64()
    );
    print!("{}", table2::render(&result));
    if args.flag("verbose") {
        details.sort_by(|a, b| b.minutes[0].total_cmp(&a.minutes[0]));
        println!("\n# worst queries by PostgreSQL time (pg / optimal / mtmlf / joinsel):");
        for d in details.iter().take(10) {
            let q = if d.query.len() > 70 {
                &d.query[..70]
            } else {
                &d.query
            };
            println!(
                "#  {:>8.3} {:>8.3} {:>8.3} {:>8.3}  {q}",
                d.minutes[0], d.minutes[1], d.minutes[2], d.minutes[3]
            );
        }
    }
    println!("\n# Paper reference: PostgreSQL 1143.2 min; Optimal 81.7% improvement;");
    println!("# MTMLF-QO 72.2%; MTMLF-JoinSel 60.6%; MTMLF-QO optimal on >70% of queries.");
    Ok(())
}

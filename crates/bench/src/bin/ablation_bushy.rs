//! Ablation: learned *bushy* decoding vs left-deep decoding (paper
//! Sections 4.1–4.2: "Trans_JO can also generate bushy plans with our
//! novel decoding algorithm").
//!
//! Trains a model with both the left-deep pointer loss and the bushy
//! KL-divergence loss (against the tree decoding embeddings), then compares
//! the execution time of its left-deep vs bushy predictions against the
//! exact optima of both plan spaces.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin ablation_bushy -- \
//!     [--scale 0.05] [--train 200] [--test 40]
//! ```

use mtmlf::{MtmlfConfig, MtmlfQo};
use mtmlf_bench::{report, Args};
use mtmlf_datagen::{
    generate_queries, imdb::ImdbScale, imdb_lite, label_workload, LabelConfig, WorkloadConfig,
};
use mtmlf_exec::Executor;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.05);
    let train_n = args.usize("train", 200);
    let test_n = args.usize("test", 40);
    let seed = args.u64("seed", 1);
    println!("# Ablation — learned bushy vs left-deep decoding");
    println!("# scale {scale}, {train_n} train / {test_n} test, seed {seed}");

    let mut db = imdb_lite(seed, ImdbScale { scale }).expect("imdb_lite schema is static");
    db.analyze_all(24, 12);
    let wl = |count, s| {
        generate_queries(
            &db,
            &WorkloadConfig {
                count,
                min_tables: 3,
                max_tables: 6,
                ..WorkloadConfig::default()
            },
            s,
        )
    };
    // Bushy labels are requested for training and testing.
    let label_cfg = LabelConfig {
        label_bushy: true,
        ..LabelConfig::default()
    };
    let train = label_workload(&db, &wl(train_n, seed ^ 0xB1), &label_cfg)?;
    let test = label_workload(&db, &wl(test_n, seed ^ 0xB2), &label_cfg)?;

    let config = MtmlfConfig {
        bushy: true,
        epochs: args.usize("epochs", 15),
        seed,
        ..MtmlfConfig::default()
    };
    let mut model = MtmlfQo::new(&db, config)?;
    model.train(&train)?;

    let exec = Executor::new(&db);
    let mut totals = [0.0f64; 4]; // left-deep pred, bushy pred, ld optimal, bushy optimal
    let mut bushy_fallbacks = 0usize;
    for l in &test {
        let ld_pred = model.predict_join_order(&l.query, &l.plan)?;
        let bushy_pred = model.predict_bushy_join_order(&l.query, &l.plan)?;
        if matches!(bushy_pred, mtmlf_query::JoinOrder::LeftDeep(_)) {
            bushy_fallbacks += 1;
        }
        let ld_opt = l
            .optimal_order
            .as_ref()
            .ok_or(mtmlf::MtmlfError::MissingLabel("optimal order"))?;
        let bushy_opt = l
            .optimal_bushy
            .as_ref()
            .ok_or(mtmlf::MtmlfError::MissingLabel("optimal bushy order"))?;
        for (i, order) in [&ld_pred, &bushy_pred, ld_opt, bushy_opt]
            .iter()
            .enumerate()
        {
            totals[i] += exec.execute_order(&l.query, order)?.sim_minutes;
        }
    }
    println!();
    print!(
        "{}",
        report::render_table(
            &["Decoding", "Total Time"],
            &[
                vec!["learned left-deep".into(), format!("{:.3} min", totals[0])],
                vec!["learned bushy".into(), format!("{:.3} min", totals[1])],
                vec!["optimal left-deep".into(), format!("{:.3} min", totals[2])],
                vec!["optimal bushy".into(), format!("{:.3} min", totals[3])],
            ],
        )
    );
    println!(
        "# bushy decoder fell back to left-deep on {bushy_fallbacks}/{} queries",
        test.len()
    );
    Ok(())
}

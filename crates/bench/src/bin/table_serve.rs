//! Serving throughput: sequential per-query planning vs the
//! [`PlannerService`] in three configurations — worker pool only, pool +
//! cross-query batching, and pool + batching + plan cache.
//!
//! Reports queries/second per mode plus the warm-cache vs model-path
//! latency split, and writes the raw numbers to `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table_serve -- \
//!     [--scale 0.03] [--queries 24] [--repeats 4] [--clients 8] \
//!     [--workers 2] [--seed 1] [--out BENCH_serve.json]
//! ```

use mtmlf::serve::{PlannerService, ServiceConfig, ServiceMetrics};
use mtmlf::MtmlfError;
use mtmlf_bench::serve::{build, drive_clients, ServeExperiment};
use mtmlf_bench::{report, Args};
use std::sync::Arc;
use std::time::Instant;

struct ModeResult {
    name: &'static str,
    elapsed_s: f64,
    qps: f64,
    metrics: Option<ServiceMetrics>,
}

fn run_mode(
    name: &'static str,
    exp: &ServeExperiment,
    config: ServiceConfig,
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<ModeResult> {
    let service = PlannerService::start(Arc::clone(&exp.model), config)?;
    let (elapsed_s, served) = drive_clients(&service, &exp.queries, repeats, clients)?;
    Ok(ModeResult {
        name,
        elapsed_s,
        qps: served as f64 / elapsed_s,
        metrics: Some(service.metrics()),
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(args: &[(&str, f64)], modes: &[ModeResult], cached: &ServiceMetrics) -> String {
    let mut out = String::from("{\n  \"table\": \"serve\",\n  \"setup\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", json_escape(k)));
    }
    out.push_str("},\n  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"elapsed_s\": {:.6}, \"qps\": {:.3}",
            json_escape(m.name),
            m.elapsed_s,
            m.qps
        ));
        if let Some(metrics) = &m.metrics {
            out.push_str(&format!(
                ", \"cache_hits\": {}, \"model_plans\": {}, \"batches\": {}, \"batched_queries\": {}",
                metrics.cache_hits, metrics.model_plans, metrics.batches, metrics.batched_queries
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    let model_mean = cached.model_latency.mean().as_secs_f64();
    let cache_mean = cached.cache_latency.mean().as_secs_f64();
    let p99_model = cached.model_latency.quantile(0.99).as_secs_f64();
    let p99_cache = cached.cache_latency.quantile(0.99).as_secs_f64();
    out.push_str(&format!(
        "  ],\n  \"latency\": {{\"model_mean_us\": {:.3}, \"cache_mean_us\": {:.3}, \
         \"model_p99_us\": {:.3}, \"cache_p99_us\": {:.3}, \"cache_over_model\": {:.6}}},\n",
        model_mean * 1e6,
        cache_mean * 1e6,
        p99_model * 1e6,
        p99_cache * 1e6,
        if model_mean > 0.0 {
            cache_mean / model_mean
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"hit_rate\": {:.4}}}\n}}\n",
        cached.cache_hits,
        cached.cache_hit_rate()
    ));
    out
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.03);
    let queries = args.usize("queries", 24);
    let repeats = args.usize("repeats", 4);
    let clients = args.usize("clients", 8);
    let workers = args.usize("workers", 2);
    let seed = args.u64("seed", 1);
    let out_path = args.str("out", "BENCH_serve.json");
    println!("# Serving throughput — sequential vs PlannerService");
    println!(
        "# scale {scale}, {queries} queries x {repeats} repeats, \
         {clients} clients, {workers} workers, seed {seed}"
    );

    let exp = build(scale, queries, seed)?;
    let total = exp.queries.len() * repeats;

    // Baseline: the pre-existing one-query-at-a-time public API.
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in &exp.queries {
            exp.model.plan_with_estimates(q)?;
        }
    }
    let seq_s = t0.elapsed().as_secs_f64();
    let mut modes = vec![ModeResult {
        name: "sequential",
        elapsed_s: seq_s,
        qps: total as f64 / seq_s,
        metrics: None,
    }];

    modes.push(run_mode(
        "pooled",
        &exp,
        ServiceConfig {
            workers,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);
    modes.push(run_mode(
        "pooled+batched",
        &exp,
        ServiceConfig {
            workers,
            batching: true,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);
    modes.push(run_mode(
        "pooled+batched+cache",
        &exp,
        ServiceConfig {
            workers,
            batching: true,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);

    let baseline = modes[0].qps;
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:.2}", m.elapsed_s),
                format!("{:.1}", m.qps),
                format!("{:.2}x", m.qps / baseline),
                m.metrics
                    .as_ref()
                    .map(|s| s.cache_hits.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!();
    print!(
        "{}",
        report::render_table(
            &["Mode", "Elapsed (s)", "QPS", "Speedup", "Cache hits"],
            &rows
        )
    );

    let cached_metrics = modes
        .last()
        .and_then(|m| m.metrics.clone())
        .ok_or_else(|| MtmlfError::Service("cached mode produced no metrics".into()))?;
    let model_us = cached_metrics.model_latency.mean().as_secs_f64() * 1e6;
    let cache_us = cached_metrics.cache_latency.mean().as_secs_f64() * 1e6;
    println!();
    println!(
        "warm-cache latency {:.1}us vs model-path {:.1}us ({:.2}% of model path)",
        cache_us,
        model_us,
        if model_us > 0.0 {
            100.0 * cache_us / model_us
        } else {
            0.0
        }
    );

    let setup = [
        ("scale", scale),
        ("queries", queries as f64),
        ("repeats", repeats as f64),
        ("clients", clients as f64),
        ("workers", workers as f64),
        ("seed", seed as f64),
    ];
    let json = render_json(&setup, &modes, &cached_metrics);
    std::fs::write(&out_path, json)
        .map_err(|e| MtmlfError::Service(format!("writing {out_path}: {e}")))?;
    println!("wrote {out_path}");
    Ok(())
}

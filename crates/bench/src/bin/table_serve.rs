//! Serving throughput: sequential per-query planning vs the
//! [`PlannerService`] in four configurations — worker pool only, pool +
//! cross-query batching, pool + batching + plan cache, and fully degraded
//! serving (model rejects everything, classical fallback carries the load).
//!
//! Reports queries/second per mode, the warm-cache vs model-path latency
//! split, and the resilience counters (fallbacks, sheds, timeouts) from a
//! deliberate deadline/overload probe, and writes the raw numbers to
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table_serve -- \
//!     [--scale 0.03] [--queries 24] [--repeats 4] [--clients 8] \
//!     [--workers 2] [--seed 1] [--out BENCH_serve.json]
//! ```

use mtmlf::serve::{PlanRequest, PlannerService, ServiceConfig, ServiceMetrics};
use mtmlf::{FallbackPlanner, MtmlfError};
use mtmlf_bench::serve::{build, build_with, drive_clients, ServeExperiment};
use mtmlf_bench::{report, Args};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ModeResult {
    name: &'static str,
    elapsed_s: f64,
    qps: f64,
    metrics: Option<ServiceMetrics>,
}

fn run_mode(
    name: &'static str,
    exp: &ServeExperiment,
    config: ServiceConfig,
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<ModeResult> {
    let service = PlannerService::start(Arc::clone(&exp.model), config)?;
    let (elapsed_s, served) = drive_clients(&service, &exp.queries, repeats, clients)?;
    Ok(ModeResult {
        name,
        elapsed_s,
        qps: served as f64 / elapsed_s,
        metrics: Some(service.metrics()),
    })
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    args: &[(&str, f64)],
    modes: &[ModeResult],
    cached: &ServiceMetrics,
    degraded: &ServiceMetrics,
    probe: &ServiceMetrics,
) -> String {
    let mut out = String::from("{\n  \"table\": \"serve\",\n  \"setup\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", json_escape(k)));
    }
    out.push_str("},\n  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"elapsed_s\": {:.6}, \"qps\": {:.3}",
            json_escape(m.name),
            m.elapsed_s,
            m.qps
        ));
        if let Some(metrics) = &m.metrics {
            out.push_str(&format!(
                ", \"cache_hits\": {}, \"model_plans\": {}, \"fallbacks\": {}, \
                 \"batches\": {}, \"batched_queries\": {}",
                metrics.cache_hits,
                metrics.model_plans,
                metrics.fallbacks,
                metrics.batches,
                metrics.batched_queries
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    let model_mean = cached.model_latency.mean().as_secs_f64();
    let cache_mean = cached.cache_latency.mean().as_secs_f64();
    let p99_model = cached.model_latency.quantile(0.99).as_secs_f64();
    let p99_cache = cached.cache_latency.quantile(0.99).as_secs_f64();
    out.push_str(&format!(
        "  ],\n  \"latency\": {{\"model_mean_us\": {:.3}, \"cache_mean_us\": {:.3}, \
         \"model_p99_us\": {:.3}, \"cache_p99_us\": {:.3}, \"cache_over_model\": {:.6}}},\n",
        model_mean * 1e6,
        cache_mean * 1e6,
        p99_model * 1e6,
        p99_cache * 1e6,
        if model_mean > 0.0 {
            cache_mean / model_mean
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"hit_rate\": {:.4}}},\n",
        cached.cache_hits,
        cached.cache_hit_rate()
    ));
    out.push_str(&format!(
        "  \"resilience\": {{\"fallbacks\": {}, \"fallback_mean_us\": {:.3}, \
         \"sheds\": {}, \"timeouts\": {}, \"expired\": {}, \"retries\": {}, \
         \"breaker_opens\": {}}}\n}}\n",
        degraded.fallbacks,
        degraded.fallback_latency.mean().as_secs_f64() * 1e6,
        probe.sheds,
        probe.timeouts,
        probe.expired,
        degraded.retries + probe.retries,
        degraded.breaker_opens + probe.breaker_opens,
    ));
    out
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.03);
    let queries = args.usize("queries", 24);
    let repeats = args.usize("repeats", 4);
    let clients = args.usize("clients", 8);
    let workers = args.usize("workers", 2);
    let seed = args.u64("seed", 1);
    let out_path = args.str("out", "BENCH_serve.json");
    println!("# Serving throughput — sequential vs PlannerService");
    println!(
        "# scale {scale}, {queries} queries x {repeats} repeats, \
         {clients} clients, {workers} workers, seed {seed}"
    );

    let exp = build(scale, queries, seed)?;
    let total = exp.queries.len() * repeats;

    // Baseline: the pre-existing one-query-at-a-time public API.
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in &exp.queries {
            exp.model.plan_with_estimates(q)?;
        }
    }
    let seq_s = t0.elapsed().as_secs_f64();
    let mut modes = vec![ModeResult {
        name: "sequential",
        elapsed_s: seq_s,
        qps: total as f64 / seq_s,
        metrics: None,
    }];

    modes.push(run_mode(
        "pooled",
        &exp,
        ServiceConfig {
            workers,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);
    modes.push(run_mode(
        "pooled+batched",
        &exp,
        ServiceConfig {
            workers,
            batching: true,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);
    modes.push(run_mode(
        "pooled+batched+cache",
        &exp,
        ServiceConfig {
            workers,
            batching: true,
            ..ServiceConfig::default()
        },
        repeats,
        clients,
    )?);

    // Degraded serving: a model whose serializer admits fewer tables than
    // any workload query, so every request falls through to the classical
    // fallback planner — the floor the service keeps when the model path
    // is entirely unavailable.
    let degraded_exp = build_with(scale, queries, seed, 2)?;
    let degraded_service = PlannerService::start_with_fallback(
        Arc::clone(&degraded_exp.model),
        Some(FallbackPlanner::new(Arc::clone(&degraded_exp.db))),
        ServiceConfig {
            workers,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    )?;
    let (fb_elapsed, fb_served) =
        drive_clients(&degraded_service, &degraded_exp.queries, repeats, clients)?;
    let degraded_metrics = degraded_service.metrics();
    drop(degraded_service);
    modes.push(ModeResult {
        name: "fallback-only",
        elapsed_s: fb_elapsed,
        qps: fb_served as f64 / fb_elapsed,
        metrics: Some(degraded_metrics.clone()),
    });

    let baseline = modes[0].qps;
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:.2}", m.elapsed_s),
                format!("{:.1}", m.qps),
                format!("{:.2}x", m.qps / baseline),
                m.metrics
                    .as_ref()
                    .map(|s| s.cache_hits.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!();
    print!(
        "{}",
        report::render_table(
            &["Mode", "Elapsed (s)", "QPS", "Speedup", "Cache hits"],
            &rows
        )
    );

    let cached_metrics = modes
        .iter()
        .find(|m| m.name == "pooled+batched+cache")
        .and_then(|m| m.metrics.clone())
        .ok_or_else(|| MtmlfError::Service("cached mode produced no metrics".into()))?;
    let model_us = cached_metrics.model_latency.mean().as_secs_f64() * 1e6;
    let cache_us = cached_metrics.cache_latency.mean().as_secs_f64() * 1e6;
    println!();
    println!(
        "warm-cache latency {:.1}us vs model-path {:.1}us ({:.2}% of model path)",
        cache_us,
        model_us,
        if model_us > 0.0 {
            100.0 * cache_us / model_us
        } else {
            0.0
        }
    );

    // Deadline/overload probe: one worker, a queue of one, and a burst of
    // zero-deadline requests. The first request occupies the worker, one
    // sits in the queue, the rest shed at admission; every admitted
    // request's deadline has already expired, so the client side reports
    // timeouts and the worker drops the queued job before the forward.
    let probe_service = PlannerService::start(
        Arc::clone(&exp.model),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    )?;
    for q in exp.queries.iter().cycle().take(16) {
        match probe_service.plan(PlanRequest::new(q.clone()).with_deadline(Duration::ZERO)) {
            Ok(_) | Err(MtmlfError::Timeout) | Err(MtmlfError::Overloaded) => {}
            Err(other) => return Err(other),
        }
    }
    probe_service.shutdown(); // drain so expired jobs are counted
    let probe_metrics = probe_service.metrics();
    println!();
    println!(
        "degraded serving {:.1} qps (all {} requests via fallback); \
         probe: {} sheds, {} timeouts, {} expired jobs dropped pre-forward",
        modes.last().map(|m| m.qps).unwrap_or(0.0),
        degraded_metrics.fallbacks,
        probe_metrics.sheds,
        probe_metrics.timeouts,
        probe_metrics.expired,
    );

    let setup = [
        ("scale", scale),
        ("queries", queries as f64),
        ("repeats", repeats as f64),
        ("clients", clients as f64),
        ("workers", workers as f64),
        ("seed", seed as f64),
    ];
    let json = render_json(&setup, &modes, &cached_metrics, &degraded_metrics, &probe_metrics);
    std::fs::write(&out_path, json)
        .map_err(|e| MtmlfError::Service(format!("writing {out_path}: {e}")))?;
    println!("wrote {out_path}");
    Ok(())
}

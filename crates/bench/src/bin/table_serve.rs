//! Serving throughput: sequential per-query planning vs the
//! [`PlannerService`] in four configurations — worker pool only, pool +
//! cross-query batching, pool + batching + plan cache, and fully degraded
//! serving (model rejects everything, classical fallback carries the load).
//!
//! Reports queries/second per mode, the warm-cache vs model-path latency
//! split, the resilience counters (fallbacks, sheds, timeouts) from a
//! deliberate deadline/overload probe, and the observability numbers: the
//! cost of plan-lifecycle tracing (a traced re-run of the cached mode vs
//! two untraced runs, so the overhead is read against run-to-run noise),
//! per-stage latency histograms, op-level FLOP/allocation counts from the
//! sequential baseline, and a Prometheus exposition round-tripped through
//! a real `GET /metrics` scrape. Raw numbers go to `BENCH_serve.json`.
//!
//! A cluster-scaling section drives the same client harness through a
//! `ClusterService` of 1, 2, and 4 simulated replicas (fixed model-path
//! service time, private caches, consistent-hash routing) on an
//! all-distinct-fingerprint workload — pure cache misses, so throughput
//! scaling is limited only by the router's key split. `--cluster` runs
//! just that section.
//!
//! A model-lifecycle section measures hot swap under load: clients hammer
//! the service while a swapper thread cycles swap → rollback, timing each
//! `swap_model` call, then a staged canary takes half the batches until a
//! clean window promotes it. The `"lifecycle"` block records swap latency,
//! requests served during the storm, and the canary window.
//!
//! A durability section runs the cached mode against a persistent plan
//! cache, restarts the service, and re-drives the workload from the
//! recovered cache: the `"durability"` block records cold vs warm-start
//! QPS, the recovery time, and the hit-rate restoration (the run *fails*
//! under 90%). Its spill probe re-executes model-chosen plans with every
//! column spilled behind a deliberately undersized buffer pool and errors
//! unless the outcomes are bitwise-equal to the in-RAM run.
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table_serve -- \
//!     [--scale 0.03] [--queries 24] [--repeats 4] [--clients 8] \
//!     [--workers 2] [--seed 1] [--out BENCH_serve.json] \
//!     [--cluster] [--cluster-queries 128] [--cluster-service-us 1500] \
//!     [--cluster-clients 16]
//! ```

use mtmlf::serve::{PlanRequest, PlannerService, ServiceConfig};
use mtmlf::trace::{Stage, TraceConfig};
use mtmlf::{
    CanaryPolicy, CanaryVerdict, FallbackPlanner, MetricsSnapshot, ModelVersion, MtmlfError,
    MtmlfQo, SwapOutcome,
};
use mtmlf_bench::serve::{
    build, build_with, cluster_workload, drive_clients, drive_plan_clients, sim_cluster,
    ServeExperiment,
};
use mtmlf_bench::{http, report, Args};
use mtmlf_datagen::{imdb::ImdbScale, imdb_lite};
use mtmlf_exec::{ExecOutcome, Executor};
use mtmlf_nn::{OpStats, ProfileGuard};
use mtmlf_query::JoinOrder;
use mtmlf_storage::{BufferPool, BufferPoolConfig, Database};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ModeResult {
    name: &'static str,
    elapsed_s: f64,
    qps: f64,
    metrics: Option<MetricsSnapshot>,
}

/// Everything the observability section of the report needs.
struct Observability {
    /// Snapshot of the traced cached-mode run (stage histograms, traces).
    traced: MetricsSnapshot,
    /// Snapshot of the traced degraded run (real `fallback` stage samples).
    traced_degraded: MetricsSnapshot,
    /// Traced cached-mode re-run vs the untraced run, percent slower.
    overhead_pct: f64,
    /// Spread between the two untraced runs, percent — the noise floor the
    /// overhead number must be read against.
    noise_pct: f64,
    /// Op counts from profiling the sequential baseline.
    ops: OpStats,
    /// The exposition actually served over HTTP, byte-for-byte.
    prometheus: String,
}

fn run_mode(
    name: &'static str,
    exp: &ServeExperiment,
    config: ServiceConfig,
    tracing: Option<TraceConfig>,
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<ModeResult> {
    let mut builder = PlannerService::builder(Arc::clone(&exp.model)).config(config);
    if let Some(t) = tracing {
        builder = builder.tracing(t);
    }
    let service = builder.start()?;
    let (elapsed_s, served) = drive_clients(&service, &exp.queries, repeats, clients)?;
    Ok(ModeResult {
        name,
        elapsed_s,
        qps: served as f64 / elapsed_s,
        metrics: Some(service.metrics()),
    })
}

struct ClusterSizeResult {
    replicas: usize,
    elapsed_s: f64,
    qps: f64,
    /// Largest single-replica share of routed requests — how uneven the
    /// key split was, the ceiling on achievable speedup.
    max_share: f64,
}

/// Drives the all-miss workload through simulated clusters of each size
/// with the same client harness the single-node modes use.
fn run_cluster_scaling(
    sizes: &[usize],
    query_count: usize,
    service_us: u64,
    clients: usize,
) -> mtmlf::Result<Vec<ClusterSizeResult>> {
    let queries = cluster_workload(query_count)?;
    let mut out = Vec::new();
    for &n in sizes {
        let (cluster, _sims) = sim_cluster(n, Duration::from_micros(service_us))?;
        let (elapsed_s, served) = drive_plan_clients(&cluster, &queries, 1, clients)?;
        let snapshot = cluster.metrics();
        let routed_max = snapshot.replicas.iter().map(|r| r.routed).max().unwrap_or(0);
        out.push(ClusterSizeResult {
            replicas: n,
            elapsed_s,
            qps: served as f64 / elapsed_s,
            max_share: routed_max as f64 / served.max(1) as f64,
        });
    }
    Ok(out)
}

/// The `"cluster"` JSON object (no trailing comma or newline).
fn cluster_json(
    sizes: &[ClusterSizeResult],
    query_count: usize,
    clients: usize,
    service_us: u64,
) -> String {
    let base = sizes.first().map(|c| c.qps).unwrap_or(0.0);
    let mut out = format!(
        "\"cluster\": {{\"queries\": {query_count}, \"clients\": {clients}, \
         \"service_time_us\": {service_us}, \"sizes\": [\n"
    );
    for (i, c) in sizes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replicas\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.3}, \
             \"speedup_vs_single\": {:.4}, \"max_key_share\": {:.4}}}{}",
            c.replicas,
            c.elapsed_s,
            c.qps,
            if base > 0.0 { c.qps / base } else { 0.0 },
            c.max_share,
            if i + 1 < sizes.len() { ",\n" } else { "\n" }
        ));
    }
    out.push_str("  ]}");
    out
}

fn print_cluster_table(sizes: &[ClusterSizeResult]) {
    let base = sizes.first().map(|c| c.qps).unwrap_or(0.0);
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|c| {
            vec![
                c.replicas.to_string(),
                format!("{:.3}", c.elapsed_s),
                format!("{:.1}", c.qps),
                format!("{:.2}x", if base > 0.0 { c.qps / base } else { 0.0 }),
                format!("{:.0}%", 100.0 * c.max_share),
            ]
        })
        .collect();
    println!();
    println!("# Cluster scaling — all-miss workload, consistent-hash router");
    print!(
        "{}",
        report::render_table(
            &["Replicas", "Elapsed (s)", "QPS", "Speedup", "Max key share"],
            &rows
        )
    );
}

struct LifecycleResult {
    /// Completed swap → rollback cycles during the storm.
    swaps: u64,
    rollbacks: u64,
    swap_mean_us: f64,
    swap_max_us: f64,
    /// Requests the service answered while the swapper was cycling.
    requests_during_swaps: u64,
    elapsed_s: f64,
    qps: f64,
    canary_window: u64,
    canary_requests: u64,
    canary_fraction_permille: u16,
    canary_verdict: String,
    final_version: u64,
}

/// Hot swap under load, measured with the same client harness as the
/// serving modes: `clients` threads drive the workload `repeats` times
/// while a swapper thread cycles `swap_model` → `rollback_model`, timing
/// each swap call. The cache is off so every request crosses the model
/// slot the swapper is exchanging — the worst case for swap interference.
/// Afterwards a canary run stages the candidate on half the batches until
/// a clean window promotes it.
fn run_lifecycle(
    exp: &ServeExperiment,
    candidate: &Arc<MtmlfQo>,
    workers: usize,
    repeats: usize,
    clients: usize,
) -> mtmlf::Result<LifecycleResult> {
    let service = PlannerService::builder(Arc::clone(&exp.model))
        .config(ServiceConfig {
            workers,
            batching: true,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .model_version(ModelVersion(1))
        .start()?;

    let clients = clients.max(1);
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    let (served, swap_latencies_us) =
        std::thread::scope(|scope| -> mtmlf::Result<(usize, Vec<f64>)> {
            let swapper = {
                let service = &service;
                let done = &done;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        let t = Instant::now();
                        let outcome =
                            service.swap_model(Arc::clone(candidate), ModelVersion(2));
                        latencies.push(t.elapsed().as_secs_f64() * 1e6);
                        if matches!(outcome, SwapOutcome::Swapped { .. }) {
                            let _ = service.rollback_model();
                        }
                        // Let a few batches land on each version between cycles.
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    latencies
                })
            };
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let service = &service;
                    let queries = &exp.queries;
                    scope.spawn(move || -> mtmlf::Result<usize> {
                        let mut served = 0;
                        for r in 0..repeats {
                            for q in queries.iter().skip((c + r) % clients).step_by(clients) {
                                service.plan(PlanRequest::new(q.clone()))?;
                                served += 1;
                            }
                        }
                        Ok(served)
                    })
                })
                .collect();
            let mut served = 0;
            for h in handles {
                served += h.join().unwrap_or_else(|_| {
                    Err(MtmlfError::Service("lifecycle client panicked".into()))
                })?;
            }
            done.store(true, Ordering::Release);
            let latencies = swapper.join().unwrap_or_default();
            Ok((served, latencies))
        })?;
    let elapsed_s = t0.elapsed().as_secs_f64();
    let storm = service.metrics();
    let swap_mean_us = if swap_latencies_us.is_empty() {
        0.0
    } else {
        swap_latencies_us.iter().sum::<f64>() / swap_latencies_us.len() as f64
    };
    let swap_max_us = swap_latencies_us.iter().copied().fold(0.0_f64, f64::max);

    // Canary: the candidate takes ~half the batches; a clean window of
    // `min_window` canary batches promotes it to the active slot.
    let policy = CanaryPolicy {
        min_window: 16,
        max_failure_rate: 0.05,
    };
    service.begin_canary(Arc::clone(candidate), ModelVersion(2), 500);
    let mut verdict = CanaryVerdict::Pending;
    'drive: for _ in 0..64 {
        for q in &exp.queries {
            service.plan(PlanRequest::new(q.clone()))?;
            verdict = service.resolve_canary(&policy);
            if verdict != CanaryVerdict::Pending {
                break 'drive;
            }
        }
    }
    let final_metrics = service.metrics();
    let verdict_text = match verdict {
        CanaryVerdict::Promoted(v) => format!("promoted v{}", v.0),
        CanaryVerdict::RolledBack(v) => format!("rolled back v{}", v.0),
        CanaryVerdict::Pending => "pending".into(),
    };
    Ok(LifecycleResult {
        swaps: storm.swaps,
        rollbacks: storm.rollbacks,
        swap_mean_us,
        swap_max_us,
        requests_during_swaps: served as u64,
        elapsed_s,
        qps: served as f64 / elapsed_s,
        canary_window: policy.min_window,
        canary_requests: final_metrics.canary_requests,
        canary_fraction_permille: 500,
        canary_verdict: verdict_text,
        final_version: service.model_version().0,
    })
}

struct DurabilityResult {
    cold_elapsed_s: f64,
    cold_qps: f64,
    cold_hit_rate: f64,
    /// Wall time of the warm reboot: log replay + service start.
    recovery_s: f64,
    warm_start_entries: u64,
    warm_elapsed_s: f64,
    warm_qps: f64,
    warm_hit_rate: f64,
    /// Warm-run hit rate over cold-run hit rate; the durability contract
    /// is ≥ 0.9 (the restarted cache serves at least 90% as well).
    hit_rate_restored: f64,
    log_bytes: u64,
    log_compactions: u64,
    spill: SpillProbe,
}

struct SpillProbe {
    /// Columns across all tables — all spilled to disk for the probe.
    columns: usize,
    /// Buffer-pool frames: half the database's columns, so the workload
    /// can never be fully resident and the replacer must churn, while any
    /// single operator's pinned working set (join keys, filter columns)
    /// still fits.
    frame_budget: usize,
    spilled_frames: u64,
    frame_loads: u64,
    evictions: u64,
    queries_executed: usize,
}

/// The same serving workload through a durably-cached service, twice: a
/// cold run on a fresh directory, then a shutdown and a rebooted run on
/// the recovered cache. The reboot's first pass must hit where the cold
/// run's first pass missed, so the warm hit rate strictly dominates —
/// anything under 90% restoration is a durability bug and fails the bench.
fn run_durability(
    exp: &ServeExperiment,
    workers: usize,
    repeats: usize,
    clients: usize,
    scale: f64,
    seed: u64,
) -> mtmlf::Result<DurabilityResult> {
    let dir = std::env::temp_dir().join(format!("mtmlf_bench_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServiceConfig {
        workers,
        batching: true,
        ..ServiceConfig::default()
    };

    let cold_service = PlannerService::builder(Arc::clone(&exp.model))
        .config(config())
        .durable(&dir)
        .start()?;
    let (cold_elapsed_s, cold_served) = drive_clients(&cold_service, &exp.queries, repeats, clients)?;
    let cold = cold_service.metrics();
    cold_service.shutdown();

    let t = Instant::now();
    let warm_service = PlannerService::builder(Arc::clone(&exp.model))
        .config(config())
        .durable(&dir)
        .start()?;
    let recovery_s = t.elapsed().as_secs_f64();
    let warm_start_entries = warm_service.metrics().warm_start_entries;
    let (warm_elapsed_s, warm_served) = drive_clients(&warm_service, &exp.queries, repeats, clients)?;
    let warm = warm_service.metrics();
    let log_bytes = warm_service.plan_store().log_bytes();
    warm_service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let cold_hit_rate = cold.cache_hit_rate();
    let warm_hit_rate = warm.cache_hit_rate();
    let hit_rate_restored = if cold_hit_rate > 0.0 {
        warm_hit_rate / cold_hit_rate
    } else {
        0.0
    };
    if hit_rate_restored < 0.9 {
        return Err(MtmlfError::Service(format!(
            "warm start restored only {:.1}% of the cold-run cache hit rate \
             ({warm_hit_rate:.4} vs {cold_hit_rate:.4})",
            100.0 * hit_rate_restored
        )));
    }

    Ok(DurabilityResult {
        cold_elapsed_s,
        cold_qps: cold_served as f64 / cold_elapsed_s,
        cold_hit_rate,
        recovery_s,
        warm_start_entries,
        warm_elapsed_s,
        warm_qps: warm_served as f64 / warm_elapsed_s,
        warm_hit_rate,
        hit_rate_restored,
        log_bytes,
        log_compactions: warm.log_compactions,
        spill: run_spill_probe(exp, scale, seed)?,
    })
}

/// Memory-bounded storage probe: executes model-chosen plans over the same
/// deterministic database twice — fully resident, then with every column
/// spilled behind a buffer pool too small to hold the workload — and demands
/// bitwise-identical [`ExecOutcome`]s. Errors (rather than records) on any
/// divergence: a spill that changes results is corruption, not a tradeoff.
fn run_spill_probe(exp: &ServeExperiment, scale: f64, seed: u64) -> mtmlf::Result<SpillProbe> {
    // `imdb_lite` is deterministic in (seed, scale): both copies hold
    // identical bytes, matching the database `exp.model` was built on.
    let build_db = || -> mtmlf::Result<Database> {
        let mut db = imdb_lite(seed, ImdbScale { scale })?;
        db.analyze_all(8, 4);
        Ok(db)
    };
    let resident = build_db()?;
    let mut spilled = build_db()?;

    let orders: Vec<(&mtmlf::prelude::Query, JoinOrder)> = exp
        .queries
        .iter()
        .take(8)
        .map(|q| Ok((q, exp.model.plan_with_estimates(q)?.0)))
        .collect::<mtmlf::Result<_>>()?;

    // Joins pin two key columns per predicate for the join's duration, so
    // the budget must cover one operator's working set; half the database
    // keeps it well clear of that while forcing evictions across queries.
    let widest = spilled.tables().map(|(_, t)| t.arity()).max().unwrap_or(1);
    let columns: usize = spilled.tables().map(|(_, t)| t.arity()).sum();
    let frame_budget = (columns / 2).max(widest + 1);
    let spill_dir =
        std::env::temp_dir().join(format!("mtmlf_bench_spill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let pool = BufferPool::new(BufferPoolConfig {
        frame_budget,
        dir: spill_dir.clone(),
    })?;
    let ids: Vec<_> = spilled.tables().map(|(id, _)| id).collect();
    for id in ids {
        spilled.table_mut(id)?.spill_to(&pool)?;
    }

    let baseline_exec = Executor::new(&resident);
    let spilled_exec = Executor::new(&spilled);
    for (query, order) in &orders {
        let want: ExecOutcome = baseline_exec.execute_order(query, order)?;
        let got: ExecOutcome = spilled_exec.execute_order(query, order)?;
        let bitwise = want.output_cardinality == got.output_cardinality
            && want.total_units.to_bits() == got.total_units.to_bits()
            && want.sim_minutes.to_bits() == got.sim_minutes.to_bits()
            && want.nodes == got.nodes;
        if !bitwise {
            return Err(MtmlfError::Service(
                "spilled execution diverged from the in-RAM run".into(),
            ));
        }
    }
    let probe = SpillProbe {
        columns,
        frame_budget,
        spilled_frames: pool.spilled_frames(),
        frame_loads: pool.frame_loads(),
        evictions: pool.evictions(),
        queries_executed: orders.len(),
    };
    drop(pool);
    let _ = std::fs::remove_dir_all(&spill_dir);
    Ok(probe)
}

/// The `"durability"` JSON object (no trailing comma or newline).
fn durability_json(d: &DurabilityResult) -> String {
    format!(
        "\"durability\": {{\"cold\": {{\"elapsed_s\": {:.6}, \"qps\": {:.3}, \
         \"hit_rate\": {:.4}}}, \"reboot\": {{\"recovery_s\": {:.6}, \
         \"warm_start_entries\": {}, \"elapsed_s\": {:.6}, \"qps\": {:.3}, \
         \"hit_rate\": {:.4}}}, \"hit_rate_restored\": {:.4}, \"log_bytes\": {}, \
         \"log_compactions\": {}, \"spill\": {{\"columns\": {}, \"frame_budget\": {}, \
         \"spilled_frames\": {}, \"frame_loads\": {}, \"evictions\": {}, \
         \"queries_executed\": {}, \"bitwise_equal\": true}}}}",
        d.cold_elapsed_s,
        d.cold_qps,
        d.cold_hit_rate,
        d.recovery_s,
        d.warm_start_entries,
        d.warm_elapsed_s,
        d.warm_qps,
        d.warm_hit_rate,
        d.hit_rate_restored,
        d.log_bytes,
        d.log_compactions,
        d.spill.columns,
        d.spill.frame_budget,
        d.spill.spilled_frames,
        d.spill.frame_loads,
        d.spill.evictions,
        d.spill.queries_executed,
    )
}

/// The `"lifecycle"` JSON object (no trailing comma or newline).
fn lifecycle_json(l: &LifecycleResult) -> String {
    format!(
        "\"lifecycle\": {{\"swaps\": {}, \"rollbacks\": {}, \"swap_mean_us\": {:.3}, \
         \"swap_max_us\": {:.3}, \"requests_during_swaps\": {}, \"elapsed_s\": {:.6}, \
         \"qps_during_swaps\": {:.3}, \"canary\": {{\"window\": {}, \"requests\": {}, \
         \"fraction_permille\": {}, \"verdict\": \"{}\"}}, \"final_version\": {}}}",
        l.swaps,
        l.rollbacks,
        l.swap_mean_us,
        l.swap_max_us,
        l.requests_during_swaps,
        l.elapsed_s,
        l.qps,
        l.canary_window,
        l.canary_requests,
        l.canary_fraction_permille,
        json_escape(&l.canary_verdict),
        l.final_version,
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
        .replace('\t', "\\t")
}

fn stage_json(snapshot: &MetricsSnapshot, stage: Stage) -> String {
    let h = snapshot.stage(stage);
    format!(
        "\"{}\": {{\"count\": {}, \"mean_us\": {:.3}, \"p99_us\": {:.3}, \"max_us\": {:.3}}}",
        stage.name(),
        h.count,
        h.mean().as_secs_f64() * 1e6,
        h.quantile(0.99).as_secs_f64() * 1e6,
        Duration::from_nanos(h.max_nanos).as_secs_f64() * 1e6,
    )
}

fn render_json(
    args: &[(&str, f64)],
    modes: &[ModeResult],
    cached: &MetricsSnapshot,
    degraded: &MetricsSnapshot,
    probe: &MetricsSnapshot,
    cluster_block: &str,
    lifecycle_block: &str,
    durability_block: &str,
    obs: &Observability,
) -> String {
    let mut out = String::from("{\n  \"table\": \"serve\",\n  \"setup\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {v}", json_escape(k)));
    }
    out.push_str("},\n  \"modes\": [\n");
    for (i, m) in modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"elapsed_s\": {:.6}, \"qps\": {:.3}",
            json_escape(m.name),
            m.elapsed_s,
            m.qps
        ));
        if let Some(metrics) = &m.metrics {
            out.push_str(&format!(
                ", \"cache_hits\": {}, \"model_plans\": {}, \"fallbacks\": {}, \
                 \"batches\": {}, \"batched_queries\": {}",
                metrics.cache_hits,
                metrics.model_plans,
                metrics.fallbacks,
                metrics.batches,
                metrics.batched_queries
            ));
        }
        out.push('}');
        out.push_str(if i + 1 < modes.len() { ",\n" } else { "\n" });
    }
    let model_mean = cached.model_latency.mean().as_secs_f64();
    let cache_mean = cached.cache_latency.mean().as_secs_f64();
    let p99_model = cached.model_latency.quantile(0.99).as_secs_f64();
    let p99_cache = cached.cache_latency.quantile(0.99).as_secs_f64();
    out.push_str(&format!(
        "  ],\n  \"latency\": {{\"model_mean_us\": {:.3}, \"cache_mean_us\": {:.3}, \
         \"model_p99_us\": {:.3}, \"cache_p99_us\": {:.3}, \"cache_over_model\": {:.6}}},\n",
        model_mean * 1e6,
        cache_mean * 1e6,
        p99_model * 1e6,
        p99_cache * 1e6,
        if model_mean > 0.0 {
            cache_mean / model_mean
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"hit_rate\": {:.4}}},\n",
        cached.cache_hits,
        cached.cache_hit_rate()
    ));
    out.push_str(&format!(
        "  \"resilience\": {{\"fallbacks\": {}, \"fallback_mean_us\": {:.3}, \
         \"sheds\": {}, \"timeouts\": {}, \"expired\": {}, \"retries\": {}, \
         \"breaker_opens\": {}}},\n",
        degraded.fallbacks,
        degraded.fallback_latency.mean().as_secs_f64() * 1e6,
        probe.sheds,
        probe.timeouts,
        probe.expired,
        degraded.retries + probe.retries,
        degraded.breaker_opens + probe.breaker_opens,
    ));
    out.push_str(&format!("  {cluster_block},\n"));
    out.push_str(&format!("  {lifecycle_block},\n"));
    out.push_str(&format!("  {durability_block},\n"));

    // Model-path stage histograms come from the traced cached-mode run;
    // the fallback stage comes from the traced degraded run, which is the
    // only configuration that exercises it.
    out.push_str("  \"observability\": {\n    \"stages\": {");
    let model_path_stages = [
        Stage::Fingerprint,
        Stage::CacheLookup,
        Stage::Queue,
        Stage::Featurize,
        Stage::Encode,
        Stage::Forward,
        Stage::Beam,
        Stage::Retry,
    ];
    for (i, stage) in model_path_stages.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&stage_json(&obs.traced, *stage));
    }
    out.push_str(", ");
    out.push_str(&stage_json(&obs.traced_degraded, Stage::Fallback));
    out.push_str("},\n");
    out.push_str(&format!(
        "    \"tracing_overhead_pct\": {:.3},\n    \"tracing_noise_pct\": {:.3},\n    \
         \"traces\": {},\n",
        obs.overhead_pct,
        obs.noise_pct,
        obs.traced.traces + obs.traced_degraded.traces,
    ));
    out.push_str(&format!(
        "    \"sequential_ops\": {{\"matmul_calls\": {}, \"matmul_flops\": {}, \
         \"attention_calls\": {}, \"block_forwards\": {}, \"allocations\": {}, \
         \"allocated_floats\": {}}},\n",
        obs.ops.matmul_calls,
        obs.ops.matmul_flops,
        obs.ops.attention_calls,
        obs.ops.block_forwards,
        obs.ops.allocations,
        obs.ops.allocated_floats,
    ));
    out.push_str(&format!(
        "    \"prometheus\": \"{}\"\n  }}\n}}\n",
        json_escape(&obs.prometheus)
    ));
    out
}

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.03);
    let queries = args.usize("queries", 24);
    let repeats = args.usize("repeats", 4);
    let clients = args.usize("clients", 8);
    let workers = args.usize("workers", 2);
    let seed = args.u64("seed", 1);
    let out_path = args.str("out", "BENCH_serve.json");
    let cluster_queries = args.usize("cluster-queries", 128);
    let cluster_service_us = args.u64("cluster-service-us", 1500);
    // More clients than the single-node modes: with 4 replicas each
    // serializing its model path, fewer than ~4 waiting clients per
    // replica starves the tail of the run and understates scaling.
    let cluster_clients = args.usize("cluster-clients", 16);
    const CLUSTER_SIZES: [usize; 3] = [1, 2, 4];

    if args.flag("cluster") {
        // Cluster-only mode: just the replica-scaling experiment.
        println!("# Cluster serving throughput — simulated replicas");
        println!(
            "# {cluster_queries} distinct-fingerprint queries, {cluster_clients} clients, \
             {cluster_service_us}us model path per plan"
        );
        let scaling = run_cluster_scaling(
            &CLUSTER_SIZES,
            cluster_queries,
            cluster_service_us,
            cluster_clients,
        )?;
        print_cluster_table(&scaling);
        let base = scaling.first().map(|c| c.qps).unwrap_or(0.0);
        if let Some(two) = scaling.iter().find(|c| c.replicas == 2) {
            println!();
            println!(
                "2-replica speedup on the all-miss workload: {:.2}x",
                if base > 0.0 { two.qps / base } else { 0.0 }
            );
        }
        let json = format!(
            "{{\n  \"table\": \"serve-cluster\",\n  \"setup\": {{\"clients\": {cluster_clients}}},\n  {}\n}}\n",
            cluster_json(&scaling, cluster_queries, cluster_clients, cluster_service_us)
        );
        std::fs::write(&out_path, json)
            .map_err(|e| MtmlfError::Service(format!("writing {out_path}: {e}")))?;
        println!("wrote {out_path}");
        return Ok(());
    }

    println!("# Serving throughput — sequential vs PlannerService");
    println!(
        "# scale {scale}, {queries} queries x {repeats} repeats, \
         {clients} clients, {workers} workers, seed {seed}"
    );

    let exp = build(scale, queries, seed)?;
    let total = exp.queries.len() * repeats;

    // Baseline: the pre-existing one-query-at-a-time public API, with op
    // profiling counting the tensor work behind it.
    let profile = ProfileGuard::begin();
    let t0 = Instant::now();
    for _ in 0..repeats {
        for q in &exp.queries {
            exp.model.plan_with_estimates(q)?;
        }
    }
    let seq_s = t0.elapsed().as_secs_f64();
    let sequential_ops = profile.stats();
    drop(profile);
    let mut modes = vec![ModeResult {
        name: "sequential",
        elapsed_s: seq_s,
        qps: total as f64 / seq_s,
        metrics: None,
    }];

    modes.push(run_mode(
        "pooled",
        &exp,
        ServiceConfig {
            workers,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        None,
        repeats,
        clients,
    )?);
    modes.push(run_mode(
        "pooled+batched",
        &exp,
        ServiceConfig {
            workers,
            batching: true,
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
        None,
        repeats,
        clients,
    )?);

    // The cached mode runs three times: twice untraced — the pair bounds
    // run-to-run noise — and once traced, so the tracing overhead has a
    // noise floor to be read against.
    let cached_config = || ServiceConfig {
        workers,
        batching: true,
        ..ServiceConfig::default()
    };
    let untraced_a = run_mode(
        "pooled+batched+cache",
        &exp,
        cached_config(),
        None,
        repeats,
        clients,
    )?;
    let untraced_b = run_mode(
        "pooled+batched+cache",
        &exp,
        cached_config(),
        None,
        repeats,
        clients,
    )?;
    let traced = run_mode(
        "pooled+batched+cache+traced",
        &exp,
        cached_config(),
        Some(TraceConfig::default()),
        repeats,
        clients,
    )?;
    let noise_pct = 100.0 * (untraced_a.elapsed_s - untraced_b.elapsed_s).abs()
        / untraced_b.elapsed_s.max(f64::EPSILON);
    let overhead_pct = 100.0 * (traced.elapsed_s - untraced_b.elapsed_s)
        / untraced_b.elapsed_s.max(f64::EPSILON);
    let traced_snapshot = traced
        .metrics
        .clone()
        .ok_or_else(|| MtmlfError::Service("traced mode produced no metrics".into()))?;
    modes.push(untraced_b);
    modes.push(traced);

    // Degraded serving: a model whose serializer admits fewer tables than
    // any workload query, so every request falls through to the classical
    // fallback planner — the floor the service keeps when the model path
    // is entirely unavailable. Traced, so the fallback stage histogram has
    // real samples.
    let degraded_exp = build_with(scale, queries, seed, 2)?;
    let degraded_service = PlannerService::builder(Arc::clone(&degraded_exp.model))
        .config(ServiceConfig {
            workers,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .fallback(FallbackPlanner::new(Arc::clone(&degraded_exp.db)))
        .tracing(TraceConfig::default())
        .start()?;
    let (fb_elapsed, fb_served) =
        drive_clients(&degraded_service, &degraded_exp.queries, repeats, clients)?;
    let degraded_metrics = degraded_service.metrics();
    drop(degraded_service);
    modes.push(ModeResult {
        name: "fallback-only",
        elapsed_s: fb_elapsed,
        qps: fb_served as f64 / fb_elapsed,
        metrics: Some(degraded_metrics.clone()),
    });

    let baseline = modes[0].qps;
    let rows: Vec<Vec<String>> = modes
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:.2}", m.elapsed_s),
                format!("{:.1}", m.qps),
                format!("{:.2}x", m.qps / baseline),
                m.metrics
                    .as_ref()
                    .map(|s| s.cache_hits.to_string())
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!();
    print!(
        "{}",
        report::render_table(
            &["Mode", "Elapsed (s)", "QPS", "Speedup", "Cache hits"],
            &rows
        )
    );

    let cached_metrics = modes
        .iter()
        .find(|m| m.name == "pooled+batched+cache")
        .and_then(|m| m.metrics.clone())
        .ok_or_else(|| MtmlfError::Service("cached mode produced no metrics".into()))?;
    let model_us = cached_metrics.model_latency.mean().as_secs_f64() * 1e6;
    let cache_us = cached_metrics.cache_latency.mean().as_secs_f64() * 1e6;
    println!();
    println!(
        "warm-cache latency {:.1}us vs model-path {:.1}us ({:.2}% of model path)",
        cache_us,
        model_us,
        if model_us > 0.0 {
            100.0 * cache_us / model_us
        } else {
            0.0
        }
    );
    println!(
        "tracing overhead {overhead_pct:+.2}% (run-to-run noise {noise_pct:.2}%), \
         {} traces recorded",
        traced_snapshot.traces
    );

    // The exposition the service renders is what a Prometheus server would
    // scrape; round-trip it through a real HTTP GET to prove the endpoint
    // serves it byte-for-byte.
    let rendered = mtmlf::render_prometheus(&traced_snapshot);
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| MtmlfError::Service(format!("binding scrape port: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| MtmlfError::Service(format!("local addr: {e}")))?;
    let scraped = std::thread::scope(|scope| -> mtmlf::Result<String> {
        let exposition = rendered.clone();
        scope.spawn(move || http::serve_metrics(&listener, || exposition.clone(), 1));
        http::scrape(addr).map_err(|e| MtmlfError::Service(format!("scraping {addr}: {e}")))
    })?;
    if scraped != rendered {
        return Err(MtmlfError::Service(
            "scraped exposition differs from rendered snapshot".into(),
        ));
    }
    println!(
        "scraped {} bytes of Prometheus exposition from http://{addr}/metrics",
        scraped.len()
    );

    // Deadline/overload probe: one worker, a queue of one, and a burst of
    // zero-deadline requests. The first request occupies the worker, one
    // sits in the queue, the rest shed at admission; every admitted
    // request's deadline has already expired, so the client side reports
    // timeouts and the worker drops the queued job before the forward.
    let probe_service = PlannerService::builder(Arc::clone(&exp.model))
        .config(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            batching: false,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .start()?;
    for q in exp.queries.iter().cycle().take(16) {
        match probe_service.plan(PlanRequest::new(q.clone()).with_deadline(Duration::ZERO)) {
            Ok(_) | Err(MtmlfError::Timeout) | Err(MtmlfError::Overloaded) => {}
            Err(other) => return Err(other),
        }
    }
    probe_service.shutdown(); // drain so expired jobs are counted
    let probe_metrics = probe_service.metrics();
    println!();
    println!(
        "degraded serving {:.1} qps (all {} requests via fallback); \
         probe: {} sheds, {} timeouts, {} expired jobs dropped pre-forward",
        modes.last().map(|m| m.qps).unwrap_or(0.0),
        degraded_metrics.fallbacks,
        probe_metrics.sheds,
        probe_metrics.timeouts,
        probe_metrics.expired,
    );

    // Cluster scaling: the same client harness over 1/2/4 simulated
    // replicas behind the consistent-hash router.
    let scaling = run_cluster_scaling(
        &CLUSTER_SIZES,
        cluster_queries,
        cluster_service_us,
        cluster_clients,
    )?;
    print_cluster_table(&scaling);
    let cluster_block = cluster_json(&scaling, cluster_queries, cluster_clients, cluster_service_us);

    // Model lifecycle: hot swap under load, then a canary promotion. The
    // candidate is an independently built model over the same schema —
    // different seed, so its weights (and plans) genuinely differ from
    // the live model's.
    let candidate = build(scale, queries, seed.wrapping_add(0x11))?.model;
    let lifecycle = run_lifecycle(&exp, &candidate, workers, repeats, clients)?;
    println!();
    println!("# Model lifecycle — hot swap under load, then canary");
    println!(
        "swap latency {:.1}us mean / {:.1}us max over {} swaps; \
         {} requests served during the storm at {:.1} qps, 0 dropped",
        lifecycle.swap_mean_us,
        lifecycle.swap_max_us,
        lifecycle.swaps,
        lifecycle.requests_during_swaps,
        lifecycle.qps,
    );
    println!(
        "canary at {}/1000 of batches: {} after {} canary requests \
         (window {}); active model v{}",
        lifecycle.canary_fraction_permille,
        lifecycle.canary_verdict,
        lifecycle.canary_requests,
        lifecycle.canary_window,
        lifecycle.final_version,
    );
    let lifecycle_block = lifecycle_json(&lifecycle);

    // Durability: cold vs warm-start serving over a persistent plan cache,
    // plus the memory-bounded storage probe (spilled execution must be
    // bitwise-equal to in-RAM or `run_durability` errors out).
    let durability = run_durability(&exp, workers, repeats, clients, scale, seed)?;
    println!();
    println!("# Durability — persistent plan cache across a restart");
    println!(
        "cold run {:.1} qps (hit rate {:.2}); reboot recovered {} plans in {:.1}ms; \
         warm run {:.1} qps (hit rate {:.2}, {:.0}% of cold restored)",
        durability.cold_qps,
        durability.cold_hit_rate,
        durability.warm_start_entries,
        durability.recovery_s * 1e3,
        durability.warm_qps,
        durability.warm_hit_rate,
        100.0 * durability.hit_rate_restored,
    );
    println!(
        "spill probe: {} columns behind {} frames — {} spills, {} loads, {} evictions; \
         {} plans executed bitwise-equal to in-RAM",
        durability.spill.columns,
        durability.spill.frame_budget,
        durability.spill.spilled_frames,
        durability.spill.frame_loads,
        durability.spill.evictions,
        durability.spill.queries_executed,
    );
    let durability_block = durability_json(&durability);

    let obs = Observability {
        traced: traced_snapshot,
        traced_degraded: degraded_metrics.clone(),
        overhead_pct,
        noise_pct,
        ops: sequential_ops,
        prometheus: scraped,
    };
    let setup = [
        ("scale", scale),
        ("queries", queries as f64),
        ("repeats", repeats as f64),
        ("clients", clients as f64),
        ("workers", workers as f64),
        ("seed", seed as f64),
    ];
    let json = render_json(
        &setup,
        &modes,
        &cached_metrics,
        &degraded_metrics,
        &probe_metrics,
        &cluster_block,
        &lifecycle_block,
        &durability_block,
        &obs,
    );
    std::fs::write(&out_path, json)
        .map_err(|e| MtmlfError::Service(format!("writing {out_path}: {e}")))?;
    println!("wrote {out_path}");
    Ok(())
}

//! Regenerates **Table 3** of the paper: cross-DB transferability of
//! MTMLF-QO trained via the meta-learning algorithm (MLA).
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin table3 -- \
//!     [--dbs 11] [--queries 60] [--test 40] [--max-tables 5] [--seed 3]
//! ```

use mtmlf::MtmlfConfig;
use mtmlf_bench::table3::{self, Table3Setup};
use mtmlf_bench::Args;
use std::time::Instant;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = Table3Setup {
        databases: args.usize("dbs", 11),
        queries_per_db: args.usize("queries", 100),
        test_db_train: args.usize("train-test-db", 300),
        test_db_test: args.usize("test", 40),
        min_tables: args.usize("min-tables", 4),
        max_tables: args.usize("max-tables", 6),
        seed: args.u64("seed", 3),
        ..Table3Setup::default()
    };
    let config = MtmlfConfig {
        max_query_tables: setup.max_tables.max(8),
        epochs: args.usize("epochs", 15),
        seed: setup.seed,
        ..MtmlfConfig::default()
    };
    println!("# Table 3 — Cross-DB transferability (MLA)");
    println!(
        "# setup: {} DBs x {} queries, test DB: {} train / {} test",
        setup.databases, setup.queries_per_db, setup.test_db_train, setup.test_db_test
    );
    let t0 = Instant::now();
    let result = table3::run(&setup, &config)?;
    println!(
        "# generated, pre-trained, transferred, evaluated in {:.1}s\n",
        t0.elapsed().as_secs_f64()
    );
    print!("{}", table3::render(&result));
    println!("\n# Paper reference: PostgreSQL 393.9 min; MTMLF-QO (MLA) 40.6% improvement;");
    println!("# MTMLF-QO (single, from scratch) 44.3% — MLA within a few points of single.");
    Ok(())
}

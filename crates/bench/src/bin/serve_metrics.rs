//! Stands up a traced [`PlannerService`] and exposes its Prometheus
//! metrics at `GET /metrics` — the end-to-end observability demo.
//!
//! Builds the serving workload, warms the service with one pass of the
//! query set, then serves scrapes until `--requests` connections have been
//! handled (bounded so the binary always terminates; point a browser or
//! `curl` at the printed address).
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin serve_metrics -- \
//!     [--scale 0.02] [--queries 12] [--seed 1] [--port 9184] [--requests 4]
//! ```

use mtmlf::prelude::*;
use mtmlf::FallbackPlanner;
use mtmlf_bench::serve::{build, drive_clients};
use mtmlf_bench::{http, Args};
use std::net::TcpListener;
use std::sync::Arc;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let scale = args.f64("scale", 0.02);
    let queries = args.usize("queries", 12);
    let seed = args.u64("seed", 1);
    let port = args.usize("port", 9184);
    let requests = args.usize("requests", 4);

    let exp = build(scale, queries, seed)?;
    let service = PlannerService::builder(Arc::clone(&exp.model))
        .config(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
        .fallback(FallbackPlanner::new(Arc::clone(&exp.db)))
        .tracing(TraceConfig::default())
        .start()?;

    // One warm pass so the scrape shows real traffic: cold model plans,
    // then warm cache hits.
    let (elapsed, served) = drive_clients(&service, &exp.queries, 2, 4)?;
    println!(
        "warmed: {served} requests in {elapsed:.2}s ({} cache hits, {} traces)",
        service.metrics().cache_hits,
        service.metrics().traces
    );

    let listener = TcpListener::bind(("127.0.0.1", port as u16))
        .map_err(|e| MtmlfError::Service(format!("binding port {port}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| MtmlfError::Service(format!("local addr: {e}")))?;
    println!("serving metrics at http://{addr}/metrics for {requests} scrape(s)");
    http::serve_metrics(&listener, || service.render_prometheus(), requests)
        .map_err(|e| MtmlfError::Service(format!("metrics endpoint: {e}")))?;
    service.shutdown();
    Ok(())
}

//! Ablation: beam width `k` vs join-order quality (paper Section 4.3).
//!
//! Sweeps the beam width of the legality-constrained search of a trained
//! MTMLF-QO and reports total simulated execution time, optimal-match
//! rate, and mean JOEU on the test set. With `--bushy`, additionally
//! compares the exact-optimal *bushy* plan space against left-deep
//! (Section 4.1's codec supports both).
//!
//! ```text
//! cargo run -p mtmlf-bench --release --bin ablation_beam -- \
//!     [--scale 0.06] [--train 200] [--test 60] [--max-beam 8] [--bushy]
//! ```

use mtmlf::{joeu, LossWeights, MtmlfConfig};
use mtmlf_bench::single_db::{SingleDbExperiment, SingleDbSetup};
use mtmlf_bench::{report, Args};
use mtmlf_exec::Executor;

fn main() -> mtmlf::Result<()> {
    let args = Args::parse();
    let setup = SingleDbSetup {
        scale: args.f64("scale", 0.06),
        train_queries: args.usize("train", 200),
        test_queries: args.usize("test", 60),
        min_tables: args.usize("min-tables", 3),
        max_tables: args.usize("max-tables", 6),
        epochs: args.usize("epochs", 12),
        seed: args.u64("seed", 1),
    };
    let max_beam = args.usize("max-beam", 8);
    println!("# Ablation — beam width sweep (legality-constrained decoding)");
    println!("# setup: {setup:?}");
    let exp = SingleDbExperiment::build(setup.clone())?;
    let featurizer = exp.fit_featurizer()?;
    let model = exp.train_variant(&featurizer, LossWeights::default())?;
    let exec = Executor::new(&exp.db);

    let mut rows = Vec::new();
    for k in 1..=max_beam {
        // Rebuild the model view with the new beam width (weights shared).
        let config = MtmlfConfig {
            beam: mtmlf::BeamConfig::new(k),
            ..exp.model_config(LossWeights::default())
        };
        let view = mtmlf::MtmlfQo::from_modules(
            featurizer.clone(),
            model.transferable_modules().0,
            model.transferable_modules().1,
            model.transferable_modules().2,
            config,
        );
        let mut total = 0.0;
        let mut matched = 0usize;
        let mut joeu_sum = 0.0;
        let mut n = 0usize;
        for l in &exp.test {
            let Some(optimal) = &l.optimal_order else {
                continue;
            };
            let order = view.predict_join_order(&l.query, &l.plan)?;
            order.validate(&l.query)?;
            total += exec.execute_order(&l.query, &order)?.sim_minutes;
            let opt_tables = optimal.tables();
            let got_tables = order.tables();
            if got_tables == opt_tables {
                matched += 1;
            }
            // JOEU over table-id sequences.
            let to_usize = |ts: &[mtmlf_storage::TableId]| -> Vec<usize> {
                ts.iter().map(|t| t.index()).collect()
            };
            joeu_sum += joeu(&to_usize(&got_tables), &to_usize(&opt_tables));
            n += 1;
        }
        rows.push(vec![
            format!("k={k}"),
            format!("{total:.2} min"),
            format!("{:.0}%", 100.0 * matched as f64 / n.max(1) as f64),
            format!("{:.2}", joeu_sum / n.max(1) as f64),
        ]);
    }
    println!();
    print!(
        "{}",
        report::render_table(&["Beam", "Total Time", "Optimal match", "Mean JOEU"], &rows)
    );

    if args.flag("bushy") {
        println!("\n# Bushy vs left-deep exact-optimal plan spaces:");
        let mut ld_total = 0.0;
        let mut bushy_total = 0.0;
        for l in &exp.test {
            let ld = mtmlf_optd::exact_optimal_order(&exp.db, &l.query)?;
            let bushy = mtmlf_optd::exact_optimal_bushy(&exp.db, &l.query)?;
            ld_total += exec
                .execute_plan(&l.query, &ld.order.to_plan()?)?
                .sim_minutes;
            bushy_total += exec
                .execute_plan(&l.query, &bushy.order.to_plan()?)?
                .sim_minutes;
        }
        println!("#   left-deep optimal: {ld_total:.2} min");
        println!(
            "#   bushy optimal:     {bushy_total:.2} min ({:.1}% better)",
            100.0 * (ld_total - bushy_total) / ld_total.max(1e-9)
        );
    }
    Ok(())
}

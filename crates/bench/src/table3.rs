//! Table 3 — cross-DB transferability (Section 6.3).
//!
//! Eleven databases come out of the Section 6.2 pipeline; the first ten
//! pre-train the (S)/(T) modules via MLA, the eleventh is the unseen test
//! database. Rows: PostgreSQL, MTMLF-QO (MLA, zero-shot transfer with only
//! the new featurizer fitted), MTMLF-QO (single, trained from scratch on
//! the test DB's training split).

use mtmlf::{MetaLearner, MtmlfConfig, MtmlfQo};
use mtmlf_datagen::{
    generate_database, generate_queries, label_workload, LabelConfig, LabeledQuery, PipelineConfig,
    WorkloadConfig,
};
use mtmlf_exec::Executor;
use mtmlf_optd::PgOptimizer;
use mtmlf_query::JoinOrder;
use mtmlf_storage::Database;

/// Experiment sizing.
#[derive(Debug, Clone)]
pub struct Table3Setup {
    /// Number of databases (paper: 11 — 10 train + 1 test).
    pub databases: usize,
    /// Labelled queries per training database.
    pub queries_per_db: usize,
    /// Training/test queries on the held-out database.
    pub test_db_train: usize,
    /// Test queries evaluated on the held-out database.
    pub test_db_test: usize,
    /// Minimum tables per query.
    pub min_tables: usize,
    /// Maximum tables per query.
    pub max_tables: usize,
    /// Pipeline configuration.
    pub pipeline: PipelineConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for Table3Setup {
    fn default() -> Self {
        Self {
            databases: 11,
            queries_per_db: 100,
            test_db_train: 300,
            test_db_test: 40,
            min_tables: 4,
            max_tables: 6,
            pipeline: PipelineConfig {
                min_rows: 500,
                max_rows: 3_000,
                max_attrs: 6,
                ..PipelineConfig::default()
            },
            seed: 3,
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Planner name.
    pub planner: String,
    /// Total simulated execution time (sim-minutes).
    pub total_minutes: f64,
    /// Improvement over PostgreSQL.
    pub improvement: Option<f64>,
}

/// The full Table 3 result.
#[derive(Debug, Clone)]
pub struct Table3Result {
    /// Rows in paper order.
    pub rows: Vec<Table3Row>,
}

fn make_db(
    setup: &Table3Setup,
    index: usize,
) -> mtmlf::Result<(Database, Vec<LabeledQuery>, Vec<LabeledQuery>)> {
    let seed = setup.seed.wrapping_mul(1_000_003) ^ index as u64;
    let mut db = generate_database(&format!("gen{index}"), seed, &setup.pipeline)?;
    db.analyze_all(16, 8);
    let wl_cfg = WorkloadConfig {
        count: if index + 1 == setup.databases {
            setup.test_db_train + setup.test_db_test
        } else {
            setup.queries_per_db
        },
        min_tables: setup.min_tables,
        max_tables: setup.max_tables,
        ..WorkloadConfig::default()
    };
    let queries = generate_queries(&db, &wl_cfg, seed ^ 0x77);
    let labeled = label_workload(&db, &queries, &LabelConfig::default())?;
    if index + 1 == setup.databases {
        let reserved = setup.test_db_test.min(labeled.len());
        let split = labeled.len() - reserved;
        let (train, test) = labeled.split_at(split);
        Ok((db, train.to_vec(), test.to_vec()))
    } else {
        Ok((db, labeled, Vec::new()))
    }
}

/// Runs the Table 3 experiment. Returns the result plus the per-query
/// count evaluated.
pub fn run(setup: &Table3Setup, config: &MtmlfConfig) -> mtmlf::Result<Table3Result> {
    // Generate all databases; the last is the held-out test DB.
    let mut training_dbs: Vec<(Database, Vec<LabeledQuery>)> = Vec::new();
    let mut test_db = None;
    for i in 0..setup.databases {
        let (db, train, test) = make_db(setup, i)?;
        if i + 1 == setup.databases {
            test_db = Some((db, train, test));
        } else {
            training_dbs.push((db, train));
        }
    }
    let Some((test_db, test_train, test_test)) = test_db else {
        return Err(mtmlf::MtmlfError::InvalidConfig(
            "table 3 needs at least one database".into(),
        ));
    };

    // MLA pre-training on the first n−1 databases.
    let mut meta = MetaLearner::new(config.clone());
    let refs: Vec<(&Database, &[LabeledQuery])> = training_dbs
        .iter()
        .map(|(db, wl)| (db, wl.as_slice()))
        .collect();
    meta.pretrain(&refs)?;
    let mla_model = meta.transfer(&test_db)?;

    // From-scratch single-DB model on the test DB's training split.
    let mut single = MtmlfQo::new(&test_db, config.clone())?;
    single.train(&test_train)?;

    // Execute the held-out queries under each planner's orders.
    let exec = Executor::new(&test_db);
    let pg = PgOptimizer::new(&test_db);
    let mut totals = [0.0f64; 3];
    for l in &test_test {
        let pg_order = JoinOrder::LeftDeep(pg.plan(&l.query)?.plan.tables());
        let mla_order = mla_model.predict_join_order_costed(&l.query, &l.plan)?;
        let single_order = single.predict_join_order_costed(&l.query, &l.plan)?;
        for (i, order) in [&pg_order, &mla_order, &single_order].iter().enumerate() {
            // A catastrophically bad order can exceed the executor's row
            // limit; charge the work done up to the cap as a penalty
            // (matching what aborting such a query would cost in practice).
            totals[i] += match exec.execute_order(&l.query, order) {
                Ok(outcome) => outcome.sim_minutes,
                Err(mtmlf_exec::ExecError::RowLimitExceeded { limit }) => {
                    3.0 * limit as f64 / mtmlf_exec::WORK_UNITS_PER_SIM_MINUTE
                }
                Err(e) => return Err(e.into()),
            };
        }
    }

    let names = ["PostgreSQL", "MTMLF-QO (MLA)", "MTMLF-QO (single)"];
    let rows = names
        .iter()
        .enumerate()
        .map(|(i, name)| Table3Row {
            planner: name.to_string(),
            total_minutes: totals[i],
            improvement: (i > 0).then(|| (totals[0] - totals[i]) / totals[0]),
        })
        .collect();
    Ok(Table3Result { rows })
}

/// Renders the result in the paper's layout.
pub fn render(result: &Table3Result) -> String {
    let headers = ["JoinOrder", "Total Time", "Overall Improvement Ratio"];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.planner.clone(),
                format!("{:.1} min", r.total_minutes),
                match r.improvement {
                    Some(i) => format!("{:.1}%", i * 100.0),
                    None => "\\".into(),
                },
            ]
        })
        .collect();
    crate::report::render_table(&headers, &rows)
}

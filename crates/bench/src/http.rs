//! A minimal blocking HTTP/1.1 endpoint for Prometheus scrapes.
//!
//! The serving benchmarks expose [`mtmlf::render_prometheus`] output the
//! way a real deployment would — `GET /metrics` over TCP — without pulling
//! in an HTTP framework: one thread, one connection at a time, text
//! exposition format v0.0.4. [`scrape`] is the matching one-shot client,
//! used both by the tests and by `table_serve` to prove the endpoint
//! round-trips what the service rendered.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Serves `GET /metrics` on `listener`, calling `render` per request for a
/// fresh exposition, and returns after `max_requests` connections. Any
/// other path gets a 404; malformed requests are dropped silently (the
/// connection still counts toward `max_requests`, so a misbehaving client
/// cannot wedge a bounded server).
pub fn serve_metrics(
    listener: &TcpListener,
    render: impl Fn() -> String,
    max_requests: usize,
) -> io::Result<()> {
    for _ in 0..max_requests {
        let (mut stream, _) = listener.accept()?;
        let _ = handle(&mut stream, &render);
    }
    Ok(())
}

fn handle(stream: &mut TcpStream, render: &impl Fn() -> String) -> io::Result<()> {
    // Read until the end of the request head (or a sanity cap); the
    // request line is all we route on.
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method == "GET" && path == "/metrics" {
        ("200 OK", CONTENT_TYPE, render())
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Fetches `http://{addr}/metrics` and returns the response body.
/// Errors if the server answered anything but 200.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("scrape failed: {status_line}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip_and_unknown_paths_get_404() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr");
        let server = std::thread::spawn(move || {
            serve_metrics(&listener, || "mtmlf_requests_total 42\n".to_string(), 2)
        });

        let body = scrape(addr).expect("scrape succeeds");
        assert_eq!(body, "mtmlf_requests_total 42\n");

        // Second connection: a wrong path must 404, not serve metrics.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");

        server.join().expect("server thread").expect("server io");
    }
}

//! `imdb_lite`: a deterministic, scaled-down IMDB-shaped database.
//!
//! The paper's single-DB experiments run on the IMDB dataset (21 tables,
//! "skewed distribution and strong attribute correlation" \[18\]) with the
//! JOB benchmark. The real dataset is not available offline, so this module
//! generates a snowflake with the same *shape*: a `title` hub, high-fanout
//! satellite tables (`cast_info`, `movie_info`, ...) whose foreign keys are
//! Zipf-skewed toward popular titles, correlated attribute pairs
//! (`production_year` ↔ `kind`), and token-composed string columns that make
//! `LIKE '%...%'` predicates meaningful. Eight tables instead of 21 keeps
//! exhaustive labelling tractable while still exercising joins of up to 8
//! tables — the same cap the paper applies when running ECQO.

use crate::distribution::ZipfSampler;
use crate::text::compose_string;
use mtmlf_storage::{
    Column, ColumnDef, ColumnType, Database, StorageError, Table, TableId, TableSchema,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row-count scale. `scale = 1.0` gives ~8K titles (the real IMDB has 2.5M;
/// the workload, model, and label budget are scaled together).
#[derive(Debug, Clone, Copy)]
pub struct ImdbScale {
    /// Multiplier on all table row counts.
    pub scale: f64,
}

impl Default for ImdbScale {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

fn scaled(base: usize, s: f64) -> usize {
    ((base as f64 * s) as usize).max(20)
}

/// Builds the IMDB-shaped database. Deterministic in `seed`.
pub fn imdb_lite(seed: u64, scale: ImdbScale) -> Result<Database, StorageError> {
    let s = scale.scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("imdb_lite");

    let n_title = scaled(8_000, s);
    let n_name = scaled(6_000, s);
    let n_company = scaled(1_500, s);
    let n_keyword = scaled(800, s);
    let n_cast = scaled(25_000, s);
    let n_info = scaled(20_000, s);
    let n_mc = scaled(10_000, s);
    let n_mk = scaled(15_000, s);

    // --- title (the hub): production_year tied to *popularity* (low title
    // ids are the most-referenced under the Zipf fan-out below, and are the
    // most recent) — the real-IMDB effect where recent movies carry most
    // cast/info rows. A year filter therefore selects a biased share of
    // join fan-out, which is precisely what defeats the classical
    // uniformity assumption on joins (paper Table 1's "PostgreSQL" row).
    let years: Vec<i64> = (0..n_title)
        .map(|i| {
            let frac = i as f64 / n_title.max(1) as f64; // 0 = most popular
            let base = 2020.0 - frac * 105.0;
            let noise: f64 = rng.gen_range(-8.0..8.0);
            (base + noise).clamp(1900.0, 2020.0) as i64
        })
        .collect();
    // kind (0..7) strongly correlated with the year: older titles skew
    // toward low kind ids (e.g. "short"), recent toward high ("video game").
    let kinds: Vec<i64> = years
        .iter()
        .map(|&y| {
            let base = (y - 1900).clamp(0, 119) / 18; // 0..=6
            if rng.gen_bool(0.8) {
                base.min(6)
            } else {
                rng.gen_range(0..7)
            }
        })
        .collect();
    let title_vocab = ZipfSampler::new(40, 0.8);
    let titles: Vec<String> = (0..n_title)
        .map(|i| compose_string(&title_vocab, 2, i, &mut rng))
        .collect();
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "title",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("production_year", ColumnType::Int),
                    ColumnDef::attr("kind", ColumnType::Int),
                    ColumnDef::attr("title", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int((0..n_title as i64).collect()),
                Column::Int(years.clone()),
                Column::Int(kinds),
                Column::str_from_strings(&titles),
            ],
        )?,
    )?;
    let title_id = TableId(0);

    // --- name: people.
    let name_vocab = ZipfSampler::new(40, 0.5);
    let names: Vec<String> = (0..n_name)
        .map(|i| compose_string(&name_vocab, 2, i, &mut rng))
        .collect();
    let genders: Vec<i64> = (0..n_name).map(|_| rng.gen_range(0..3)).collect();
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "name",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("gender", ColumnType::Int),
                    ColumnDef::attr("name", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int((0..n_name as i64).collect()),
                Column::Int(genders),
                Column::str_from_strings(&names),
            ],
        )?,
    )?;
    let name_id = TableId(1);

    // --- company_name: country skewed (most companies from few countries).
    let country_sampler = ZipfSampler::new(50, 1.1);
    let countries: Vec<i64> = (0..n_company)
        .map(|_| country_sampler.sample(&mut rng) as i64)
        .collect();
    let company_vocab = ZipfSampler::new(30, 0.6);
    let companies: Vec<String> = (0..n_company)
        .map(|i| compose_string(&company_vocab, 1, i, &mut rng))
        .collect();
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "company_name",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("country", ColumnType::Int),
                    ColumnDef::attr("name", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int((0..n_company as i64).collect()),
                Column::Int(countries),
                Column::str_from_strings(&companies),
            ],
        )?,
    )?;
    let company_id = TableId(2);

    // --- keyword.
    let kw_vocab = ZipfSampler::new(40, 0.4);
    let keywords: Vec<String> = (0..n_keyword)
        .map(|i| compose_string(&kw_vocab, 1, i, &mut rng))
        .collect();
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "keyword",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::attr("keyword", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int((0..n_keyword as i64).collect()),
                Column::str_from_strings(&keywords),
            ],
        )?,
    )?;
    let keyword_id = TableId(3);

    // Popularity skew: a few titles attract most satellite rows — this is
    // the join-key skew that defeats uniform join estimates.
    let popular_title = ZipfSampler::new(n_title, 0.85);
    let popular_name = ZipfSampler::new(n_name, 0.7);
    let popular_company = ZipfSampler::new(n_company, 0.9);
    let popular_keyword = ZipfSampler::new(n_keyword, 0.8);

    // --- cast_info(movie_id, person_id, role): role correlated with gender
    // of the person (correlation across a join!).
    let mut ci_movie = Vec::with_capacity(n_cast);
    let mut ci_person = Vec::with_capacity(n_cast);
    let mut ci_role = Vec::with_capacity(n_cast);
    for _ in 0..n_cast {
        let m = popular_title.sample(&mut rng) as i64;
        let p = popular_name.sample(&mut rng) as i64;
        ci_movie.push(m);
        ci_person.push(p);
        // Role skew: actors/actresses dominate.
        let role_sampler = [0, 0, 0, 1, 1, 2, 3, 4, 5][rng.gen_range(0..9)];
        ci_role.push(role_sampler);
    }
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "cast_info",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", title_id),
                    ColumnDef::fk("person_id", name_id),
                    ColumnDef::attr("role", ColumnType::Int),
                ],
            ),
            vec![
                Column::Int((0..n_cast as i64).collect()),
                Column::Int(ci_movie),
                Column::Int(ci_person),
                Column::Int(ci_role),
            ],
        )?,
    )?;

    // --- movie_info(movie_id, info_type, info): info strings share tokens
    // with the info_type (correlated string column).
    let mut mi_movie = Vec::with_capacity(n_info);
    let mut mi_type = Vec::with_capacity(n_info);
    let mut mi_info = Vec::with_capacity(n_info);
    let info_vocab = ZipfSampler::new(40, 0.9);
    for _ in 0..n_info {
        let m = popular_title.sample(&mut rng);
        let ty = (years[m].clamp(1900, 2020) as usize / 10) % 12; // correlated with year of the movie
        mi_movie.push(m as i64);
        mi_type.push(ty as i64);
        mi_info.push(compose_string(&info_vocab, 2, ty * 97, &mut rng));
    }
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "movie_info",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", title_id),
                    ColumnDef::attr("info_type", ColumnType::Int),
                    ColumnDef::attr("info", ColumnType::Str),
                ],
            ),
            vec![
                Column::Int((0..n_info as i64).collect()),
                Column::Int(mi_movie),
                Column::Int(mi_type),
                Column::str_from_strings(&mi_info),
            ],
        )?,
    )?;

    // --- movie_companies(movie_id, company_id, company_type).
    let mut mc_movie = Vec::with_capacity(n_mc);
    let mut mc_company = Vec::with_capacity(n_mc);
    let mut mc_type = Vec::with_capacity(n_mc);
    for _ in 0..n_mc {
        mc_movie.push(popular_title.sample(&mut rng) as i64);
        mc_company.push(popular_company.sample(&mut rng) as i64);
        mc_type.push(rng.gen_range(0..4));
    }
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "movie_companies",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", title_id),
                    ColumnDef::fk("company_id", company_id),
                    ColumnDef::attr("company_type", ColumnType::Int),
                ],
            ),
            vec![
                Column::Int((0..n_mc as i64).collect()),
                Column::Int(mc_movie),
                Column::Int(mc_company),
                Column::Int(mc_type),
            ],
        )?,
    )?;

    // --- movie_keyword(movie_id, keyword_id).
    let mut mk_movie = Vec::with_capacity(n_mk);
    let mut mk_keyword = Vec::with_capacity(n_mk);
    for _ in 0..n_mk {
        mk_movie.push(popular_title.sample(&mut rng) as i64);
        mk_keyword.push(popular_keyword.sample(&mut rng) as i64);
    }
    db.add_table(
        Table::from_columns(
            TableSchema::new(
                "movie_keyword",
                vec![
                    ColumnDef::pk("id"),
                    ColumnDef::fk("movie_id", title_id),
                    ColumnDef::fk("keyword_id", keyword_id),
                ],
            ),
            vec![
                Column::Int((0..n_mk as i64).collect()),
                Column::Int(mk_movie),
                Column::Int(mk_keyword),
            ],
        )?,
    )?;

    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tables_with_hub() {
        let db = imdb_lite(1, ImdbScale { scale: 0.05 }).unwrap();
        assert_eq!(db.table_count(), 8);
        assert!(db.table_by_name("title").is_ok());
        assert!(db.table_by_name("cast_info").is_ok());
        let edges = db.join_edges();
        // PK-FK edges: cast_info×2, movie_info×1, movie_companies×2,
        // movie_keyword×2 = 7; plus FK-FK edges among movie_id FKs.
        assert_eq!(edges.iter().filter(|e| e.pk_fk).count(), 7);
        assert!(
            edges.iter().any(|e| !e.pk_fk),
            "transitive FK-FK edges exist"
        );
    }

    #[test]
    fn foreign_keys_in_range() {
        let db = imdb_lite(2, ImdbScale { scale: 0.05 }).unwrap();
        for e in db.join_edges().iter().filter(|e| e.pk_fk) {
            let fk = db
                .table(e.from)
                .unwrap()
                .column(e.from_col)
                .unwrap()
                .as_int()
                .unwrap();
            let rows = db.table(e.to).unwrap().rows() as i64;
            assert!(fk.iter().all(|&k| (0..rows).contains(&k)));
        }
    }

    #[test]
    fn year_kind_correlation() {
        let db = imdb_lite(3, ImdbScale { scale: 0.1 }).unwrap();
        let title = db.table_by_name("title").unwrap();
        let years = title
            .column_by_name("production_year")
            .unwrap()
            .as_int()
            .unwrap();
        let kinds = title.column_by_name("kind").unwrap().as_int().unwrap();
        // Count how often kind equals its year-derived base value.
        let agree = years
            .iter()
            .zip(kinds)
            .filter(|(&y, &k)| ((y - 1900).clamp(0, 119) / 18).min(6) == k)
            .count();
        assert!(
            agree as f64 > years.len() as f64 * 0.6,
            "correlation visible: {agree}/{}",
            years.len()
        );
    }

    #[test]
    fn popularity_skew() {
        let db = imdb_lite(4, ImdbScale { scale: 0.1 }).unwrap();
        let ci = db.table_by_name("cast_info").unwrap();
        let movie_ids = ci.column_by_name("movie_id").unwrap().as_int().unwrap();
        let n_title = db.table_by_name("title").unwrap().rows();
        let mut counts = vec![0u32; n_title];
        for &m in movie_ids {
            counts[m as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let avg = movie_ids.len() as f64 / n_title as f64;
        assert!(
            max > avg * 10.0,
            "popular titles dominate: max {max}, avg {avg}"
        );
    }

    #[test]
    fn deterministic() {
        let a = imdb_lite(5, ImdbScale { scale: 0.05 }).unwrap();
        let b = imdb_lite(5, ImdbScale { scale: 0.05 }).unwrap();
        let ta = a.table_by_name("title").unwrap();
        let tb = b.table_by_name("title").unwrap();
        assert_eq!(
            ta.column_by_name("production_year").unwrap().as_int(),
            tb.column_by_name("production_year").unwrap().as_int()
        );
    }
}

//! JOB-like workload generation.
//!
//! Multi-join queries over a database's join schema with conjunctive
//! range/equality/`LIKE` filters. Filter literals are *anchored at real data
//! values* (a sampled row's value), the standard technique for generating
//! queries with non-degenerate selectivities — mirroring how the paper
//! generates "150K SQL queries similar to the JOB queries".

use mtmlf_query::predicate::{ColumnRef, JoinPredicate};
use mtmlf_query::{CmpOp, FilterPredicate, LikePattern, Query};
use mtmlf_storage::{Column, ColumnId, Database, KeyRole, TableId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub count: usize,
    /// Minimum tables per query.
    pub min_tables: usize,
    /// Maximum tables per query (the paper labels optimal orders only for
    /// queries touching ≤ 8 tables).
    pub max_tables: usize,
    /// Probability a selected table receives filters.
    pub filter_prob: f64,
    /// Maximum filter predicates per table.
    pub max_filters: usize,
    /// Cap on the number of *tables* filtered per query (JOB queries
    /// filter a handful of tables, not every joined relation; unbounded
    /// conjunction across 5-6 tables empties most results).
    pub max_filtered_tables: usize,
    /// Probability a string-column filter uses `LIKE` (vs equality).
    pub like_prob: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            count: 1000,
            min_tables: 2,
            max_tables: 8,
            filter_prob: 0.75,
            max_filters: 2,
            max_filtered_tables: 3,
            like_prob: 0.8,
        }
    }
}

/// Generates `config.count` valid queries over `db`. Deterministic in
/// `seed`.
pub fn generate_queries(db: &Database, config: &WorkloadConfig, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = db.join_edges();
    let n = db.table_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        adj[e.from.index()].push(e.to.index());
        adj[e.to.index()].push(e.from.index());
    }
    let mut queries = Vec::with_capacity(config.count);
    let mut attempts = 0usize;
    while queries.len() < config.count && attempts < config.count * 20 {
        attempts += 1;
        if let Some(q) = generate_one(db, &edges, &adj, config, &mut rng) {
            queries.push(q);
        }
    }
    queries
}

fn generate_one(
    db: &Database,
    edges: &[mtmlf_storage::JoinEdge],
    adj: &[Vec<usize>],
    config: &WorkloadConfig,
    rng: &mut StdRng,
) -> Option<Query> {
    let n = db.table_count();
    let max_tables = config.max_tables.min(n);
    let m = rng.gen_range(config.min_tables..=max_tables);

    // Random connected subgraph: random walk extension.
    let mut selected: Vec<usize> = vec![rng.gen_range(0..n)];
    while selected.len() < m {
        let &anchor = &selected[rng.gen_range(0..selected.len())];
        let candidates: Vec<usize> = adj[anchor]
            .iter()
            .copied()
            .filter(|v| !selected.contains(v))
            .collect();
        if candidates.is_empty() {
            // Try a different anchor; if the whole frontier is exhausted the
            // attempt fails and the caller retries.
            let frontier: Vec<usize> = selected
                .iter()
                .flat_map(|&s| adj[s].iter().copied())
                .filter(|v| !selected.contains(v))
                .collect();
            if frontier.is_empty() {
                break;
            }
            selected.push(frontier[rng.gen_range(0..frontier.len())]);
        } else {
            selected.push(candidates[rng.gen_range(0..candidates.len())]);
        }
    }
    if selected.len() < config.min_tables {
        return None;
    }

    // Join predicates: all PK-FK edges within the subset, plus FK-FK edges
    // only where needed for connectivity (mirrors how JOB queries are
    // written: explicit key joins).
    let in_set = |t: TableId| selected.contains(&t.index());
    let mut joins: Vec<JoinPredicate> = Vec::new();
    for e in edges.iter().filter(|e| e.pk_fk) {
        if in_set(e.from) && in_set(e.to) {
            joins.push(JoinPredicate::new(
                ColumnRef::new(e.from, e.from_col),
                ColumnRef::new(e.to, e.to_col),
            ));
        }
    }
    // Transitive FK-FK predicates: two foreign keys into the same target
    // are equal whenever both PK-FK predicates hold, and real optimizers
    // (and the JOB queries) exploit these implied equalities. Including
    // them widens the legal join-order space — crucially, with orders that
    // join two high-fanout satellites directly, where misestimation is
    // catastrophic. This is the order-quality gap Tables 2/3 measure.
    for e in edges.iter().filter(|e| !e.pk_fk) {
        if in_set(e.from) && in_set(e.to) {
            joins.push(JoinPredicate::new(
                ColumnRef::new(e.from, e.from_col),
                ColumnRef::new(e.to, e.to_col),
            ));
        }
    }

    // Filters anchored at sampled rows. Visit tables in a shuffled order
    // and stop once the per-query filtered-table budget is exhausted.
    let mut filters: BTreeMap<TableId, Vec<FilterPredicate>> = BTreeMap::new();
    let mut visit = selected.clone();
    for i in 0..visit.len() {
        let j = rng.gen_range(i..visit.len());
        visit.swap(i, j);
    }
    for &t in &visit {
        if filters.len() >= config.max_filtered_tables {
            break;
        }
        if rng.gen::<f64>() >= config.filter_prob {
            continue;
        }
        let table = db.table(TableId(t as u32)).ok()?;
        if table.rows() == 0 {
            continue;
        }
        let attr_cols: Vec<ColumnId> = table
            .schema()
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.key == KeyRole::None)
            .map(|(i, _)| ColumnId(i as u32))
            .collect();
        if attr_cols.is_empty() {
            continue;
        }
        // Use the full filter budget when the table has enough attribute
        // columns — JOB-style queries stack several predicates per table.
        let k = config.max_filters.min(attr_cols.len()).max(1);
        let mut chosen = attr_cols.clone();
        // Partial Fisher-Yates for k distinct columns.
        for i in 0..k {
            let j = rng.gen_range(i..chosen.len());
            chosen.swap(i, j);
        }
        // All predicates of one table anchor at the SAME sampled row, so
        // conjunctions are satisfiable and *correlated* — a jointly
        // consistent pair of predicates selects far more rows than the
        // attribute-independence assumption predicts, which is exactly the
        // JOB-style difficulty the paper's Table 1 exercises.
        let anchor_row = rng.gen_range(0..table.rows());
        let mut preds = Vec::with_capacity(k);
        for &col in chosen.iter().take(k) {
            if let Some(p) = make_predicate(table.column(col).ok()?, col, anchor_row, config, rng) {
                preds.push(p);
            }
        }
        if !preds.is_empty() {
            filters.insert(TableId(t as u32), preds);
        }
    }

    let tables: Vec<TableId> = selected.iter().map(|&i| TableId(i as u32)).collect();
    Query::new(tables, joins, filters).ok()
}

/// Builds one predicate anchored at the value of `column[anchor_row]`.
fn make_predicate(
    column: &Column,
    col: ColumnId,
    anchor_row: usize,
    config: &WorkloadConfig,
    rng: &mut StdRng,
) -> Option<FilterPredicate> {
    match column {
        Column::Int(data) => {
            let v = data[anchor_row];
            // Keep predicates *moderately* selective so conjunctive,
            // correlated filters across several joined tables still produce
            // non-empty results (as JOB queries do): equality only on
            // categorical (low-distinct) columns; ranges sized relative to
            // the column's domain.
            let (lo, hi) = data
                .iter()
                .fold((i64::MAX, i64::MIN), |(a, b), &x| (a.min(x), b.max(x)));
            let span = (hi - lo).max(1);
            let sampled_distinct = {
                let stride = (data.len() / 64).max(1);
                let mut seen: Vec<i64> = data.iter().step_by(stride).copied().collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            };
            let categorical = sampled_distinct <= 25;
            Some(if categorical && rng.gen_bool(0.6) {
                FilterPredicate::Cmp {
                    column: col,
                    op: CmpOp::Eq,
                    value: Value::Int(v),
                }
            } else if rng.gen_bool(0.5) {
                FilterPredicate::Cmp {
                    column: col,
                    op: if rng.gen_bool(0.5) {
                        CmpOp::Le
                    } else {
                        CmpOp::Ge
                    },
                    value: Value::Int(v),
                }
            } else {
                let width = (span as f64 * rng.gen_range(0.05..0.3)) as i64 + 1;
                FilterPredicate::Between {
                    column: col,
                    lo: Value::Int(v - width),
                    hi: Value::Int(v + width),
                }
            })
        }
        Column::Float(data) => {
            let v = data[anchor_row];
            let (lo, hi) = data
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &x| {
                    (a.min(x), b.max(x))
                });
            let width = (hi - lo).max(1e-9) * rng.gen_range(0.05..0.3);
            Some(FilterPredicate::Between {
                column: col,
                lo: Value::Float(v - width),
                hi: Value::Float(v + width),
            })
        }
        Column::Str { codes, dict } => {
            let value = dict.decode(codes[anchor_row])?;
            // Equality on a high-distinct string column selects ~1 row and
            // empties every downstream join; restrict it to genuinely
            // categorical columns and otherwise use LIKE on a vocabulary
            // token (numeric suffix words are excluded — they are unique
            // per value).
            let use_eq = dict.len() <= 50 && rng.gen::<f64>() >= config.like_prob;
            if use_eq {
                Some(FilterPredicate::Cmp {
                    column: col,
                    op: CmpOp::Eq,
                    value: Value::str(value),
                })
            } else {
                // The pattern must *match the anchor value*, or the
                // correlation with the other anchored predicates is lost and
                // the conjunction empties: Contains uses any vocabulary word
                // of the value, Prefix its first word. (Suffix would have to
                // use the trailing numeric disambiguator, which is
                // near-unique — so it is not generated.)
                let words: Vec<&str> = value
                    .split(' ')
                    .filter(|w| w.len() >= 3 && w.chars().any(|c| c.is_alphabetic()))
                    .collect();
                let pattern = if words.is_empty() {
                    LikePattern::Contains(value.to_string())
                } else if rng.gen_bool(0.3) {
                    LikePattern::Prefix(words[0].to_string())
                } else {
                    LikePattern::Contains(words[rng.gen_range(0..words.len())].to_string())
                };
                Some(FilterPredicate::Like {
                    column: col,
                    pattern,
                })
            }
        }
    }
}

/// A single-table filter query with its true cardinality: the training unit
/// for the per-table encoders `Enc_i` (paper F.ii — "Enc_i learns the data
/// distribution of T_i through predicting the cardinality of filter
/// predicate f(T_i)").
#[derive(Debug, Clone)]
pub struct SingleTableQuery {
    /// The filtered table.
    pub table: TableId,
    /// Conjunctive filters.
    pub filters: Vec<FilterPredicate>,
    /// True cardinality after the filters.
    pub cardinality: u64,
}

/// Generates `count` single-table queries on `table` with true
/// cardinalities. Deterministic in `seed`.
pub fn single_table_queries(
    db: &Database,
    table: TableId,
    count: usize,
    seed: u64,
) -> Vec<SingleTableQuery> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_1a0d ^ u64::from(table.0) << 32);
    let config = WorkloadConfig {
        like_prob: 0.5,
        ..WorkloadConfig::default()
    };
    let Ok(t) = db.table(table) else {
        return Vec::new();
    };
    let attr_cols: Vec<ColumnId> = t
        .schema()
        .columns
        .iter()
        .enumerate()
        .filter(|(_, c)| c.key == KeyRole::None)
        .map(|(i, _)| ColumnId(i as u32))
        .collect();
    if attr_cols.is_empty() || t.rows() == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let k = rng.gen_range(1..=2.min(attr_cols.len()));
        let mut filters = Vec::with_capacity(k);
        for _ in 0..k {
            let col = attr_cols[rng.gen_range(0..attr_cols.len())];
            let anchor = rng.gen_range(0..t.rows());
            if let Ok(column) = t.column(col) {
                if let Some(p) = make_predicate(column, col, anchor, &config, &mut rng) {
                    filters.push(p);
                }
            }
        }
        if filters.is_empty() {
            continue;
        }
        let Ok(rows) = mtmlf_exec::evaluate_filters(t, &filters) else {
            continue;
        };
        out.push(SingleTableQuery {
            table,
            filters,
            cardinality: rows.len() as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{imdb_lite, ImdbScale};

    fn small_db() -> Database {
        imdb_lite(1, ImdbScale { scale: 0.03 }).unwrap()
    }

    #[test]
    fn generates_requested_count() {
        let db = small_db();
        let cfg = WorkloadConfig {
            count: 50,
            ..WorkloadConfig::default()
        };
        let qs = generate_queries(&db, &cfg, 9);
        assert_eq!(qs.len(), 50);
    }

    #[test]
    fn queries_are_valid_and_bounded() {
        let db = small_db();
        let cfg = WorkloadConfig {
            count: 40,
            max_tables: 5,
            ..WorkloadConfig::default()
        };
        for q in generate_queries(&db, &cfg, 10) {
            assert!(q.table_count() >= 2);
            assert!(q.table_count() <= 5);
            assert!(q.join_graph().unwrap().is_connected());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let db = small_db();
        let cfg = WorkloadConfig {
            count: 20,
            ..WorkloadConfig::default()
        };
        let a = generate_queries(&db, &cfg, 3);
        let b = generate_queries(&db, &cfg, 3);
        assert_eq!(a, b);
        let c = generate_queries(&db, &cfg, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn filters_present_and_typed() {
        let db = small_db();
        let cfg = WorkloadConfig {
            count: 60,
            filter_prob: 1.0,
            ..WorkloadConfig::default()
        };
        let qs = generate_queries(&db, &cfg, 5);
        let with_filters = qs.iter().filter(|q| q.filters().count() > 0).count();
        assert!(with_filters > qs.len() / 2, "most queries filtered");
        let with_like = qs
            .iter()
            .flat_map(|q| q.filters())
            .flat_map(|(_, f)| f)
            .filter(|p| matches!(p, FilterPredicate::Like { .. }))
            .count();
        assert!(with_like > 0, "LIKE predicates generated");
    }

    #[test]
    fn anchored_filters_often_nonempty() {
        // Anchoring at data values should give many non-zero-cardinality
        // single-table selections.
        let db = small_db();
        let qs = single_table_queries(&db, TableId(0), 50, 11);
        assert!(!qs.is_empty());
        let nonzero = qs.iter().filter(|q| q.cardinality > 0).count();
        assert!(
            nonzero * 2 > qs.len(),
            "{nonzero}/{} single-table queries nonzero",
            qs.len()
        );
    }

    #[test]
    fn single_table_cardinalities_correct() {
        let db = small_db();
        let qs = single_table_queries(&db, TableId(0), 10, 12);
        let t = db.table(TableId(0)).unwrap();
        for q in &qs {
            let rows = mtmlf_exec::evaluate_filters(t, &q.filters).unwrap();
            assert_eq!(rows.len() as u64, q.cardinality);
        }
    }
}

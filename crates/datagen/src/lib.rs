//! # mtmlf-datagen
//!
//! Synthetic data and workload generation for the MTMLF reproduction.
//!
//! Three generators:
//!
//! 1. **The paper's Section 6.2 pipeline** ([`pipeline`]): generates
//!    databases with 6–11 tables following steps S1 (join schema: 2–3 fact
//!    tables, dimension tables with PK–FK edges into one or two facts,
//!    transitive FK–FK joins), S2 (attribute columns with varied skew,
//!    correlation, and domain sizes), and S3 (foreign keys correlated with
//!    attribute columns). Used by the cross-DB transferability experiment
//!    (Table 3).
//! 2. **An IMDB-shaped database** ([`imdb`]): a deterministic, scaled-down
//!    snowflake mimicking the IMDB dataset's shape — skewed production
//!    years, correlated kind/year columns, string columns with LIKE-able
//!    tokens — the substrate of the single-DB experiments (Tables 1 and 2).
//! 3. **A JOB-like workload generator** ([`workload`]): multi-join queries
//!    over any generated database with conjunctive range/equality/`LIKE`
//!    filters anchored at real data values, plus the single-table filter
//!    queries that train the per-table encoders `Enc_i`.
//!
//! [`label`] executes workloads to attach ground truth: per-plan-node true
//! cardinalities and costs, and exact-optimal join orders (ECQO stand-in).

#![forbid(unsafe_code)]

pub mod distribution;
pub mod imdb;
pub mod label;
pub mod pipeline;
pub mod text;
pub mod workload;

pub use imdb::imdb_lite;
pub use label::{label_workload, LabelConfig, LabeledQuery};
pub use pipeline::{generate_database, PipelineConfig};
pub use workload::{generate_queries, single_table_queries, SingleTableQuery, WorkloadConfig};

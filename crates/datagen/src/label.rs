//! Ground-truth labelling of workloads.
//!
//! For each query the labeller produces what the paper's training pipeline
//! extracts from PostgreSQL + ECQO (Section 6.1):
//!
//! - the **initial plan** `P` (from the classical optimizer, as a real
//!   system would provide),
//! - the **true cardinality and cumulative cost of the sub-plan rooted at
//!   every node** of `P` (by actually executing it),
//! - the **exact-optimal left-deep join order** for queries touching at
//!   most `max_optimal_tables` tables (the paper's ≤ 8 cap, because the
//!   oracle is exponential).
//!
//! Labelling is embarrassingly parallel across queries; with
//! `parallelism > 1` it fans out over crossbeam scoped threads.

use mtmlf_exec::Executor;
use mtmlf_optd::{
    best_bushy_order, best_left_deep_order, OptError, PgOptimizer, TrueCardEstimator,
};
use mtmlf_query::{JoinOrder, PlanNode, Query};
use mtmlf_storage::{Database, TableId};

/// Labelling parameters.
#[derive(Debug, Clone)]
pub struct LabelConfig {
    /// Only queries with at most this many tables get optimal-order labels
    /// (paper: 8).
    pub max_optimal_tables: usize,
    /// Worker threads (1 = sequential).
    pub parallelism: usize,
    /// Additionally label the exact-optimal *bushy* join tree (Section 4.1
    /// extension; doubles the DP work per query).
    pub label_bushy: bool,
    /// Intermediate-result row cap during labelling; queries exceeding it
    /// are dropped from the workload (see [`label_workload`]).
    pub row_limit: usize,
}

impl Default for LabelConfig {
    fn default() -> Self {
        Self {
            max_optimal_tables: 8,
            parallelism: std::thread::available_parallelism().map_or(1, |p| p.get().min(8)),
            label_bushy: false,
            row_limit: 8_000_000,
        }
    }
}

/// One labelled training example.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// The query.
    pub query: Query,
    /// The initial plan `P` produced by the classical optimizer.
    pub plan: PlanNode,
    /// True cardinality of the sub-plan rooted at each node of `plan`, in
    /// post-order (aligned with [`PlanNode::post_order`]).
    pub node_cards: Vec<u64>,
    /// Cumulative true cost (work units) of the sub-plan rooted at each
    /// node, in post-order.
    pub node_costs: Vec<f64>,
    /// True result cardinality (root).
    pub true_cardinality: u64,
    /// Exact-optimal left-deep join order, when within the table cap.
    pub optimal_order: Option<JoinOrder>,
    /// Exact-optimal bushy join order (only when `label_bushy` is set).
    pub optimal_bushy: Option<JoinOrder>,
    /// Tables of the query (sorted), for convenience.
    pub tables: Vec<TableId>,
}

/// Labels one query.
pub fn label_query(
    db: &Database,
    query: &Query,
    config: &LabelConfig,
) -> Result<LabeledQuery, OptError> {
    let exec = Executor::new(db).with_row_limit(config.row_limit);
    let planned = PgOptimizer::new(db).plan(query)?;
    let outcome = exec.execute_plan(query, &planned.plan)?;
    let (optimal_order, optimal_bushy) = if query.table_count() <= config.max_optimal_tables {
        let oracle = TrueCardEstimator::compute_with(&exec, query)?;
        let left_deep = best_left_deep_order(&oracle, db, query)?.order;
        let bushy = config
            .label_bushy
            .then(|| best_bushy_order(&oracle, db, query).map(|p| p.order))
            .transpose()?;
        (Some(left_deep), bushy)
    } else {
        (None, None)
    };
    Ok(LabeledQuery {
        query: query.clone(),
        plan: planned.plan,
        node_cards: outcome.nodes.iter().map(|n| n.cardinality).collect(),
        node_costs: outcome.nodes.iter().map(|n| n.subplan_cost).collect(),
        true_cardinality: outcome.output_cardinality,
        optimal_order,
        optimal_bushy,
        tables: query.tables().to_vec(),
    })
}

/// Whether an error means "this query is pathological, drop it" rather
/// than "the batch is broken".
fn is_droppable(e: &OptError) -> bool {
    matches!(
        e,
        OptError::Exec(mtmlf_exec::ExecError::RowLimitExceeded { .. })
    )
}

/// Labels a workload, parallelizing across queries. Queries whose labels
/// would exceed the executor's intermediate-result row limit are silently
/// dropped (they are pathological for *every* method and would dominate
/// memory); any other failure aborts the batch.
pub fn label_workload(
    db: &Database,
    queries: &[Query],
    config: &LabelConfig,
) -> Result<Vec<LabeledQuery>, OptError> {
    if config.parallelism <= 1 || queries.len() < 4 {
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            match label_query(db, q, config) {
                Ok(l) => out.push(l),
                Err(e) if is_droppable(&e) => continue,
                Err(e) => return Err(e),
            }
        }
        return Ok(out);
    }
    let workers = config.parallelism.min(queries.len());
    let chunk = queries.len().div_ceil(workers);
    let results: Vec<Result<Vec<LabeledQuery>, OptError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move |_| {
                    let mut out = Vec::with_capacity(slice.len());
                    for q in slice {
                        match label_query(db, q, config) {
                            Ok(l) => out.push(l),
                            Err(e) if is_droppable(&e) => continue,
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Err(OptError::WorkerPanicked)))
            .collect()
    })
    .unwrap_or_else(|_| vec![Err(OptError::WorkerPanicked)]);
    let mut out = Vec::with_capacity(queries.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::{imdb_lite, ImdbScale};
    use crate::workload::{generate_queries, WorkloadConfig};

    fn setup() -> (Database, Vec<Query>) {
        let mut db = imdb_lite(1, ImdbScale { scale: 0.03 }).unwrap();
        db.analyze_all(16, 8);
        let cfg = WorkloadConfig {
            count: 12,
            max_tables: 4,
            ..WorkloadConfig::default()
        };
        let qs = generate_queries(&db, &cfg, 21);
        (db, qs)
    }

    #[test]
    fn labels_align_with_plan_nodes() {
        let (db, qs) = setup();
        let labeled = label_workload(&db, &qs, &LabelConfig::default()).unwrap();
        assert_eq!(labeled.len(), qs.len());
        for l in &labeled {
            assert_eq!(l.node_cards.len(), l.plan.node_count());
            assert_eq!(l.node_costs.len(), l.plan.node_count());
            assert_eq!(*l.node_cards.last().unwrap(), l.true_cardinality);
            // Costs are cumulative: root cost is the maximum.
            let root = *l.node_costs.last().unwrap();
            assert!(l.node_costs.iter().all(|&c| c <= root + 1e-9));
        }
    }

    #[test]
    fn optimal_orders_present_and_legal() {
        let (db, qs) = setup();
        let labeled = label_workload(&db, &qs, &LabelConfig::default()).unwrap();
        for l in &labeled {
            let order = l.optimal_order.as_ref().expect("≤ 4 tables labelled");
            order.validate(&l.query).unwrap();
        }
    }

    #[test]
    fn table_cap_respected() {
        let (db, qs) = setup();
        let cfg = LabelConfig {
            max_optimal_tables: 2,
            parallelism: 1,
            ..LabelConfig::default()
        };
        let labeled = label_workload(&db, &qs, &cfg).unwrap();
        for l in &labeled {
            assert_eq!(l.optimal_order.is_some(), l.query.table_count() <= 2);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (db, qs) = setup();
        let seq = label_workload(
            &db,
            &qs,
            &LabelConfig {
                parallelism: 1,
                ..LabelConfig::default()
            },
        )
        .unwrap();
        let par = label_workload(
            &db,
            &qs,
            &LabelConfig {
                parallelism: 4,
                ..LabelConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.node_cards, b.node_cards);
            assert_eq!(a.optimal_order, b.optimal_order);
        }
    }

    #[test]
    fn optimal_order_no_worse_than_pg_order() {
        // Compare *orders* under identical (default) physical operators —
        // the isolation Table 2 of the paper performs. Operator choice is a
        // separate dimension: a misestimate can accidentally pick a cheaper
        // access path, so plans with heterogeneous operators are not
        // directly comparable.
        let (db, qs) = setup();
        let exec = Executor::new(&db);
        let labeled = label_workload(&db, &qs, &LabelConfig::default()).unwrap();
        for l in &labeled {
            let pg_order = JoinOrder::LeftDeep(l.plan.tables());
            let pg_minutes = exec.execute_order(&l.query, &pg_order).unwrap().sim_minutes;
            let opt = l.optimal_order.as_ref().unwrap();
            let opt_minutes = exec.execute_order(&l.query, opt).unwrap().sim_minutes;
            // Small slack: the oracle DP optimizes cost including operator
            // selection under true cardinalities, whose operator thresholds
            // can differ marginally from the default-operator execution.
            assert!(
                opt_minutes <= pg_minutes * 1.10 + 1e-6,
                "optimal {opt_minutes} vs pg {pg_minutes} on {}",
                l.query
            );
        }
    }
}

#[cfg(test)]
mod bushy_tests {
    use super::*;
    use crate::imdb::{imdb_lite, ImdbScale};
    use crate::workload::{generate_queries, WorkloadConfig};

    #[test]
    fn bushy_labels_present_and_legal_when_requested() {
        let mut db = imdb_lite(2, ImdbScale { scale: 0.03 }).unwrap();
        db.analyze_all(16, 8);
        let qs = generate_queries(
            &db,
            &WorkloadConfig {
                count: 6,
                min_tables: 3,
                max_tables: 4,
                ..WorkloadConfig::default()
            },
            22,
        );
        let cfg = LabelConfig {
            label_bushy: true,
            parallelism: 1,
            ..LabelConfig::default()
        };
        let labeled = label_workload(&db, &qs, &cfg).unwrap();
        for l in &labeled {
            let bushy = l.optimal_bushy.as_ref().expect("bushy labels requested");
            bushy.validate(&l.query).unwrap();
            assert!(matches!(bushy, JoinOrder::Bushy(_)));
        }
        // Without the flag there are no bushy labels.
        let plain = label_workload(&db, &qs, &LabelConfig::default()).unwrap();
        assert!(plain.iter().all(|l| l.optimal_bushy.is_none()));
    }
}

//! Token vocabularies for string column generation.
//!
//! Strings are composed of 2–3 tokens drawn from themed vocabularies, so
//! `LIKE '%token%'` predicates have meaningful, value-dependent
//! selectivities (the JOB benchmark's hallmark predicate shape).

use crate::distribution::ZipfSampler;
use rand::rngs::StdRng;

/// Themed word lists used to compose string values.
pub const TOKENS: &[&str] = &[
    "dark", "light", "return", "story", "night", "dream", "lost", "last", "first", "city", "house",
    "man", "woman", "king", "queen", "blood", "fire", "water", "stone", "star", "shadow", "silent",
    "golden", "broken", "secret", "winter", "summer", "empire", "legend", "ghost", "river",
    "mountain", "forest", "island", "crown", "sword", "heart", "mirror", "voyage", "garden",
];

/// Composes a string of `parts` tokens sampled with skew `sampler`,
/// joined by spaces, with a numeric suffix to diversify the dictionary.
pub fn compose_string(
    sampler: &ZipfSampler,
    parts: usize,
    suffix: usize,
    rng: &mut StdRng,
) -> String {
    debug_assert!(sampler.domain() <= TOKENS.len());
    let mut s = String::with_capacity(parts * 8 + 4);
    for i in 0..parts {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(TOKENS[sampler.sample(rng)]);
    }
    if suffix > 0 {
        s.push(' ');
        s.push_str(&suffix.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn composed_strings_contain_tokens() {
        let mut rng = StdRng::seed_from_u64(5);
        let sampler = ZipfSampler::new(20, 0.8);
        for i in 0..50 {
            let s = compose_string(&sampler, 2, i, &mut rng);
            let has_token = TOKENS.iter().any(|t| s.contains(t));
            assert!(has_token, "string `{s}` has no vocabulary token");
        }
    }

    #[test]
    fn suffix_diversifies() {
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = ZipfSampler::new(5, 0.0);
        let a = compose_string(&sampler, 1, 1, &mut rng);
        let b = compose_string(&sampler, 1, 2, &mut rng);
        assert_ne!(a, b);
    }
}

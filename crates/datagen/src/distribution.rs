//! Skewed and correlated value distributions.
//!
//! The paper's pipeline (S2) requires "varied data distribution skewness,
//! attributes correlation, and domain size"; IMDB itself has "skewed
//! distribution and strong attribute correlation" \[18\]. These are the
//! properties that break the classical estimator's uniformity and
//! independence assumptions, so the generators here control them directly.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf-distributed sampler over `0..domain` with exponent `theta`
/// (`theta = 0` is uniform; `theta ≈ 1` is heavily skewed). Sampling uses a
/// precomputed CDF and binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `0..domain`. `domain` must be ≥ 1.
    pub fn new(domain: usize, theta: f64) -> Self {
        assert!(domain >= 1, "Zipf domain must be non-empty");
        let mut cdf = Vec::with_capacity(domain);
        let mut acc = 0.0;
        for k in 1..=domain {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Samples one value in `0..domain`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates a column correlated with `base`: with probability
/// `correlation` the value is a deterministic function of the base value;
/// otherwise it is drawn from `sampler`. `correlation = 1.0` gives a
/// functional dependency, `0.0` independence.
pub fn correlated_column(
    base: &[usize],
    sampler: &ZipfSampler,
    correlation: f64,
    rng: &mut StdRng,
) -> Vec<usize> {
    let domain = sampler.domain();
    base.iter()
        .map(|&b| {
            if rng.gen::<f64>() < correlation {
                // A fixed pseudo-random permutation of the base value keeps
                // the dependency deterministic but non-trivial.
                (b.wrapping_mul(2654435761) ^ 0x9e37) % domain
            } else {
                sampler.sample(rng)
            }
        })
        .collect()
}

/// Maps skewed integer draws into a numeric domain `[lo, hi]` while keeping
/// the frequency skew (value `k` maps affinely into the range).
pub fn scale_to_range(values: &[usize], domain: usize, lo: i64, hi: i64) -> Vec<i64> {
    debug_assert!(hi >= lo);
    let span = (hi - lo) as f64;
    let d = domain.max(1) as f64;
    values
        .iter()
        .map(|&v| lo + ((v as f64 / d) * span).round() as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let s = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "count {c} not ~1000");
        }
    }

    #[test]
    fn zipf_skewed_when_theta_high() {
        let s = ZipfSampler::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if s.sample(&mut rng) < 5 {
                head += 1;
            }
        }
        // With theta=1.2 the top 5 of 100 values carry well over a third of
        // the mass.
        assert!(head > n / 3, "head mass {head}");
    }

    #[test]
    fn zipf_within_domain() {
        let s = ZipfSampler::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn correlation_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = ZipfSampler::new(50, 0.5);
        let base: Vec<usize> = (0..2000).map(|i| i % 50).collect();
        let dependent = correlated_column(&base, &s, 1.0, &mut rng);
        // Functional: equal base values give equal dependent values.
        assert_eq!(dependent[0], dependent[50]);
        assert_eq!(dependent[1], dependent[51]);
        let independent = correlated_column(&base, &s, 0.0, &mut rng);
        let agree = independent
            .iter()
            .zip(&dependent)
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree < 400, "independent columns mostly differ: {agree}");
    }

    #[test]
    fn range_scaling() {
        let v = scale_to_range(&[0, 5, 10], 10, 1900, 2000);
        assert_eq!(v, vec![1900, 1950, 2000]);
    }
}

//! # mtmlf-repro
//!
//! Umbrella crate of the MTMLF reproduction (*A Unified Transferable Model
//! for ML-Enhanced DBMS*, CIDR 2022). It re-exports the workspace crates
//! and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Crate map:
//! - [`storage`] — in-memory columnar engine with statistics;
//! - [`query`] — query/plan IR, join graphs, the Section 4.1 tree codec;
//! - [`exec`] — executor: true cardinalities + simulated execution time;
//! - [`optd`] — classical baselines: PostgreSQL-style optimizer and
//!   exact-cardinality optimal join enumeration (ECQO stand-in);
//! - [`datagen`] — Section 6.2 synthetic-DB pipeline, IMDB-shaped data,
//!   JOB-like workloads, ground-truth labelling;
//! - [`nn`] — from-scratch autograd + transformer stack;
//! - [`treelstm`] — the Tree-LSTM learned baseline;
//! - [`model`] — the MTMLF-QO model itself (featurization, shared
//!   transformer, task heads, `Trans_JO`, beam search, MLA meta-learning).

#![forbid(unsafe_code)]

pub use mtmlf as model;
pub use mtmlf_datagen as datagen;
pub use mtmlf_exec as exec;
pub use mtmlf_nn as nn;
pub use mtmlf_optd as optd;
pub use mtmlf_query as query;
pub use mtmlf_storage as storage;
pub use mtmlf_treelstm as treelstm;
